//! The paper's Listings 1–2: what a single ADD symbol compiles to under the
//! pattern compiler (`lfd` / `lfd` / `fadd` / `stfd` — every operand loaded
//! from the stack, the result stored back) versus the verified optimizing
//! compiler (values stay in registers; essentially the `fadd` remains).
//!
//! ```sh
//! cargo run --example listing_patterns
//! ```

fn main() {
    let l = vericomp_bench::listings::run();
    print!("{}", vericomp_bench::listings::render(&l));
    println!(
        "instruction reduction: {:.0}%  memory-access reduction: {:.0}%",
        100.0 * (1.0 - l.counts.1 as f64 / l.counts.0 as f64),
        100.0 * (1.0 - l.mem_ops.1 as f64 / l.mem_ops.0 as f64),
    );
}
