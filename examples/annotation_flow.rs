//! The paper's §3.4 annotation pipeline, end to end:
//!
//! 1. the source carries `__builtin_annotation("1 <= %1 <= N", n)` around a
//!    data-dependent scan loop;
//! 2. the compiler transmits it as a pro-forma effect — the assembly
//!    listing shows the comment with the argument's *final location*
//!    (a stack slot at -O0, a register once optimized);
//! 3. an annotation file is generated automatically from the binary;
//! 4. the WCET analyzer fails without it and succeeds with it.
//!
//! ```sh
//! cargo run --example annotation_flow
//! ```

use vericomp::core::OptLevel;
use vericomp::dataflow::NodeBuilder;
use vericomp::harness;
use vericomp::minic::pretty;
use vericomp::wcet::annot::AnnotationFile;
use vericomp::wcet::{Analysis, AnalysisOptions, AnalysisRequest, Analyzer};

fn analyze_with(
    program: &vericomp::arch::Program,
    func: &str,
    opts: &AnalysisOptions,
) -> Result<vericomp::wcet::WcetReport, vericomp::wcet::AnalysisError> {
    Analyzer::new(*opts)
        .analyze(&AnalysisRequest::new(program, func))
        .map(Analysis::into_report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = NodeBuilder::new("annot");
    let mach = b.global_input("annot_mach");
    let k = b.lookup_search(
        mach,
        vec![0.0, 0.4, 0.6, 0.75, 0.85, 0.92],
        vec![1.0, 0.95, 0.8, 0.6, 0.45, 0.35],
    );
    let cmd = b.global_input("annot_cmd");
    let out = b.mul(cmd, k);
    b.output("annot_out", out);
    let node = b.build()?;

    let src = node.to_minic();
    println!("── source (excerpt) ───────────────────────────────────────");
    for line in pretty::program_to_c(&src).lines() {
        if line.contains("annotation") || line.contains("while") {
            println!("{line}");
        }
    }

    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let binary = harness::compile_node(&node, level)?;
        println!("\n══ {level} ═══════════════════════════════════════════");
        println!("── annotation comment in the listing ──────────────────");
        for line in binary.disassemble().lines() {
            if line.contains("annotation") {
                println!("{line}");
            }
        }
        let file = AnnotationFile::from_program(&binary);
        println!("── generated annotation file ──────────────────────────");
        print!("{}", file.to_text());

        match analyze_with(
            &binary,
            "step",
            &AnalysisOptions {
                use_annotations: false,
            },
        ) {
            Err(e) => println!("without annotations : analysis FAILS — {e}"),
            Ok(r) => println!("without annotations : WCET {} (unexpected)", r.wcet),
        }
        let with = analyze_with(
            &binary,
            "step",
            &AnalysisOptions {
                use_annotations: true,
            },
        )?;
        println!(
            "with annotations    : WCET {} cycles, loop bounds {:?}",
            with.wcet,
            with.loop_bounds.values().collect::<Vec<_>>()
        );
    }
    Ok(())
}
