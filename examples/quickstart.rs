//! Quickstart: specify a small control law, compile it with the verified
//! optimizing configuration, run one activation on the MPC755-like
//! simulator, and bound its WCET statically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vericomp::core::OptLevel;
use vericomp::dataflow::NodeBuilder;
use vericomp::harness;
use vericomp::mach::Simulator;
use vericomp::minic::pretty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Specify a dataflow node, SCADE-style: acquire a sensor, filter it,
    //    apply a scheduled gain, saturate, command the actuator.
    let mut b = NodeBuilder::new("quickstart");
    let raw = b.acquisition(0);
    let filtered = b.first_order_filter(raw, 0.2);
    let gain = b.global_input("quickstart_gain");
    let scaled = b.mul(filtered, gain);
    let limited = b.saturation(scaled, -10.0, 10.0);
    b.output("quickstart_out", limited);
    b.actuator(8, limited);
    let node = b.build()?;

    // 2. The automatic code generator emits MiniC — inspect it as C.
    let src = node.to_minic();
    println!("── generated C ────────────────────────────────────────────");
    println!("{}", pretty::program_to_c(&src));

    // 3. Compile with the CompCert-analog configuration. Every structural
    //    pass result was re-checked by a translation validator.
    let binary = harness::compile_node(&node, OptLevel::Verified)?;
    println!(
        "── disassembly ({} bytes) ─────────────────────────────────",
        binary.text_size()
    );
    println!("{}", binary.disassemble());

    // 4. Run one activation.
    let mut sim = Simulator::new(binary.clone());
    sim.set_io_f64(0, 3.5);
    sim.set_global_f64("quickstart_gain", 0, 2.0)?;
    let outcome = sim.run(1_000_000)?;
    println!("── one activation ─────────────────────────────────────────");
    println!("output        : {}", sim.global_f64("quickstart_out", 0)?);
    println!("actuator port : {}", sim.io_f64(8));
    println!("instructions  : {}", outcome.stats.instructions);
    println!("cycles        : {}", outcome.stats.cycles);
    println!(
        "cache         : {} reads / {} writes ({} misses)",
        outcome.stats.dcache_reads,
        outcome.stats.dcache_writes,
        outcome.stats.dcache_read_misses + outcome.stats.dcache_write_misses
    );

    // 5. Bound the WCET statically from the binary.
    let report = vericomp::harness::analyze_wcet(&binary, "step")?;
    println!("── WCET analysis ──────────────────────────────────────────");
    println!(
        "WCET bound    : {} cycles (measured: {})",
        report.wcet, outcome.stats.cycles
    );
    assert!(report.wcet >= outcome.stats.cycles);
    Ok(())
}
