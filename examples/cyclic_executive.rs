//! The whole flight-control application in one image: the 26-node suite
//! linked behind a generated cyclic-executive `step`, compiled with the
//! WCET-driven driver (paper §4 / WCC-style: each optimization is kept only
//! if the analyzer proves it beneficial) on the parallel pipeline — the
//! candidate configurations compile and analyze concurrently, each cached
//! content-addressed in `target/vericomp-cache/`, so a rerun replays the
//! stored validator verdicts instead of recompiling.
//!
//! ```sh
//! cargo run --release --example cyclic_executive
//! ```

use vericomp::dataflow::{fleet, Application};
use vericomp::harness::compile_application_parallel;
use vericomp::mach::Simulator;
use vericomp::pipeline::PipelineOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Application::new("fcs", fleet::named_suite())?;
    let src = app.to_minic()?;
    println!(
        "application: {} nodes, {} globals, {} functions",
        app.nodes().len(),
        src.globals.len(),
        src.functions.len()
    );

    // WCET-driven compilation on the pipeline: candidates evaluated
    // concurrently, artifacts cached after validator acceptance
    let options = PipelineOptions {
        cache_dir: Some(PipelineOptions::default_cache_dir()),
        ..PipelineOptions::default()
    };
    let build = compile_application_parallel(&app, &options)?;
    println!("\nWCET-driven lattice search (seed frontier first):");
    for c in &build.candidates {
        let marker = if c.wcet == build.search.winner.wcet {
            "  <- winner"
        } else {
            ""
        };
        println!("  {:<28} WCET {:>7}{marker}", c.name, c.wcet);
    }
    println!(
        "search: {} probes over {} generations, {} flags dominance-pruned, {:.1}% cache hits",
        build.search.probes(),
        build.search.generations,
        build.search.pruned.len(),
        build.search.hit_rate() * 100.0,
    );
    for d in &build.search.pruned {
        println!(
            "search: pruned `{}` after generation {} ({} contexts, never reduced the bound)",
            d.flag, d.generation, d.trials
        );
    }
    println!("{}", build.stats.render());

    // where the build's time went, stage by stage and pass by pass
    // (the full span trace is also exportable: `build.trace.to_chrome_json()`)
    println!();
    print!("{}", build.trace.profile().render());

    let binary = build.artifact.program.clone();
    let report = &build.artifact.report;
    println!(
        "\nchosen image: {} bytes of code, cycle WCET {}, {} ({})",
        binary.text_size(),
        report.wcet,
        build.artifact.verdict.describe(),
        if build.stats.jobs_cached > 0 {
            "replayed from cache"
        } else {
            "validated this run"
        },
    );

    println!("\nper-node WCET decomposition (callee bounds):");
    let mut callees: Vec<_> = report.callees.iter().collect();
    callees.sort_by_key(|(_, w)| std::cmp::Reverse(**w));
    for (name, wcet) in callees {
        println!("  {:<32} {:>7} cycles", name, wcet);
    }

    // one full scheduling cycle on the simulator
    let mut sim = Simulator::new(binary);
    for port in 0..8 {
        sim.set_io_f64(port, 1.0 + f64::from(port));
    }
    let out = sim.run(100_000_000)?;
    println!(
        "\none cold activation: {} instructions, {} cycles (bound {}, slack {:.1}%)",
        out.stats.instructions,
        out.stats.cycles,
        report.wcet,
        100.0 * (report.wcet as f64 / out.stats.cycles as f64 - 1.0)
    );
    assert!(report.wcet >= out.stats.cycles);
    Ok(())
}
