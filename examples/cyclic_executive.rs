//! The whole flight-control application in one image: the 26-node suite
//! linked behind a generated cyclic-executive `step`, compiled with the
//! WCET-driven driver (paper §4 / WCC-style: each optimization is kept only
//! if the analyzer proves it beneficial), then decomposed per node.
//!
//! ```sh
//! cargo run --release --example cyclic_executive
//! ```

use vericomp::dataflow::{fleet, Application};
use vericomp::harness::compile_wcet_driven;
use vericomp::mach::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Application::new("fcs", fleet::named_suite())?;
    let src = app.to_minic()?;
    println!(
        "application: {} nodes, {} globals, {} functions",
        app.nodes().len(),
        src.globals.len(),
        src.functions.len()
    );

    // WCET-driven compilation: candidates evaluated with the analyzer
    let (binary, candidates) = compile_wcet_driven(&src, "step")?;
    println!("\nWCET-driven candidate selection:");
    for c in &candidates {
        println!("  {:<22} WCET {:>7}", c.name, c.wcet);
    }

    let report = vericomp::wcet::analyze(&binary, "step")?;
    println!(
        "\nchosen image: {} bytes of code, cycle WCET {}",
        binary.text_size(),
        report.wcet
    );

    println!("\nper-node WCET decomposition (callee bounds):");
    let mut callees: Vec<_> = report.callees.iter().collect();
    callees.sort_by_key(|(_, w)| std::cmp::Reverse(**w));
    for (name, wcet) in callees {
        println!("  {:<32} {:>7} cycles", name, wcet);
    }

    // one full scheduling cycle on the simulator
    let mut sim = Simulator::new(binary);
    for port in 0..8 {
        sim.set_io_f64(port, 1.0 + f64::from(port));
    }
    let out = sim.run(100_000_000)?;
    println!(
        "\none cold activation: {} instructions, {} cycles (bound {}, slack {:.1}%)",
        out.stats.instructions,
        out.stats.cycles,
        report.wcet,
        100.0 * (report.wcet as f64 / out.stats.cycles as f64 - 1.0)
    );
    assert!(report.wcet >= out.stats.cycles);
    Ok(())
}
