//! The paper's Figure 2 workflow on the named control-law suite: compile
//! every node under the four compiler configurations, bound each WCET
//! statically, and cross-check one activation differentially (interpreter
//! vs. simulator, annotation traces included).
//!
//! ```sh
//! cargo run --release --example flight_control_laws
//! ```

use vericomp::core::OptLevel;
use vericomp::dataflow::fleet;
use vericomp::harness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<24} {:>6} {:>11} {:>11} {:>11} {:>11}",
        "node", "syms", "pattern-O0", "no-regalloc", "verified", "opt-full"
    );
    println!("{}", "-".repeat(80));
    for node in fleet::named_suite() {
        let mut row = format!("{:<24} {:>6}", node.name(), node.len());
        let mut baseline = None;
        for level in OptLevel::all() {
            let binary = harness::compile_node(&node, level)?;
            let report = vericomp::harness::analyze_wcet(&binary, "step")?;
            // one differential activation guards against miscompilation
            harness::differential_run(&node, level, 2, |step, k| {
                f64::from(step * 5 + k) * 0.73 - 2.0
            })?;
            match baseline {
                None => {
                    baseline = Some(report.wcet as f64);
                    row.push_str(&format!(" {:>11}", report.wcet));
                }
                Some(b) => row.push_str(&format!(" {:>10.3}x", report.wcet as f64 / b)),
            }
        }
        println!("{row}");
    }
    println!("{}", "-".repeat(80));
    println!("(every row differentially validated: simulator == interpreter, traces equal)");
    Ok(())
}
