#!/bin/sh
# The full offline gate. No network, no external crates: everything the
# checks need ships in the workspace (see crates/testkit).
#
#   ci/check.sh            # fmt + build + tests + 1k-case fuzz smoke
#
# The fuzz seed is fixed so the smoke run is reproducible; the full
# acceptance run is `--cases 10000 --seed 0xCC2011` (see README).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> fuzz smoke: 1000 cases, seed 0xC1, 4 workers"
cargo run --release --offline -p vericomp-testkit --bin fuzz_pipeline -- \
    --cases 1000 --seed 0xC1 --jobs 4

echo "==> pipeline smoke: cold+warm fleet builds, bit-identical, >=90% hits"
CACHE_DIR=target/vericomp-ci-cache
rm -rf "$CACHE_DIR"
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --cache-dir "$CACHE_DIR" | tee target/vericomp-ci-cold.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --cache-dir "$CACHE_DIR" --min-hit-rate 0.9 | tee target/vericomp-ci-warm.txt
cold_digest=$(grep '^fleet digest:' target/vericomp-ci-cold.txt)
warm_digest=$(grep '^fleet digest:' target/vericomp-ci-warm.txt)
if [ "$cold_digest" != "$warm_digest" ]; then
    echo "pipeline smoke FAILED: warm rebuild not bit-identical to cold build" >&2
    echo "  cold: $cold_digest" >&2
    echo "  warm: $warm_digest" >&2
    exit 1
fi

echo "==> sweep smoke: 2 nodes x 3 configs x 2 machines, parallel == jobs 1"
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --nodes 2 --configs pattern-O0,verified,opt-full --machines mpc755,tiny-caches \
    | tee target/vericomp-ci-sweep.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --nodes 2 --configs pattern-O0,verified,opt-full --machines mpc755,tiny-caches \
    --jobs 1 | tee target/vericomp-ci-sweep-serial.txt
sweep_digest=$(grep '^fleet digest:' target/vericomp-ci-sweep.txt)
serial_digest=$(grep '^fleet digest:' target/vericomp-ci-sweep-serial.txt)
if [ "$sweep_digest" != "$serial_digest" ]; then
    echo "sweep smoke FAILED: parallel sweep not bit-identical to --jobs 1" >&2
    echo "  parallel: $sweep_digest" >&2
    echo "  serial:   $serial_digest" >&2
    exit 1
fi

echo "==> search smoke: lattice search, jobs 8 == jobs 1, warm rerun >=90% hits"
SEARCH_CACHE=target/vericomp-ci-search-cache
rm -rf "$SEARCH_CACHE"
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --search --nodes 4 --jobs 8 --cache-dir "$SEARCH_CACHE" \
    | tee target/vericomp-ci-search.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --search --nodes 4 --jobs 1 | tee target/vericomp-ci-search-serial.txt
# every `search:` line (winners, bounds, probe/prune counts) and the trace
# digest must be identical whatever the job count or cache state
grep '^search' target/vericomp-ci-search.txt > target/vericomp-ci-search-lines.txt
grep '^search' target/vericomp-ci-search-serial.txt \
    > target/vericomp-ci-search-serial-lines.txt
if ! cmp -s target/vericomp-ci-search-lines.txt \
        target/vericomp-ci-search-serial-lines.txt; then
    echo "search smoke FAILED: --jobs 8 search differs from --jobs 1" >&2
    diff target/vericomp-ci-search-lines.txt \
        target/vericomp-ci-search-serial-lines.txt >&2 || true
    exit 1
fi
search_digest=$(grep '^search digest:' target/vericomp-ci-search.txt)
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --search --nodes 4 --jobs 8 --cache-dir "$SEARCH_CACHE" --min-hit-rate 0.9 \
    | tee target/vericomp-ci-search-warm.txt
warm_search_digest=$(grep '^search digest:' target/vericomp-ci-search-warm.txt)
if [ "$search_digest" != "$warm_search_digest" ]; then
    echo "search smoke FAILED: warm re-search not bit-identical to cold" >&2
    echo "  cold: $search_digest" >&2
    echo "  warm: $warm_search_digest" >&2
    exit 1
fi

echo "==> trace smoke: Chrome-trace JSON well-formed, profile counters == jobs 1"
TRACE_JSON=target/vericomp-ci-trace.json
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --nodes 6 --jobs 8 --trace "$TRACE_JSON" --profile \
    | tee target/vericomp-ci-trace.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --nodes 6 --jobs 1 --profile | tee target/vericomp-ci-trace-serial.txt
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace has no events"
for e in events:
    for key in ("ph", "ts", "dur", "name"):
        assert key in e, f"event missing {key}: {e}"
    assert e["ph"] == "X", f"not a complete event: {e}"
print(f"trace smoke: {len(events)} well-formed events")
EOF
# the profile table must cover every pipeline stage...
for stage in queue-wait cache-lookup compile validate analyze store; do
    if ! grep -q "^profile: stage $stage" target/vericomp-ci-trace.txt; then
        echo "trace smoke FAILED: profile is missing stage row \`$stage\`" >&2
        exit 1
    fi
done
# ...and its counter digest must not depend on the job count
profile_digest=$(grep '^profile: counter digest:' target/vericomp-ci-trace.txt)
serial_profile_digest=$(grep '^profile: counter digest:' \
    target/vericomp-ci-trace-serial.txt)
if [ "$profile_digest" != "$serial_profile_digest" ]; then
    echo "trace smoke FAILED: profile counters differ across job counts" >&2
    echo "  jobs 8: $profile_digest" >&2
    echo "  jobs 1: $serial_profile_digest" >&2
    exit 1
fi

echo "==> scenario smoke: multi-rate matrix, sched report == jobs 1, over-budget reported"
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    --configs verified,opt-full --machines mpc755,tiny-caches --jobs 8 \
    | tee target/vericomp-ci-scenario.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    --configs verified,opt-full --machines mpc755,tiny-caches --jobs 1 \
    | tee target/vericomp-ci-scenario-serial.txt
# every `sched:` verdict line and both digests must be identical whatever
# the job count
grep '^sched' target/vericomp-ci-scenario.txt > target/vericomp-ci-sched-lines.txt
grep '^sched' target/vericomp-ci-scenario-serial.txt \
    > target/vericomp-ci-sched-serial-lines.txt
if ! cmp -s target/vericomp-ci-sched-lines.txt \
        target/vericomp-ci-sched-serial-lines.txt; then
    echo "scenario smoke FAILED: --jobs 8 sched report differs from --jobs 1" >&2
    diff target/vericomp-ci-sched-lines.txt \
        target/vericomp-ci-sched-serial-lines.txt >&2 || true
    exit 1
fi
scenario_digest=$(grep '^fleet digest:' target/vericomp-ci-scenario.txt)
scenario_serial_digest=$(grep '^fleet digest:' target/vericomp-ci-scenario-serial.txt)
if [ "$scenario_digest" != "$scenario_serial_digest" ]; then
    echo "scenario smoke FAILED: sweep digest differs across job counts" >&2
    echo "  jobs 8: $scenario_digest" >&2
    echo "  jobs 1: $scenario_serial_digest" >&2
    exit 1
fi
# generated budgets must fit (the model is calibrated to be sound)...
if grep -q 'OVER by' target/vericomp-ci-scenario.txt; then
    echo "scenario smoke FAILED: derived budgets reported over budget" >&2
    exit 1
fi
# ...while an intentionally over-budget mode must come back as infeasible
# verdicts (exit 0 — reporting, not panicking)...
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 8 --scenario-overbudget degraded --jobs 8 \
    | tee target/vericomp-ci-scenario-over.txt
if ! grep -q 'OVER by' target/vericomp-ci-scenario-over.txt; then
    echo "scenario smoke FAILED: over-budget mode not reported infeasible" >&2
    exit 1
fi
# ...and must flip the exit code under --require-feasible
if cargo run --release --offline -p vericomp --bin compile_fleet -- \
        --scenario 3051 --scenario-tasks 8 --scenario-overbudget degraded \
        --require-feasible --jobs 8 > /dev/null 2>&1; then
    echo "scenario smoke FAILED: --require-feasible exited 0 on infeasible run" >&2
    exit 1
fi

echo "==> analyzer smoke: warm-session reuse, analyze-span budget, digests stable across jobs"
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    --configs verified,opt-full --jobs 8 --reanalyze --profile \
    | tee target/vericomp-ci-analyzer.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    --configs verified,opt-full --jobs 1 --reanalyze --profile \
    | tee target/vericomp-ci-analyzer-serial.txt
# the audit re-derives every unique artifact through the session analyzer
# that just ran the sweep: everything must replay from the fact cache
reanalyze_line=$(grep '^reanalyze:' target/vericomp-ci-analyzer.txt)
case "$reanalyze_line" in
    *" functions_analyzed=0") : ;;
    *)
        echo "analyzer smoke FAILED: warm audit re-ran fixpoints: $reanalyze_line" >&2
        exit 1
        ;;
esac
reuse_spans=$(awk '$2 == "event" && $3 == "analyze:reuse" { print $4 }' \
    target/vericomp-ci-analyzer.txt)
if [ -z "$reuse_spans" ] || [ "$reuse_spans" -eq 0 ]; then
    echo "analyzer smoke FAILED: no analyze:reuse spans in the profile" >&2
    exit 1
fi
# the sparse worklist analyzer bounds this scenario's analyze stage in the
# low hundreds of ms (~276 ms at jobs 8 when recorded); 3000 ms is >10x
# headroom and still far under what the dense-iteration analyzer spent
analyze_ms=$(awk '$2 == "stage" && $3 == "analyze" { print $6 }' \
    target/vericomp-ci-analyzer.txt)
if ! awk -v ms="$analyze_ms" 'BEGIN { exit !(ms + 0 < 3000) }'; then
    echo "analyzer smoke FAILED: analyze stage took ${analyze_ms} ms (bound 3000)" >&2
    exit 1
fi
# sched verdicts, sweep digest and profile counters must be identical
# whatever the job count (analyze:* event counts are excluded from the
# counter digest by design — cache hits are scheduling-dependent)
grep '^sched\|^fleet digest:\|^profile: counter digest:' \
    target/vericomp-ci-analyzer.txt > target/vericomp-ci-analyzer-lines.txt
grep '^sched\|^fleet digest:\|^profile: counter digest:' \
    target/vericomp-ci-analyzer-serial.txt > target/vericomp-ci-analyzer-serial-lines.txt
if ! cmp -s target/vericomp-ci-analyzer-lines.txt \
        target/vericomp-ci-analyzer-serial-lines.txt; then
    echo "analyzer smoke FAILED: --jobs 8 run differs from --jobs 1" >&2
    diff target/vericomp-ci-analyzer-lines.txt \
        target/vericomp-ci-analyzer-serial-lines.txt >&2 || true
    exit 1
fi

echo "==> daemon smoke: shared bounded store, two clients, eviction, clean shutdown"
DAEMON_SOCK=target/vericomp-ci-daemon.sock
rm -f "$DAEMON_SOCK"
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --socket "$DAEMON_SOCK" --shards 4 --store-bytes 120000 \
    > target/vericomp-ci-daemon.txt 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    [ -S "$DAEMON_SOCK" ] && break
    sleep 0.1
done
if [ ! -S "$DAEMON_SOCK" ]; then
    echo "daemon smoke FAILED: socket never appeared" >&2
    cat target/vericomp-ci-daemon.txt >&2
    exit 1
fi
# client 1: a scenario through the daemon — sweep digest, every sched
# verdict line, and the sched digest must match the solo run
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --connect "$DAEMON_SOCK" \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    | tee target/vericomp-ci-daemon-scenario.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    | tee target/vericomp-ci-daemon-scenario-solo.txt
grep '^sched\|^fleet digest:' target/vericomp-ci-daemon-scenario.txt \
    > target/vericomp-ci-daemon-sched-lines.txt
grep '^sched\|^fleet digest:' target/vericomp-ci-daemon-scenario-solo.txt \
    > target/vericomp-ci-daemon-sched-solo-lines.txt
if ! cmp -s target/vericomp-ci-daemon-sched-lines.txt \
        target/vericomp-ci-daemon-sched-solo-lines.txt; then
    echo "daemon smoke FAILED: served scenario differs from solo" >&2
    diff target/vericomp-ci-daemon-sched-lines.txt \
        target/vericomp-ci-daemon-sched-solo-lines.txt >&2 || true
    exit 1
fi
# client 2: the named fleet through the daemon must print the digest a
# solo run of the same request prints; this batch also pushes the store
# past its byte bound, evicting the older scenario batch
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --connect "$DAEMON_SOCK" --nodes 6 --configs verified,opt-full \
    | tee target/vericomp-ci-daemon-fleet.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --nodes 6 --configs verified,opt-full \
    | tee target/vericomp-ci-daemon-fleet-solo.txt
daemon_fleet_digest=$(grep '^fleet digest:' target/vericomp-ci-daemon-fleet.txt)
solo_fleet_digest=$(grep '^fleet digest:' target/vericomp-ci-daemon-fleet-solo.txt)
if [ "$daemon_fleet_digest" != "$solo_fleet_digest" ]; then
    echo "daemon smoke FAILED: served fleet digest differs from solo" >&2
    echo "  daemon: $daemon_fleet_digest" >&2
    echo "  solo:   $solo_fleet_digest" >&2
    exit 1
fi
# warm rerun of the most recent batch against the daemon's resident
# store: >=90% hits enforced client-side, same digest
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --connect "$DAEMON_SOCK" --nodes 6 --configs verified,opt-full \
    --min-hit-rate 0.9 | tee target/vericomp-ci-daemon-warm.txt
warm_daemon_digest=$(grep '^fleet digest:' target/vericomp-ci-daemon-warm.txt)
cold_daemon_digest=$(grep '^fleet digest:' target/vericomp-ci-daemon-fleet.txt)
if [ "$warm_daemon_digest" != "$cold_daemon_digest" ]; then
    echo "daemon smoke FAILED: warm daemon rerun not bit-identical" >&2
    exit 1
fi
# the byte bound must have evicted least-recent batches by now
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --stats-of "$DAEMON_SOCK" | tee target/vericomp-ci-daemon-stats.txt
evictions=$(sed -n 's/^server: store .* evictions \([0-9]*\)$/\1/p' \
    target/vericomp-ci-daemon-stats.txt)
if [ -z "$evictions" ] || [ "$evictions" -eq 0 ]; then
    echo "daemon smoke FAILED: store bound forced no evictions" >&2
    exit 1
fi
# v2 content negotiation: a second scenario client replays the first
# client's scenario from a fresh connection — every unit digest is
# already in the daemon's parse cache, so the request must upload zero
# unit bodies and resolve >=90% of its units as parse-cache hits
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --stats-of "$DAEMON_SOCK" > target/vericomp-ci-daemon-stats-before.txt
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --connect "$DAEMON_SOCK" \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    | tee target/vericomp-ci-daemon-scenario-warm.txt
grep '^sched\|^fleet digest:' target/vericomp-ci-daemon-scenario-warm.txt \
    > target/vericomp-ci-daemon-sched-warm-lines.txt
if ! cmp -s target/vericomp-ci-daemon-sched-warm-lines.txt \
        target/vericomp-ci-daemon-sched-solo-lines.txt; then
    echo "daemon smoke FAILED: warm scenario client differs from solo" >&2
    diff target/vericomp-ci-daemon-sched-warm-lines.txt \
        target/vericomp-ci-daemon-sched-solo-lines.txt >&2 || true
    exit 1
fi
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --stats-of "$DAEMON_SOCK" > target/vericomp-ci-daemon-stats-after.txt
uploaded_before=$(awk '$2 == "wire" { print $10 }' \
    target/vericomp-ci-daemon-stats-before.txt)
uploaded_after=$(awk '$2 == "wire" { print $10 }' \
    target/vericomp-ci-daemon-stats-after.txt)
if [ -z "$uploaded_before" ] || [ -z "$uploaded_after" ] \
        || [ "$uploaded_after" -ne "$uploaded_before" ]; then
    echo "daemon smoke FAILED: warm scenario client uploaded unit bodies" >&2
    echo "  uploaded before: ${uploaded_before:-?}, after: ${uploaded_after:-?}" >&2
    exit 1
fi
parse_rate=$(awk '
    $2 == "parse-cache" && FNR == NR { hb = $4; mb = $6 }
    $2 == "parse-cache" && FNR != NR {
        h = $4 - hb; m = $6 - mb
        if (h + m > 0) printf "%.3f", h / (h + m); else print "0.000"
    }' target/vericomp-ci-daemon-stats-before.txt \
        target/vericomp-ci-daemon-stats-after.txt)
if ! awk -v r="$parse_rate" 'BEGIN { exit !(r + 0 >= 0.9) }'; then
    echo "daemon smoke FAILED: warm scenario parse-cache hit rate ${parse_rate:-?} < 0.9" >&2
    cat target/vericomp-ci-daemon-stats-after.txt >&2
    exit 1
fi
echo "daemon smoke: warm scenario client negotiated 0 uploads, parse hit rate $parse_rate"
# clean shutdown: ack, daemon exits 0, socket file removed
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --shutdown "$DAEMON_SOCK"
if ! wait $DAEMON_PID; then
    echo "daemon smoke FAILED: daemon exited non-zero" >&2
    cat target/vericomp-ci-daemon.txt >&2
    exit 1
fi
if ! grep -q '^vericomp_serve: clean shutdown$' target/vericomp-ci-daemon.txt; then
    echo "daemon smoke FAILED: no clean-shutdown line in daemon log" >&2
    cat target/vericomp-ci-daemon.txt >&2
    exit 1
fi
if [ -e "$DAEMON_SOCK" ]; then
    echo "daemon smoke FAILED: socket file survived shutdown" >&2
    exit 1
fi

echo "==> telemetry smoke: merged wire trace, metrics + recorder admin, p99 SLO"
TELEM_SOCK=target/vericomp-ci-telemetry.sock
METRICS_JSON=target/vericomp-ci-metrics.json
MERGED_TRACE=target/vericomp-ci-merged-trace.json
rm -f "$TELEM_SOCK" "$METRICS_JSON" "$MERGED_TRACE"
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --socket "$TELEM_SOCK" --metrics-json "$METRICS_JSON" --slo-p99-ms 600000 \
    > target/vericomp-ci-telemetry-daemon.txt 2>&1 &
TELEM_PID=$!
for _ in $(seq 1 100); do
    [ -S "$TELEM_SOCK" ] && break
    sleep 0.1
done
if [ ! -S "$TELEM_SOCK" ]; then
    echo "telemetry smoke FAILED: socket never appeared" >&2
    cat target/vericomp-ci-telemetry-daemon.txt >&2
    exit 1
fi
# a traced scenario through the daemon: --connect --trace now works and
# writes one merged Chrome trace — client rows under pid 1, the server's
# rows for the same request (tagged with its trace id) under pid 2
cargo run --release --offline -p vericomp --bin compile_fleet -- \
    --connect "$TELEM_SOCK" --trace "$MERGED_TRACE" \
    --scenario 3051 --scenario-tasks 16 --scenario-frames 4 \
    | tee target/vericomp-ci-telemetry-traced.txt
if ! grep -q '^trace: .* server-side, trace id ' \
        target/vericomp-ci-telemetry-traced.txt; then
    echo "telemetry smoke FAILED: traced connect run printed no trace line" >&2
    exit 1
fi
python3 - "$MERGED_TRACE" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "merged trace has no events"
pids = {e["pid"] for e in events}
assert 1 in pids, "no client-side rows (pid 1) in the merged trace"
assert 2 in pids, "no server-side rows (pid 2) in the merged trace"
server_names = {e["name"] for e in events if e["pid"] == 2}
for stage in ("queue-wait", "cache-lookup", "compile", "analyze", "store"):
    assert stage in server_names, f"server rows are missing stage `{stage}`"
client_names = {e["name"] for e in events if e["pid"] == 1}
assert "connect" in client_names and "request" in client_names, \
    f"client rows incomplete: {sorted(client_names)}"
server = [e for e in events if e["pid"] == 2]
assert all("trace=" in e["args"]["detail"] for e in server), \
    "a server span lost its trace tag"
tags = {d.split()[0] for d in (e["args"]["detail"] for e in server)
        for d in [d[d.index("trace="):]]}
assert len(tags) == 1, f"server spans carry mixed trace ids: {tags}"
print(f"telemetry smoke: merged trace has {len(events)} events, "
      f"{len(server)} server-side, one trace id")
EOF
# mid-run admin: the metrics registry and the flight-recorder ring are
# queryable without stopping the daemon, and both are valid JSON
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --metrics-of "$TELEM_SOCK" > target/vericomp-ci-telemetry-metrics.txt
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --recorder-of "$TELEM_SOCK" > target/vericomp-ci-telemetry-recorder.txt
python3 - target/vericomp-ci-telemetry-metrics.txt \
    target/vericomp-ci-telemetry-recorder.txt <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["counters"].get("requests", 0) >= 1, "no requests counted"
assert m["counters"].get("batches", 0) >= 1, "no batches counted"
for hist in ("request_wall_ns", "batch_cells", "queue_depth"):
    h = m["histograms"].get(hist)
    assert h and h["count"] >= 1, f"histogram `{hist}` missing or empty"
    assert h["p50"] <= h["p99"], f"histogram `{hist}` quantiles disordered"
assert len(m["counter_digest"]) == 32, "malformed metrics counter digest"
r = json.load(open(sys.argv[2]))
kinds = {e["kind"] for e in r["events"]}
for kind in ("accept", "request", "batch-join", "sweep-start", "sweep-end"):
    assert kind in kinds, f"recorder has no `{kind}` events ({sorted(kinds)})"
traced = [e for e in r["events"] if e["trace"] != "0" * 16]
assert traced, "the traced request never reached the flight recorder"
print(f"telemetry smoke: {len(r['events'])} recorder events, "
      f"kinds {sorted(kinds)}")
EOF
# the stats snapshot now reports request-latency percentiles and judges
# the p99 SLO (600 s here, so it must come back `met`)
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --stats-of "$TELEM_SOCK" | tee target/vericomp-ci-telemetry-stats.txt
if ! grep -q '^server: latency request p50 ' \
        target/vericomp-ci-telemetry-stats.txt; then
    echo "telemetry smoke FAILED: stats missing the request-latency line" >&2
    exit 1
fi
if ! grep -q '^server: p99 SLO .*: met (p99 ' target/vericomp-ci-telemetry-stats.txt; then
    echo "telemetry smoke FAILED: p99 SLO line missing or MISSED" >&2
    exit 1
fi
# clean shutdown persists the registry to --metrics-json
cargo run --release --offline -p vericomp --bin vericomp_serve -- \
    --shutdown "$TELEM_SOCK"
if ! wait $TELEM_PID; then
    echo "telemetry smoke FAILED: daemon exited non-zero" >&2
    cat target/vericomp-ci-telemetry-daemon.txt >&2
    exit 1
fi
python3 - "$METRICS_JSON" target/vericomp-ci-telemetry-metrics.txt <<'EOF'
import json, sys
final = json.load(open(sys.argv[1]))
mid = json.load(open(sys.argv[2]))
assert final["counters"]["requests"] >= mid["counters"]["requests"], \
    "persisted registry lost requests recorded mid-run"
assert len(final["counter_digest"]) == 32
print("telemetry smoke: registry persisted at shutdown")
EOF

echo "==> daemon bench: E10 soak, recorder overhead < 3%, latency in BENCH_daemon.json"
cargo bench --offline -p vericomp-bench --bench daemon \
    | tee target/vericomp-ci-bench-daemon.txt
if ! grep -q '^daemon: recorder overhead on warm soak' \
        target/vericomp-ci-bench-daemon.txt; then
    echo "daemon bench FAILED: no recorder-overhead line (gate not exercised)" >&2
    exit 1
fi
python3 - crates/bench/BENCH_daemon.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
notes = doc["notes"]
metrics = notes["metrics"]
for hist in ("request_wall_ns", "batch_cells", "queue_depth"):
    assert metrics["histograms"][hist]["count"] >= 1, f"`{hist}` empty in BENCH_daemon.json"
server = notes["server"]
assert server["request_p50_ns"] >= 1 and server["request_p99_ns"] >= server["request_p50_ns"], \
    "request latency percentiles missing from the server stats note"
recorder = notes["recorder"]
assert recorder["warm_on_ns"] >= 1 and recorder["warm_off_ns"] >= 1
print("daemon bench: BENCH_daemon.json carries latency percentiles + histograms")
EOF

echo "==> all checks passed"
