#!/bin/sh
# The full offline gate. No network, no external crates: everything the
# checks need ships in the workspace (see crates/testkit).
#
#   ci/check.sh            # fmt + build + tests + 1k-case fuzz smoke
#
# The fuzz seed is fixed so the smoke run is reproducible; the full
# acceptance run is `--cases 10000 --seed 0xCC2011` (see README).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> fuzz smoke: 1000 cases, seed 0xC1"
cargo run --release --offline -p vericomp-testkit --bin fuzz_pipeline -- \
    --cases 1000 --seed 0xC1

echo "==> all checks passed"
