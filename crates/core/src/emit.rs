//! Instruction selection and emission: allocated RTL → PowerPC machine
//! blocks.
//!
//! Emission handles the target's addressing realities: `lis`/`ori` immediate
//! materialization, `ha`/`lo` global address formation (with optional
//! small-data-area addressing through `r13` — the optimization the paper
//! notes CompCert did *not* use, §3.3), the `r2`-relative floating constant
//! pool, stack frames with callee-saved spill areas, the EABI-style calling
//! convention with parallel-move resolution, and the annotation table
//! carrying final argument locations (§3.4).
//!
//! Reserved registers: `r0` (prologue scratch), `r1` (SP), `r2` (TOC),
//! `r11`/`r12` (address/parallel-move scratch), `r13` (SDA), `f12`/`f13`
//! (FP scratch). The allocator never hands these out; emission may use them
//! freely between RTL instructions.

use std::collections::{BTreeMap, BTreeSet};

use vericomp_arch::inst::{Cond, Inst as M};
use vericomp_arch::program::{AnnotationEntry, ArgLoc, ElemTy};
use vericomp_arch::reg::{Cr, Fpr, Gpr};
use vericomp_arch::MachineConfig;
use vericomp_minic::ast::Cmp;

use crate::layout::{ConstPool, Layout};
use crate::regalloc::{Allocation, PReg};
use crate::rtl::{
    Addr, AnnotArg, BlockId, FBin, FUn, Func, IBin, IUnop, Inst, RegClass, SlotId, Term, Vreg,
};
use crate::CompileError;

const SCRATCH_A: Gpr = Gpr::new(12);
const SCRATCH_B: Gpr = Gpr::new(11);
const SCRATCH_F: Fpr = Fpr::new(13);

/// A machine-level block terminator with still-symbolic targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmTerm {
    /// Unconditional jump.
    Goto(BlockId),
    /// Conditional branch on CR0 (set by the compare emitted at the end of
    /// the block). `float` records that the compare was `fcmpu`: float
    /// conditions must never be negated during layout (NaN!).
    Cond {
        /// Branch condition.
        cond: Cond,
        /// Whether the comparison was floating (IEEE unordered possible).
        float: bool,
        /// Target when the condition holds.
        then_: BlockId,
        /// Target otherwise.
        else_: BlockId,
    },
    /// Function return (`blr` after the inlined epilogue).
    Ret,
}

/// A machine-level basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmBlock {
    /// The RTL block this was emitted from.
    pub id: BlockId,
    /// Machine instructions (calls appear as `bl 0` placeholders).
    pub insts: Vec<M>,
    /// Terminator.
    pub term: AsmTerm,
    /// `(index into insts, callee name)` for every call placeholder.
    pub calls: Vec<(usize, String)>,
}

/// A machine-level function awaiting layout.
#[derive(Debug, Clone)]
pub struct AsmFunc {
    /// Function name.
    pub name: String,
    /// Blocks in layout order (reverse post-order of the RTL).
    pub blocks: Vec<AsmBlock>,
    /// Stack frame size in bytes (0 = frameless leaf).
    pub frame: u32,
}

/// Emission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmitOptions {
    /// Use small-data-area addressing for globals within reach of `r13`.
    pub sda: bool,
}

fn cond_of(c: Cmp) -> Cond {
    match c {
        Cmp::Eq => Cond::Eq,
        Cmp::Ne => Cond::Ne,
        Cmp::Lt => Cond::Lt,
        Cmp::Le => Cond::Le,
        Cmp::Gt => Cond::Gt,
        Cmp::Ge => Cond::Ge,
    }
}

fn ha(addr: u32) -> i16 {
    ((addr.wrapping_add(0x8000)) >> 16) as u16 as i16
}

fn lo(addr: u32) -> i16 {
    addr as u16 as i16
}

/// Emits `li`/`lis`/`ori` to materialize an arbitrary 32-bit constant.
fn load_imm(out: &mut Vec<M>, rd: Gpr, v: i32) {
    if i16::try_from(v).is_ok() {
        out.push(M::li(rd, v as i16));
    } else if v as u32 & 0xFFFF == 0 {
        out.push(M::lis(rd, (v >> 16) as i16));
    } else {
        out.push(M::lis(rd, (v >> 16) as i16));
        out.push(M::Ori {
            rd,
            ra: rd,
            imm: v as u32 as u16,
        });
    }
}

struct Emitter<'a> {
    f: &'a Func,
    alloc: &'a Allocation,
    layout: &'a Layout,
    pool: &'a mut ConstPool,
    annots: &'a mut Vec<AnnotationEntry>,
    cfg: &'a MachineConfig,
    opts: EmitOptions,
    slot_off: BTreeMap<SlotId, u32>,
    saved_g: Vec<Gpr>,
    saved_f: Vec<Fpr>,
    has_call: bool,
    frame: u32,
}

impl<'a> Emitter<'a> {
    fn gpr(&self, v: Vreg) -> Result<Gpr, CompileError> {
        match self.alloc.preg(v) {
            PReg::G(g) => Ok(g),
            PReg::F(_) => Err(CompileError::Emit(format!(
                "class mismatch: {v} expected in a GPR in `{}`",
                self.f.name
            ))),
        }
    }

    fn fpr(&self, v: Vreg) -> Result<Fpr, CompileError> {
        match self.alloc.preg(v) {
            PReg::F(r) => Ok(r),
            PReg::G(_) => Err(CompileError::Emit(format!(
                "class mismatch: {v} expected in an FPR in `{}`",
                self.f.name
            ))),
        }
    }

    fn slot_offset(&self, s: SlotId) -> i16 {
        self.slot_off[&s] as i16
    }

    /// Emits the address formation for a global and returns `(displacement,
    /// base register)` for the subsequent access.
    fn global_base(&self, out: &mut Vec<M>, addr: u32) -> (i16, Gpr) {
        if self.opts.sda {
            if let Some(off) = self.layout.sda_offset(addr) {
                return (off, Gpr::SDA);
            }
        }
        out.push(M::Addis {
            rd: SCRATCH_A,
            ra: Gpr::R0,
            imm: ha(addr),
        });
        (lo(addr), SCRATCH_A)
    }

    /// Emits a load or store of the value register `data` at `addr`.
    fn mem_access(
        &mut self,
        out: &mut Vec<M>,
        addr: &Addr,
        data: Vreg,
        is_load: bool,
    ) -> Result<(), CompileError> {
        let class = self.f.class_of(data);
        let simple = |d: i16, ra: Gpr, this: &Self| -> Result<M, CompileError> {
            Ok(match (class, is_load) {
                (RegClass::I, true) => M::Lwz {
                    rd: this.gpr(data)?,
                    d,
                    ra,
                },
                (RegClass::I, false) => M::Stw {
                    rs: this.gpr(data)?,
                    d,
                    ra,
                },
                (RegClass::F, true) => M::Lfd {
                    fd: this.fpr(data)?,
                    d,
                    ra,
                },
                (RegClass::F, false) => M::Stfd {
                    fs: this.fpr(data)?,
                    d,
                    ra,
                },
            })
        };
        match addr {
            Addr::Stack(s) => {
                let d = self.slot_offset(*s);
                let inst = simple(d, Gpr::SP, self)?;
                out.push(inst);
            }
            Addr::Global { name, offset } => {
                let base = self.layout.global(name).addr + offset;
                let (d, ra) = self.global_base(out, base);
                let inst = simple(d, ra, self)?;
                out.push(inst);
            }
            Addr::Io(port) => {
                let a = self.cfg.io_base + 8 * port;
                out.push(M::Addis {
                    rd: SCRATCH_A,
                    ra: Gpr::R0,
                    imm: ha(a),
                });
                let inst = simple(lo(a), SCRATCH_A, self)?;
                out.push(inst);
            }
            Addr::GlobalIndex { name, index, scale } => {
                let base = self.layout.global(name).addr;
                let sh = match scale {
                    4 => 2u8,
                    8 => 3,
                    other => {
                        return Err(CompileError::Emit(format!("bad scale {other}")));
                    }
                };
                out.push(M::slwi(SCRATCH_B, self.gpr(*index)?, sh));
                let base_reg = if self.opts.sda {
                    match self.layout.sda_offset(base) {
                        Some(off) => {
                            out.push(M::Addi {
                                rd: SCRATCH_B,
                                ra: SCRATCH_B,
                                imm: off,
                            });
                            Gpr::SDA
                        }
                        None => {
                            out.push(M::Addis {
                                rd: SCRATCH_A,
                                ra: Gpr::R0,
                                imm: ha(base),
                            });
                            out.push(M::Addi {
                                rd: SCRATCH_A,
                                ra: SCRATCH_A,
                                imm: lo(base),
                            });
                            SCRATCH_A
                        }
                    }
                } else {
                    out.push(M::Addis {
                        rd: SCRATCH_A,
                        ra: Gpr::R0,
                        imm: ha(base),
                    });
                    out.push(M::Addi {
                        rd: SCRATCH_A,
                        ra: SCRATCH_A,
                        imm: lo(base),
                    });
                    SCRATCH_A
                };
                let inst = match (class, is_load) {
                    (RegClass::I, true) => M::Lwzx {
                        rd: self.gpr(data)?,
                        ra: base_reg,
                        rb: SCRATCH_B,
                    },
                    (RegClass::I, false) => M::Stwx {
                        rs: self.gpr(data)?,
                        ra: base_reg,
                        rb: SCRATCH_B,
                    },
                    (RegClass::F, true) => M::Lfdx {
                        fd: self.fpr(data)?,
                        ra: base_reg,
                        rb: SCRATCH_B,
                    },
                    (RegClass::F, false) => M::Stfdx {
                        fs: self.fpr(data)?,
                        ra: base_reg,
                        rb: SCRATCH_B,
                    },
                };
                out.push(inst);
            }
        }
        Ok(())
    }

    fn emit_move(out: &mut Vec<M>, dst: PReg, src: PReg) {
        match (dst, src) {
            (PReg::G(d), PReg::G(s)) => {
                if d != s {
                    out.push(M::mr(d, s));
                }
            }
            (PReg::F(d), PReg::F(s)) => {
                if d != s {
                    out.push(M::Fmr { fd: d, fa: s });
                }
            }
            _ => unreachable!("parallel moves never mix classes"),
        }
    }

    /// Resolves a parallel move (distinct destinations), breaking cycles
    /// with the class scratch register.
    fn parallel_move(out: &mut Vec<M>, moves: Vec<(PReg, PReg)>) {
        let mut pending: Vec<(PReg, PReg)> = moves.into_iter().filter(|(d, s)| d != s).collect();
        while !pending.is_empty() {
            if let Some(i) = pending
                .iter()
                .position(|(d, _)| !pending.iter().any(|(_, s)| s == d))
            {
                let (d, s) = pending.remove(i);
                Self::emit_move(out, d, s);
            } else {
                // every destination is also a pending source: a cycle
                let d = pending[0].0;
                let scratch = match d {
                    PReg::G(_) => PReg::G(SCRATCH_A),
                    PReg::F(_) => PReg::F(SCRATCH_F),
                };
                Self::emit_move(out, scratch, d);
                for (_, s) in &mut pending {
                    if *s == d {
                        *s = scratch;
                    }
                }
            }
        }
    }

    /// ABI locations for a list of argument classes.
    fn abi_locs(&self, classes: &[RegClass]) -> Result<Vec<PReg>, CompileError> {
        let mut next_g = 3u8;
        let mut next_f = 1u8;
        let mut locs = Vec::with_capacity(classes.len());
        for c in classes {
            match c {
                RegClass::I => {
                    if next_g > 10 {
                        return Err(CompileError::Emit("too many integer arguments".into()));
                    }
                    locs.push(PReg::G(Gpr::new(next_g)));
                    next_g += 1;
                }
                RegClass::F => {
                    if next_f > 8 {
                        return Err(CompileError::Emit("too many FP arguments".into()));
                    }
                    locs.push(PReg::F(Fpr::new(next_f)));
                    next_f += 1;
                }
            }
        }
        Ok(locs)
    }

    fn inst(
        &mut self,
        out: &mut Vec<M>,
        calls: &mut Vec<(usize, String)>,
        inst: &Inst,
    ) -> Result<(), CompileError> {
        match inst {
            Inst::ImmI { dst, value } => load_imm(out, self.gpr(*dst)?, *value),
            Inst::ImmF { dst, value } => {
                let off = self.pool.offset_of(*value);
                let d = i16::try_from(off)
                    .map_err(|_| CompileError::Emit("constant pool exceeds 32 KiB".into()))?;
                out.push(M::Lfd {
                    fd: self.fpr(*dst)?,
                    d,
                    ra: Gpr::TOC,
                });
            }
            Inst::MovI { dst, src } => {
                Self::emit_move(out, PReg::G(self.gpr(*dst)?), PReg::G(self.gpr(*src)?));
            }
            Inst::MovF { dst, src } => {
                Self::emit_move(out, PReg::F(self.fpr(*dst)?), PReg::F(self.fpr(*src)?));
            }
            Inst::UnI {
                op: IUnop::Neg,
                dst,
                a,
            } => {
                out.push(M::Neg {
                    rd: self.gpr(*dst)?,
                    ra: self.gpr(*a)?,
                });
            }
            Inst::BinI { op, dst, a, b } => {
                let rd = self.gpr(*dst)?;
                let ra = self.gpr(*a)?;
                let rb = self.gpr(*b)?;
                out.push(match op {
                    IBin::Add => M::Add { rd, ra, rb },
                    // rd = rb - ra on PowerPC; we want a - b
                    IBin::Sub => M::Subf { rd, ra: rb, rb: ra },
                    IBin::Mul => M::Mullw { rd, ra, rb },
                    IBin::Div => M::Divw { rd, ra, rb },
                    IBin::And => M::And { rd, ra, rb },
                    IBin::Or => M::Or { rd, ra, rb },
                    IBin::Xor => M::Xor { rd, ra, rb },
                    IBin::Shl => M::Slw { rd, ra, rb },
                    IBin::Shr => M::Srw { rd, ra, rb },
                    IBin::Sar => M::Sraw { rd, ra, rb },
                });
            }
            Inst::BinIImm { op, dst, a, imm } => {
                let rd = self.gpr(*dst)?;
                let ra = self.gpr(*a)?;
                let bad =
                    |op: &IBin| CompileError::Emit(format!("illegal immediate {imm} for {op:?}"));
                out.push(match op {
                    IBin::Add => M::Addi {
                        rd,
                        ra,
                        imm: i16::try_from(*imm).map_err(|_| bad(op))?,
                    },
                    IBin::Mul => M::Mulli {
                        rd,
                        ra,
                        imm: i16::try_from(*imm).map_err(|_| bad(op))?,
                    },
                    IBin::And => M::Andi {
                        rd,
                        ra,
                        imm: u16::try_from(*imm).map_err(|_| bad(op))?,
                    },
                    IBin::Or => M::Ori {
                        rd,
                        ra,
                        imm: u16::try_from(*imm).map_err(|_| bad(op))?,
                    },
                    IBin::Xor => M::Xori {
                        rd,
                        ra,
                        imm: u16::try_from(*imm).map_err(|_| bad(op))?,
                    },
                    IBin::Shl if (1..32).contains(imm) => M::slwi(rd, ra, *imm as u8),
                    IBin::Shr if (1..32).contains(imm) => M::srwi(rd, ra, *imm as u8),
                    IBin::Sar if (0..32).contains(imm) => M::Srawi {
                        rd,
                        ra,
                        sh: *imm as u8,
                    },
                    IBin::Shl | IBin::Shr if *imm == 0 => M::mr(rd, ra),
                    _ => return Err(bad(op)),
                });
            }
            Inst::UnF { op, dst, a } => {
                let fd = self.fpr(*dst)?;
                let fa = self.fpr(*a)?;
                out.push(match op {
                    FUn::Neg => M::Fneg { fd, fa },
                    FUn::Abs => M::Fabs { fd, fa },
                });
            }
            Inst::BinF { op, dst, a, b } => {
                let fd = self.fpr(*dst)?;
                let fa = self.fpr(*a)?;
                let fb = self.fpr(*b)?;
                out.push(match op {
                    FBin::Add => M::Fadd { fd, fa, fb },
                    FBin::Sub => M::Fsub { fd, fa, fb },
                    FBin::Mul => M::Fmul { fd, fa, fc: fb },
                    FBin::Div => M::Fdiv { fd, fa, fb },
                });
            }
            Inst::MaddF { dst, a, b, c } => {
                out.push(M::Fmadd {
                    fd: self.fpr(*dst)?,
                    fa: self.fpr(*a)?,
                    fc: self.fpr(*b)?,
                    fb: self.fpr(*c)?,
                });
            }
            Inst::Itof { dst, src } => {
                out.push(M::Itof {
                    fd: self.fpr(*dst)?,
                    ra: self.gpr(*src)?,
                });
            }
            Inst::Ftoi { dst, src } => {
                out.push(M::Ftoi {
                    rd: self.gpr(*dst)?,
                    fa: self.fpr(*src)?,
                });
            }
            Inst::Load { dst, addr } => self.mem_access(out, addr, *dst, true)?,
            Inst::Store { src, addr } => self.mem_access(out, addr, *src, false)?,
            Inst::Call { dst, callee, args } => {
                let classes: Vec<RegClass> = args.iter().map(|&a| self.f.class_of(a)).collect();
                let dests = self.abi_locs(&classes)?;
                let moves = args
                    .iter()
                    .zip(&dests)
                    .map(|(&a, &d)| (d, self.alloc.preg(a)))
                    .collect();
                Self::parallel_move(out, moves);
                calls.push((out.len(), callee.clone()));
                out.push(M::Bl { target: 0 });
                if let Some(d) = dst {
                    let abi = match self.f.class_of(*d) {
                        RegClass::I => PReg::G(Gpr::new(3)),
                        RegClass::F => PReg::F(Fpr::new(1)),
                    };
                    Self::emit_move(out, self.alloc.preg(*d), abi);
                }
            }
            Inst::Annot { format, args } => {
                let id = u16::try_from(self.annots.len())
                    .map_err(|_| CompileError::Emit("too many annotations".into()))?;
                let mut locs = Vec::with_capacity(args.len());
                for a in args {
                    locs.push(match a {
                        AnnotArg::Reg(v) => match self.alloc.preg(*v) {
                            PReg::G(g) => ArgLoc::Gpr(g),
                            PReg::F(fp) => ArgLoc::Fpr(fp),
                        },
                        AnnotArg::Mem(Addr::Stack(s), class) => ArgLoc::Stack(
                            self.slot_offset(*s),
                            match class {
                                RegClass::I => ElemTy::I32,
                                RegClass::F => ElemTy::F64,
                            },
                        ),
                        AnnotArg::Mem(Addr::Global { name, offset }, class) => ArgLoc::Global(
                            self.layout.global(name).addr + offset,
                            match class {
                                RegClass::I => ElemTy::I32,
                                RegClass::F => ElemTy::F64,
                            },
                        ),
                        AnnotArg::Mem(other, _) => {
                            return Err(CompileError::Emit(format!(
                                "unsupported annotation location {other}"
                            )));
                        }
                    });
                }
                self.annots.push(AnnotationEntry {
                    id,
                    format: format.clone(),
                    args: locs,
                });
                out.push(M::Annot { id });
            }
        }
        Ok(())
    }

    fn prologue(&mut self, out: &mut Vec<M>) -> Result<(), CompileError> {
        if self.frame > 0 {
            out.push(M::Stwu {
                rs: Gpr::SP,
                d: -(self.frame as i32) as i16,
                ra: Gpr::SP,
            });
            if self.has_call {
                out.push(M::Mflr { rd: Gpr::R0 });
                out.push(M::Stw {
                    rs: Gpr::R0,
                    d: (self.frame - 4) as i16,
                    ra: Gpr::SP,
                });
            }
            let mut off = self.saved_area_base();
            for &g in &self.saved_g {
                out.push(M::Stw {
                    rs: g,
                    d: off as i16,
                    ra: Gpr::SP,
                });
                off += 4;
            }
            off = off.next_multiple_of(8);
            for &fp in &self.saved_f {
                out.push(M::Stfd {
                    fs: fp,
                    d: off as i16,
                    ra: Gpr::SP,
                });
                off += 8;
            }
        }
        // parameter moves: ABI registers → allocated registers
        let classes: Vec<RegClass> = self.f.params.iter().map(|&p| self.f.class_of(p)).collect();
        let sources = self.abi_locs(&classes)?;
        let moves = self
            .f
            .params
            .iter()
            .zip(sources)
            .map(|(&p, s)| (self.alloc.preg(p), s))
            .collect();
        Self::parallel_move(out, moves);
        Ok(())
    }

    fn epilogue(&self, out: &mut Vec<M>) {
        if self.frame == 0 {
            return;
        }
        let mut off = self.saved_area_base();
        for &g in &self.saved_g {
            out.push(M::Lwz {
                rd: g,
                d: off as i16,
                ra: Gpr::SP,
            });
            off += 4;
        }
        off = off.next_multiple_of(8);
        for &fp in &self.saved_f {
            out.push(M::Lfd {
                fd: fp,
                d: off as i16,
                ra: Gpr::SP,
            });
            off += 8;
        }
        if self.has_call {
            out.push(M::Lwz {
                rd: Gpr::R0,
                d: (self.frame - 4) as i16,
                ra: Gpr::SP,
            });
            out.push(M::Mtlr { rs: Gpr::R0 });
        }
        out.push(M::Addi {
            rd: Gpr::SP,
            ra: Gpr::SP,
            imm: self.frame as i16,
        });
    }

    fn saved_area_base(&self) -> u32 {
        self.slot_off
            .values()
            .zip(self.slot_off.keys())
            .map(|(&off, &s)| {
                off + match self.f.slots[s.0 as usize].class {
                    RegClass::I => 4,
                    RegClass::F => 8,
                }
            })
            .max()
            .unwrap_or(8)
    }
}

/// Emits one function.
///
/// # Errors
///
/// [`CompileError::Emit`] on backend limitations (immediate overflow, too
/// many arguments or annotations) — none are reachable from generated
/// flight-control code, but hand-written programs may hit them.
pub fn emit_function(
    f: &Func,
    alloc: &Allocation,
    layout: &Layout,
    pool: &mut ConstPool,
    annots: &mut Vec<AnnotationEntry>,
    cfg: &MachineConfig,
    opts: EmitOptions,
) -> Result<AsmFunc, CompileError> {
    // ---- frame computation ----
    let mut used_slots: BTreeSet<SlotId> = BTreeSet::new();
    let mut has_call = false;
    for b in f.rpo() {
        for inst in &f.block(b).insts {
            match inst {
                Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                    if let Addr::Stack(s) = addr {
                        used_slots.insert(*s);
                    }
                }
                Inst::Call { .. } => has_call = true,
                Inst::Annot { args, .. } => {
                    for a in args {
                        if let AnnotArg::Mem(Addr::Stack(s), _) = a {
                            used_slots.insert(*s);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut slot_off = BTreeMap::new();
    let mut cursor = 8u32;
    for &s in &used_slots {
        match f.slots[s.0 as usize].class {
            RegClass::I => {
                cursor = cursor.next_multiple_of(4);
                slot_off.insert(s, cursor);
                cursor += 4;
            }
            RegClass::F => {
                cursor = cursor.next_multiple_of(8);
                slot_off.insert(s, cursor);
                cursor += 8;
            }
        }
    }
    let mut saved_g: Vec<Gpr> = alloc
        .map
        .values()
        .filter_map(|p| match p {
            PReg::G(g) if !g.is_volatile() && g.index() >= 14 => Some(*g),
            _ => None,
        })
        .collect();
    saved_g.sort();
    saved_g.dedup();
    let mut saved_f: Vec<Fpr> = alloc
        .map
        .values()
        .filter_map(|p| match p {
            PReg::F(r) if !r.is_volatile() => Some(*r),
            _ => None,
        })
        .collect();
    saved_f.sort();
    saved_f.dedup();

    cursor += 4 * saved_g.len() as u32;
    cursor = cursor.next_multiple_of(8);
    cursor += 8 * saved_f.len() as u32;
    let frame = if cursor > 8 || has_call || !saved_g.is_empty() || !saved_f.is_empty() {
        (cursor + 4).next_multiple_of(16)
    } else {
        0
    };

    let mut em = Emitter {
        f,
        alloc,
        layout,
        pool,
        annots,
        cfg,
        opts,
        slot_off,
        saved_g,
        saved_f,
        has_call,
        frame,
    };

    let mut blocks = Vec::new();
    let order = f.rpo();
    for (i, &bid) in order.iter().enumerate() {
        let rtl_block = f.block(bid);
        let mut out = Vec::new();
        let mut calls = Vec::new();
        if i == 0 {
            em.prologue(&mut out)?;
        }
        for inst in &rtl_block.insts {
            em.inst(&mut out, &mut calls, inst)?;
        }
        let term = match &rtl_block.term {
            Term::Goto(t) => AsmTerm::Goto(*t),
            Term::BrI {
                cmp,
                a,
                b,
                then_,
                else_,
            } => {
                out.push(M::Cmpw {
                    cr: Cr::CR0,
                    ra: em.gpr(*a)?,
                    rb: em.gpr(*b)?,
                });
                AsmTerm::Cond {
                    cond: cond_of(*cmp),
                    float: false,
                    then_: *then_,
                    else_: *else_,
                }
            }
            Term::BrIImm {
                cmp,
                a,
                imm,
                then_,
                else_,
            } => {
                match i16::try_from(*imm) {
                    Ok(si) => {
                        out.push(M::Cmpwi {
                            cr: Cr::CR0,
                            ra: em.gpr(*a)?,
                            imm: si,
                        });
                    }
                    Err(_) => {
                        load_imm(&mut out, SCRATCH_B, *imm);
                        out.push(M::Cmpw {
                            cr: Cr::CR0,
                            ra: em.gpr(*a)?,
                            rb: SCRATCH_B,
                        });
                    }
                }
                AsmTerm::Cond {
                    cond: cond_of(*cmp),
                    float: false,
                    then_: *then_,
                    else_: *else_,
                }
            }
            Term::BrF {
                cmp,
                a,
                b,
                then_,
                else_,
            } => {
                out.push(M::Fcmpu {
                    cr: Cr::CR0,
                    fa: em.fpr(*a)?,
                    fb: em.fpr(*b)?,
                });
                AsmTerm::Cond {
                    cond: cond_of(*cmp),
                    float: true,
                    then_: *then_,
                    else_: *else_,
                }
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    match f.class_of(*v) {
                        RegClass::I => {
                            Emitter::emit_move(&mut out, PReg::G(Gpr::new(3)), PReg::G(em.gpr(*v)?))
                        }
                        RegClass::F => {
                            Emitter::emit_move(&mut out, PReg::F(Fpr::new(1)), PReg::F(em.fpr(*v)?))
                        }
                    }
                }
                em.epilogue(&mut out);
                AsmTerm::Ret
            }
        };
        blocks.push(AsmBlock {
            id: bid,
            insts: out,
            term,
            calls,
        });
    }

    Ok(AsmFunc {
        name: f.name.clone(),
        blocks,
        frame: em.frame,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::{allocate, Palette};
    use crate::rtl::Block;

    fn mk_layout() -> Layout {
        let prog = vericomp_minic::ast::Program {
            globals: vec![
                vericomp_minic::ast::Global {
                    name: "g".into(),
                    def: vericomp_minic::ast::GlobalDef::ScalarF64(None),
                },
                vericomp_minic::ast::Global {
                    name: "tab".into(),
                    def: vericomp_minic::ast::GlobalDef::ArrayF64(vec![0.0; 4]),
                },
            ],
            functions: vec![],
        };
        crate::layout::layout_globals(&prog, &MachineConfig::mpc755())
    }

    fn emit_one(f: &mut Func, opts: EmitOptions) -> (AsmFunc, ConstPool, Vec<AnnotationEntry>) {
        let alloc = allocate(f, &Palette::full()).unwrap();
        let layout = mk_layout();
        let mut pool = ConstPool::new();
        let mut annots = Vec::new();
        let cfg = MachineConfig::mpc755();
        let af = emit_function(f, &alloc, &layout, &mut pool, &mut annots, &cfg, opts).unwrap();
        (af, pool, annots)
    }

    fn empty_func(name: &str) -> Func {
        Func {
            name: name.into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        }
    }

    #[test]
    fn listing_1_shape_pattern_code() {
        // The paper's Listing 1: lfd, lfd, fadd, stfd — from slot-based RTL.
        let mut f = empty_func("sym_add");
        let sa = f.new_slot(RegClass::F, "a");
        let sb = f.new_slot(RegClass::F, "b");
        let sc = f.new_slot(RegClass::F, "c");
        let (va, vb, vc) = (
            f.new_vreg(RegClass::F),
            f.new_vreg(RegClass::F),
            f.new_vreg(RegClass::F),
        );
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Load {
                    dst: va,
                    addr: Addr::Stack(sa),
                },
                Inst::Load {
                    dst: vb,
                    addr: Addr::Stack(sb),
                },
                Inst::BinF {
                    op: FBin::Add,
                    dst: vc,
                    a: va,
                    b: vb,
                },
                Inst::Store {
                    src: vc,
                    addr: Addr::Stack(sc),
                },
            ],
            term: Term::Ret(None),
        };
        let (af, ..) = emit_one(&mut f, EmitOptions::default());
        let texts: Vec<String> = af.blocks[0].insts.iter().map(|i| i.to_string()).collect();
        let joined = texts.join("; ");
        assert!(joined.contains("lfd"), "{joined}");
        assert!(joined.contains("fadd"), "{joined}");
        assert!(joined.contains("stfd"), "{joined}");
        // frame exists for the three slots
        assert!(af.frame >= 16 + 8);
    }

    #[test]
    fn global_access_without_sda_takes_two_instructions() {
        let mut f = empty_func("g1");
        let v = f.new_vreg(RegClass::F);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![Inst::Load {
                dst: v,
                addr: Addr::Global {
                    name: "g".into(),
                    offset: 0,
                },
            }],
            term: Term::Ret(None),
        };
        let (af, ..) = emit_one(&mut f, EmitOptions { sda: false });
        let kinds: Vec<String> = af.blocks[0].insts.iter().map(|i| i.to_string()).collect();
        assert!(kinds[0].starts_with("lis"), "{kinds:?}");
        assert!(kinds[1].starts_with("lfd"), "{kinds:?}");
    }

    #[test]
    fn global_access_with_sda_takes_one_instruction() {
        let mut f = empty_func("g2");
        let v = f.new_vreg(RegClass::F);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![Inst::Load {
                dst: v,
                addr: Addr::Global {
                    name: "g".into(),
                    offset: 0,
                },
            }],
            term: Term::Ret(None),
        };
        let (af, ..) = emit_one(&mut f, EmitOptions { sda: true });
        let kinds: Vec<String> = af.blocks[0].insts.iter().map(|i| i.to_string()).collect();
        assert!(kinds[0].starts_with("lfd"), "{kinds:?}");
        assert!(kinds[0].contains("(r13)"), "{kinds:?}");
    }

    #[test]
    fn float_constants_go_through_the_pool() {
        let mut f = empty_func("fc");
        let v = f.new_vreg(RegClass::F);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![Inst::ImmF {
                dst: v,
                value: 3.25,
            }],
            term: Term::Ret(None),
        };
        let (af, pool, _) = emit_one(&mut f, EmitOptions::default());
        assert_eq!(pool.size(), 8);
        let s = af.blocks[0].insts[0].to_string();
        assert!(s.starts_with("lfd") && s.contains("(r2)"), "{s}");
    }

    #[test]
    fn annotation_locations_resolved() {
        let mut f = empty_func("an");
        let s = f.new_slot(RegClass::F, "x");
        let v = f.new_vreg(RegClass::I);
        let b = f.new_block();
        f.entry = b;
        let t = f.new_vreg(RegClass::F);
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmF { dst: t, value: 0.0 },
                Inst::ImmI { dst: v, value: 1 },
                Inst::Annot {
                    format: "0 <= %1 and %2".into(),
                    args: vec![AnnotArg::Reg(v), AnnotArg::Mem(Addr::Stack(s), RegClass::F)],
                },
                // keep the slot used so it gets a frame offset
                Inst::Store {
                    src: t,
                    addr: Addr::Stack(s),
                },
            ],
            term: Term::Ret(None),
        };
        let (af, _, annots) = emit_one(&mut f, EmitOptions::default());
        assert_eq!(annots.len(), 1);
        assert!(matches!(annots[0].args[0], ArgLoc::Gpr(_)));
        assert!(matches!(annots[0].args[1], ArgLoc::Stack(_, ElemTy::F64)));
        let has_marker = af.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, M::Annot { id: 0 }));
        assert!(has_marker);
    }

    #[test]
    fn call_emits_placeholder_and_result_move() {
        let mut f = empty_func("cl");
        let a = f.new_vreg(RegClass::F);
        let r = f.new_vreg(RegClass::F);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmF { dst: a, value: 1.0 },
                Inst::Call {
                    dst: Some(r),
                    callee: "h".into(),
                    args: vec![a],
                },
            ],
            term: Term::Ret(Some(r)),
        };
        f.ret = Some(RegClass::F);
        let (af, ..) = emit_one(&mut f, EmitOptions::default());
        assert_eq!(af.blocks[0].calls.len(), 1);
        assert_eq!(af.blocks[0].calls[0].1, "h");
        // non-leaf: LR is saved
        let s = af.blocks[0]
            .insts
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        assert!(s.contains("mflr r0"), "{s}");
        assert!(s.contains("mtlr r0"), "{s}");
        assert!(af.frame > 0);
    }

    #[test]
    fn parallel_move_breaks_cycles() {
        let mut out = Vec::new();
        // swap r3 <-> r4
        Emitter::parallel_move(
            &mut out,
            vec![
                (PReg::G(Gpr::new(3)), PReg::G(Gpr::new(4))),
                (PReg::G(Gpr::new(4)), PReg::G(Gpr::new(3))),
            ],
        );
        assert_eq!(out.len(), 3, "{out:?}");
        // simulate the moves on a tiny register map
        let mut regs = std::collections::BTreeMap::from([(3u8, 30), (4u8, 40)]);
        for m in &out {
            match m {
                M::Or { rd, ra, rb } if ra == rb => {
                    let v = regs[&ra.index()];
                    regs.insert(rd.index(), v);
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(regs[&3], 40);
        assert_eq!(regs[&4], 30);
    }

    #[test]
    fn branch_terminators_emit_compare() {
        let mut f = empty_func("br");
        let v = f.new_vreg(RegClass::I);
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.entry = b0;
        f.blocks[0] = Block {
            insts: vec![Inst::ImmI { dst: v, value: 5 }],
            term: Term::BrIImm {
                cmp: Cmp::Lt,
                a: v,
                imm: 10,
                then_: b1,
                else_: b2,
            },
        };
        f.blocks[1] = Block {
            insts: vec![],
            term: Term::Ret(None),
        };
        f.blocks[2] = Block {
            insts: vec![],
            term: Term::Ret(None),
        };
        let (af, ..) = emit_one(&mut f, EmitOptions::default());
        let last = af.blocks[0].insts.last().unwrap().to_string();
        assert!(last.starts_with("cmpwi"), "{last}");
        assert!(matches!(
            af.blocks[0].term,
            AsmTerm::Cond {
                cond: Cond::Lt,
                float: false,
                ..
            }
        ));
    }
}
