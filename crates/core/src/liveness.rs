//! Backward liveness dataflow analysis over RTL.
//!
//! Used by dead-code elimination, the register allocator, and the
//! register-allocation validator (each recomputes independently — the
//! validator must not trust the allocator's own analysis).

use std::collections::BTreeSet;

use crate::rtl::{Func, Vreg};

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live virtual registers at block entry, indexed by block id.
    pub live_in: Vec<BTreeSet<Vreg>>,
    /// Live virtual registers at block exit, indexed by block id.
    pub live_out: Vec<BTreeSet<Vreg>>,
}

/// Computes liveness by round-robin backward iteration to a fixpoint.
pub fn analyze(f: &Func) -> Liveness {
    let n = f.blocks.len();
    let mut live_in = vec![BTreeSet::new(); n];
    let mut live_out = vec![BTreeSet::new(); n];
    let order: Vec<_> = f.rpo().into_iter().rev().collect();

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.0 as usize;
            let mut out = BTreeSet::new();
            for s in f.block(b).term.successors() {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut live = out.clone();
            let block = f.block(b);
            for u in block.term.uses() {
                live.insert(u);
            }
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    live.remove(&d);
                }
                for u in inst.uses() {
                    live.insert(u);
                }
            }
            if out != live_out[bi] {
                live_out[bi] = out;
                changed = true;
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, IBin, Inst, RegClass, Term};
    use vericomp_minic::ast::Cmp;

    fn empty_func() -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        }
    }

    #[test]
    fn straight_line() {
        let mut f = empty_func();
        let a = f.new_vreg(RegClass::I);
        let b = f.new_vreg(RegClass::I);
        let c = f.new_vreg(RegClass::I);
        let b0 = f.new_block();
        f.entry = b0;
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmI { dst: a, value: 1 },
                Inst::ImmI { dst: b, value: 2 },
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
            ],
            term: Term::Ret(Some(c)),
        };
        let l = analyze(&f);
        assert!(l.live_in[0].is_empty());
        assert!(l.live_out[0].is_empty());
    }

    #[test]
    fn loop_keeps_induction_variable_live() {
        // b0: i = 0 -> b1 ; b1: if i < 10 -> b2 else b3 ; b2: i = i + 1 -> b1 ; b3: ret
        let mut f = empty_func();
        let i = f.new_vreg(RegClass::I);
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.entry = b0;
        f.blocks[b0.0 as usize] = Block {
            insts: vec![Inst::ImmI { dst: i, value: 0 }],
            term: Term::Goto(b1),
        };
        f.blocks[b1.0 as usize] = Block {
            insts: vec![],
            term: Term::BrIImm {
                cmp: Cmp::Lt,
                a: i,
                imm: 10,
                then_: b2,
                else_: b3,
            },
        };
        f.blocks[b2.0 as usize] = Block {
            insts: vec![Inst::BinIImm {
                op: IBin::Add,
                dst: i,
                a: i,
                imm: 1,
            }],
            term: Term::Goto(b1),
        };
        f.blocks[b3.0 as usize] = Block {
            insts: vec![],
            term: Term::Ret(None),
        };
        let l = analyze(&f);
        assert!(l.live_in[b1.0 as usize].contains(&i));
        assert!(l.live_out[b2.0 as usize].contains(&i));
        assert!(l.live_in[b2.0 as usize].contains(&i));
        assert!(!l.live_in[b3.0 as usize].contains(&i));
        assert!(!l.live_in[b0.0 as usize].contains(&i));
    }

    #[test]
    fn branch_operands_are_live() {
        let mut f = empty_func();
        let x = f.new_vreg(RegClass::I);
        let y = f.new_vreg(RegClass::I);
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.entry = b0;
        f.blocks[b0.0 as usize] = Block {
            insts: vec![],
            term: Term::BrI {
                cmp: Cmp::Eq,
                a: x,
                b: y,
                then_: b1,
                else_: b2,
            },
        };
        f.blocks[b1.0 as usize] = Block {
            insts: vec![],
            term: Term::Ret(None),
        };
        f.blocks[b2.0 as usize] = Block {
            insts: vec![],
            term: Term::Ret(None),
        };
        let l = analyze(&f);
        assert!(l.live_in[0].contains(&x));
        assert!(l.live_in[0].contains(&y));
    }
}
