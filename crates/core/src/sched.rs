//! Post-emission list scheduling (fully-optimizing configuration only).
//!
//! Reorders the instructions of one machine block to shorten the critical
//! path through the dual-issue pipeline: priorities are longest-remaining-
//! latency paths in the block's dependence DAG, ties break towards original
//! program order (so the result is deterministic and the validator's greedy
//! matching recognizes it). Calls and annotation markers are scheduling
//! barriers.
//!
//! The transformation is untrusted; the driver re-checks every block with
//! [`crate::validate::check_schedule`] — the paper's "verified translation
//! validator for trace scheduling" reference (Tristan & Leroy), restricted
//! to basic blocks.

use vericomp_arch::inst::Inst as M;
use vericomp_arch::MachineConfig;

use crate::validate::depends;

/// Produces a dependence-preserving reordering of `insts` that greedily
/// minimizes latency stalls.
pub fn schedule_block(insts: &[M], cfg: &MachineConfig) -> Vec<M> {
    let n = insts.len();
    if n <= 2 {
        return insts.to_vec();
    }
    // successor lists and predecessor counts
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds_left = vec![0usize; n];
    for i in 0..n {
        for j in i + 1..n {
            if depends(&insts[i], &insts[j]) {
                succs[i].push(j);
                preds_left[j] += 1;
            }
        }
    }
    // critical-path priorities
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&j| prio[j]).max().unwrap_or(0);
        prio[i] = u64::from(cfg.result_latency(&insts[i])) + tail;
    }
    // greedy list scheduling: prefer the instruction whose operands are
    // ready soonest (fills latency shadows), break ties towards the longer
    // critical path, then towards program order
    let mut est = vec![0u64; n]; // earliest start by operand readiness
    let mut out = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();
    let mut done = vec![false; n];
    while out.len() < n {
        let (pos, &i) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| (est[i], std::cmp::Reverse(prio[i]), i))
            .expect("dependence graph of a DAG always has a ready instruction");
        ready.remove(pos);
        done[i] = true;
        out.push(insts[i]);
        let finish = est[i] + u64::from(cfg.result_latency(&insts[i]));
        for &j in &succs[i] {
            est[j] = est[j].max(finish);
            preds_left[j] -= 1;
            if preds_left[j] == 0 && !done[j] {
                ready.push(j);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_schedule;
    use vericomp_arch::reg::{Fpr, Gpr};

    fn cfg() -> MachineConfig {
        MachineConfig::mpc755()
    }

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn fp(i: u8) -> Fpr {
        Fpr::new(i)
    }

    #[test]
    fn hoists_independent_work_into_latency_shadow() {
        // fdiv (long) feeding fmr, with independent adds after: the adds
        // should move between the divide and its use.
        let insts = vec![
            M::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            M::Fmr {
                fd: fp(4),
                fa: fp(1),
            },
            M::Add {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            M::Add {
                rd: g(6),
                ra: g(7),
                rb: g(8),
            },
        ];
        let s = schedule_block(&insts, &cfg());
        check_schedule(&insts, &s).unwrap();
        let pos = |m: &M| s.iter().position(|x| x == m).unwrap();
        assert!(pos(&insts[2]) < pos(&insts[1]), "{s:?}");
    }

    #[test]
    fn dependences_always_respected() {
        let insts = vec![
            M::Lwz {
                rd: g(3),
                d: 0,
                ra: g(13),
            },
            M::Addi {
                rd: g(4),
                ra: g(3),
                imm: 1,
            },
            M::Stw {
                rs: g(4),
                d: 4,
                ra: g(13),
            },
            M::Lwz {
                rd: g(5),
                d: 8,
                ra: g(13),
            },
            M::Addi {
                rd: g(6),
                ra: g(5),
                imm: 2,
            },
        ];
        let s = schedule_block(&insts, &cfg());
        check_schedule(&insts, &s).unwrap();
    }

    #[test]
    fn barriers_stay_in_place() {
        let insts = vec![
            M::Add {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            M::Bl { target: 0 },
            M::Add {
                rd: g(6),
                ra: g(7),
                rb: g(8),
            },
            M::Annot { id: 0 },
            M::Add {
                rd: g(9),
                ra: g(10),
                rb: g(4),
            },
        ];
        let s = schedule_block(&insts, &cfg());
        assert_eq!(s[1], M::Bl { target: 0 });
        assert_eq!(s[3], M::Annot { id: 0 });
        check_schedule(&insts, &s).unwrap();
    }

    #[test]
    fn short_blocks_untouched() {
        let insts = vec![M::Nop, M::Blr];
        assert_eq!(schedule_block(&insts, &cfg()), insts);
    }

    #[test]
    fn deterministic() {
        let insts = vec![
            M::Add {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            M::Add {
                rd: g(6),
                ra: g(7),
                rb: g(8),
            },
            M::Add {
                rd: g(9),
                ra: g(3),
                rb: g(6),
            },
        ];
        assert_eq!(
            schedule_block(&insts, &cfg()),
            schedule_block(&insts, &cfg())
        );
    }
}
