//! RTL — the register-transfer intermediate representation.
//!
//! A function is a control-flow graph of basic blocks over an unbounded
//! supply of typed virtual registers, in the style of CompCert's RTL. Memory
//! is explicit: the `-O0` lowering keeps every source variable in a stack
//! slot with a load before and a store after every use, and the optimizing
//! configurations then *promote* those slots to virtual registers
//! ([`crate::opt::mem2reg`]).

use std::fmt;

use vericomp_minic::ast::{Cmp, Ty};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vreg(pub u32);

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Integer / boolean (GPR).
    I,
    /// Double (FPR).
    F,
}

impl RegClass {
    /// The class storing values of a MiniC type.
    pub fn of_ty(ty: Ty) -> RegClass {
        match ty {
            Ty::F64 => RegClass::F,
            Ty::I32 | Ty::Bool => RegClass::I,
        }
    }
}

/// A stack slot identifier (frame offsets are assigned at emission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A basic-block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Integer unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IUnop {
    /// Two's-complement negation.
    Neg,
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Machine `divw` division (`x/0 = 0`, `MIN/-1 = MIN`).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (amount masked like `slw`).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

/// Floating unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FUn {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
}

/// Floating binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FBin {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// An addressing mode for loads and stores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Addr {
    /// A function-local stack slot.
    Stack(SlotId),
    /// A global scalar (or a fixed element of a global, via `offset` bytes).
    Global {
        /// Global name.
        name: String,
        /// Byte offset from the global's base.
        offset: u32,
    },
    /// Element `index` of a global array; `scale` is the element size (4/8).
    GlobalIndex {
        /// Global name.
        name: String,
        /// Index register.
        index: Vreg,
        /// Element size in bytes.
        scale: u8,
    },
    /// Memory-mapped I/O port (uncached, slow — hardware acquisition).
    Io(u32),
}

impl Addr {
    /// Whether two addresses may refer to overlapping memory.
    ///
    /// Stack slots are exact; globals alias by name; I/O by port. Used by CSE
    /// to invalidate remembered loads on stores.
    pub fn may_alias(&self, other: &Addr) -> bool {
        match (self, other) {
            (Addr::Stack(a), Addr::Stack(b)) => a == b,
            (Addr::Io(a), Addr::Io(b)) => a == b,
            (
                Addr::Global {
                    name: a,
                    offset: oa,
                },
                Addr::Global {
                    name: b,
                    offset: ob,
                },
            ) => a == b && oa == ob,
            (Addr::Global { name: a, .. }, Addr::GlobalIndex { name: b, .. })
            | (Addr::GlobalIndex { name: a, .. }, Addr::Global { name: b, .. })
            | (Addr::GlobalIndex { name: a, .. }, Addr::GlobalIndex { name: b, .. }) => a == b,
            _ => false,
        }
    }

    /// The index register, if this is an indexed access.
    pub fn index_vreg(&self) -> Option<Vreg> {
        match self {
            Addr::GlobalIndex { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Stack(s) => write!(f, "stack[{s}]"),
            Addr::Global { name, offset } if *offset == 0 => write!(f, "&{name}"),
            Addr::Global { name, offset } => write!(f, "&{name}+{offset}"),
            Addr::GlobalIndex { name, index, scale } => {
                write!(f, "&{name}[{index}*{scale}]")
            }
            Addr::Io(p) => write!(f, "io[{p}]"),
        }
    }
}

/// An annotation argument: a value in a register, or a memory location
/// observed in place (no load emitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotArg {
    /// The value of a virtual register.
    Reg(Vreg),
    /// A memory location and the class of the value stored there.
    Mem(Addr, RegClass),
}

/// An RTL instruction (non-terminator).
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = value`
    ImmI {
        /// Destination.
        dst: Vreg,
        /// Constant.
        value: i32,
    },
    /// `dst = value` (materialized through the constant pool).
    ImmF {
        /// Destination.
        dst: Vreg,
        /// Constant.
        value: f64,
    },
    /// `dst = src` (integer move).
    MovI {
        /// Destination.
        dst: Vreg,
        /// Source.
        src: Vreg,
    },
    /// `dst = src` (floating move).
    MovF {
        /// Destination.
        dst: Vreg,
        /// Source.
        src: Vreg,
    },
    /// `dst = op a`
    UnI {
        /// Operation.
        op: IUnop,
        /// Destination.
        dst: Vreg,
        /// Operand.
        a: Vreg,
    },
    /// `dst = a op b`
    BinI {
        /// Operation.
        op: IBin,
        /// Destination.
        dst: Vreg,
        /// Left operand.
        a: Vreg,
        /// Right operand.
        b: Vreg,
    },
    /// `dst = a op imm`
    BinIImm {
        /// Operation.
        op: IBin,
        /// Destination.
        dst: Vreg,
        /// Left operand.
        a: Vreg,
        /// Immediate right operand.
        imm: i32,
    },
    /// `dst = op a` (floating unary).
    UnF {
        /// Operation.
        op: FUn,
        /// Destination.
        dst: Vreg,
        /// Operand.
        a: Vreg,
    },
    /// `dst = a op b` (floating binary).
    BinF {
        /// Operation.
        op: FBin,
        /// Destination.
        dst: Vreg,
        /// Left operand.
        a: Vreg,
        /// Right operand.
        b: Vreg,
    },
    /// `dst = a * b + c` (fused by the full optimizer; the machine's `fmadd`
    /// rounds the product, so fusion is exactly semantics-preserving).
    MaddF {
        /// Destination.
        dst: Vreg,
        /// Multiplicand.
        a: Vreg,
        /// Multiplier.
        b: Vreg,
        /// Addend.
        c: Vreg,
    },
    /// `dst = (double) src`
    Itof {
        /// Destination (class F).
        dst: Vreg,
        /// Source (class I).
        src: Vreg,
    },
    /// `dst = sat_trunc(src)`
    Ftoi {
        /// Destination (class I).
        dst: Vreg,
        /// Source (class F).
        src: Vreg,
    },
    /// `dst = mem[addr]`
    Load {
        /// Destination.
        dst: Vreg,
        /// Address.
        addr: Addr,
    },
    /// `mem[addr] = src`
    Store {
        /// Value to store.
        src: Vreg,
        /// Address.
        addr: Addr,
    },
    /// `dst = callee(args…)`
    Call {
        /// Result register (`None` for void calls).
        dst: Option<Vreg>,
        /// Callee name.
        callee: String,
        /// Argument registers, in order.
        args: Vec<Vreg>,
    },
    /// A pro-forma annotation effect (CompCert §3.4): observes `args` at this
    /// program point. Never removed, never reordered across redefinitions of
    /// its arguments.
    Annot {
        /// Format string.
        format: String,
        /// Observed arguments.
        args: Vec<AnnotArg>,
    },
}

impl Inst {
    /// The destination register, if any.
    pub fn def(&self) -> Option<Vreg> {
        match self {
            Inst::ImmI { dst, .. }
            | Inst::ImmF { dst, .. }
            | Inst::MovI { dst, .. }
            | Inst::MovF { dst, .. }
            | Inst::UnI { dst, .. }
            | Inst::BinI { dst, .. }
            | Inst::BinIImm { dst, .. }
            | Inst::UnF { dst, .. }
            | Inst::BinF { dst, .. }
            | Inst::MaddF { dst, .. }
            | Inst::Itof { dst, .. }
            | Inst::Ftoi { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Annot { .. } => None,
        }
    }

    /// The registers this instruction reads, in order.
    pub fn uses(&self) -> Vec<Vreg> {
        match self {
            Inst::ImmI { .. } | Inst::ImmF { .. } => vec![],
            Inst::MovI { src, .. } | Inst::MovF { src, .. } => vec![*src],
            Inst::UnI { a, .. } | Inst::UnF { a, .. } | Inst::BinIImm { a, .. } => vec![*a],
            Inst::BinI { a, b, .. } | Inst::BinF { a, b, .. } => vec![*a, *b],
            Inst::MaddF { a, b, c, .. } => vec![*a, *b, *c],
            Inst::Itof { src, .. } | Inst::Ftoi { src, .. } => vec![*src],
            Inst::Load { addr, .. } => addr.index_vreg().into_iter().collect(),
            Inst::Store { src, addr } => {
                let mut v = vec![*src];
                v.extend(addr.index_vreg());
                v
            }
            Inst::Call { args, .. } => args.clone(),
            Inst::Annot { args, .. } => args
                .iter()
                .flat_map(|a| match a {
                    AnnotArg::Reg(v) => vec![*v],
                    AnnotArg::Mem(addr, _) => addr.index_vreg().into_iter().collect(),
                })
                .collect(),
        }
    }

    /// Rewrites every used register through `f` (addressing-mode index
    /// registers and annotation arguments included).
    pub fn map_uses(&mut self, f: &mut impl FnMut(Vreg) -> Vreg) {
        fn map_addr(addr: &mut Addr, f: &mut impl FnMut(Vreg) -> Vreg) {
            if let Addr::GlobalIndex { index, .. } = addr {
                *index = f(*index);
            }
        }
        match self {
            Inst::ImmI { .. } | Inst::ImmF { .. } => {}
            Inst::MovI { src, .. } | Inst::MovF { src, .. } => *src = f(*src),
            Inst::UnI { a, .. } | Inst::UnF { a, .. } | Inst::BinIImm { a, .. } => *a = f(*a),
            Inst::BinI { a, b, .. } | Inst::BinF { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Inst::MaddF { a, b, c, .. } => {
                *a = f(*a);
                *b = f(*b);
                *c = f(*c);
            }
            Inst::Itof { src, .. } | Inst::Ftoi { src, .. } => *src = f(*src),
            Inst::Load { addr, .. } => map_addr(addr, f),
            Inst::Store { src, addr } => {
                *src = f(*src);
                map_addr(addr, f);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Annot { args, .. } => {
                for a in args {
                    match a {
                        AnnotArg::Reg(v) => *v = f(*v),
                        AnnotArg::Mem(addr, _) => map_addr(addr, f),
                    }
                }
            }
        }
    }

    /// Rewrites the destination register through `f`, if there is one.
    pub fn map_def(&mut self, f: &mut impl FnMut(Vreg) -> Vreg) {
        match self {
            Inst::ImmI { dst, .. }
            | Inst::ImmF { dst, .. }
            | Inst::MovI { dst, .. }
            | Inst::MovF { dst, .. }
            | Inst::UnI { dst, .. }
            | Inst::BinI { dst, .. }
            | Inst::BinIImm { dst, .. }
            | Inst::UnF { dst, .. }
            | Inst::BinF { dst, .. }
            | Inst::MaddF { dst, .. }
            | Inst::Itof { dst, .. }
            | Inst::Ftoi { dst, .. }
            | Inst::Load { dst, .. } => *dst = f(*dst),
            Inst::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            Inst::Store { .. } | Inst::Annot { .. } => {}
        }
    }

    /// Whether the instruction has no side effect beyond its destination
    /// (removable when the destination is dead). I/O loads are effectful
    /// (volatile); cacheable loads are pure in this memory-safe language.
    pub fn is_pure(&self) -> bool {
        match self {
            Inst::Store { .. } | Inst::Call { .. } | Inst::Annot { .. } => false,
            Inst::Load { addr, .. } => !matches!(addr, Addr::Io(_)),
            _ => true,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::ImmI { dst, value } => write!(f, "{dst} = {value}"),
            Inst::ImmF { dst, value } => write!(f, "{dst} = {value:?}"),
            Inst::MovI { dst, src } | Inst::MovF { dst, src } => write!(f, "{dst} = {src}"),
            Inst::UnI { op, dst, a } => write!(f, "{dst} = {op:?} {a}"),
            Inst::BinI { op, dst, a, b } => write!(f, "{dst} = {op:?} {a}, {b}"),
            Inst::BinIImm { op, dst, a, imm } => write!(f, "{dst} = {op:?} {a}, #{imm}"),
            Inst::UnF { op, dst, a } => write!(f, "{dst} = f{op:?} {a}"),
            Inst::BinF { op, dst, a, b } => write!(f, "{dst} = f{op:?} {a}, {b}"),
            Inst::MaddF { dst, a, b, c } => write!(f, "{dst} = fmadd {a}, {b}, {c}"),
            Inst::Itof { dst, src } => write!(f, "{dst} = itof {src}"),
            Inst::Ftoi { dst, src } => write!(f, "{dst} = ftoi {src}"),
            Inst::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            Inst::Store { src, addr } => write!(f, "store {src} -> {addr}"),
            Inst::Call {
                dst: Some(d),
                callee,
                args,
            } => {
                write!(f, "{d} = call {callee}({args:?})")
            }
            Inst::Call {
                dst: None,
                callee,
                args,
            } => write!(f, "call {callee}({args:?})"),
            Inst::Annot { format, args } => write!(f, "annot {format:?} {args:?}"),
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Goto(BlockId),
    /// Integer compare-and-branch.
    BrI {
        /// Predicate.
        cmp: Cmp,
        /// Left operand.
        a: Vreg,
        /// Right operand.
        b: Vreg,
        /// Target when the predicate holds.
        then_: BlockId,
        /// Target otherwise.
        else_: BlockId,
    },
    /// Integer compare-against-immediate and branch.
    BrIImm {
        /// Predicate.
        cmp: Cmp,
        /// Left operand.
        a: Vreg,
        /// Immediate right operand.
        imm: i32,
        /// Target when the predicate holds.
        then_: BlockId,
        /// Target otherwise.
        else_: BlockId,
    },
    /// Floating compare-and-branch (IEEE semantics: unordered satisfies only
    /// `Ne`).
    BrF {
        /// Predicate.
        cmp: Cmp,
        /// Left operand.
        a: Vreg,
        /// Right operand.
        b: Vreg,
        /// Target when the predicate holds.
        then_: BlockId,
        /// Target otherwise.
        else_: BlockId,
    },
    /// Function return.
    Ret(Option<Vreg>),
}

impl Term {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Goto(b) => vec![*b],
            Term::BrI { then_, else_, .. }
            | Term::BrIImm { then_, else_, .. }
            | Term::BrF { then_, else_, .. } => vec![*then_, *else_],
            Term::Ret(_) => vec![],
        }
    }

    /// The registers the terminator reads.
    pub fn uses(&self) -> Vec<Vreg> {
        match self {
            Term::Goto(_) => vec![],
            Term::BrI { a, b, .. } | Term::BrF { a, b, .. } => vec![*a, *b],
            Term::BrIImm { a, .. } => vec![*a],
            Term::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// Rewrites every used register through `f`.
    pub fn map_uses(&mut self, f: &mut impl FnMut(Vreg) -> Vreg) {
        match self {
            Term::Goto(_) | Term::Ret(None) => {}
            Term::BrI { a, b, .. } | Term::BrF { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Term::BrIImm { a, .. } => *a = f(*a),
            Term::Ret(Some(v)) => *v = f(*v),
        }
    }

    /// Rewrites every successor through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Goto(b) => *b = f(*b),
            Term::BrI { then_, else_, .. }
            | Term::BrIImm { then_, else_, .. }
            | Term::BrF { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            Term::Ret(_) => {}
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// Class of a stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Value class stored in the slot.
    pub class: RegClass,
    /// Human-readable origin (variable name or `"spill"`).
    pub origin: &'static str,
}

/// An RTL function.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter value registers (filled from the ABI registers at entry).
    pub params: Vec<Vreg>,
    /// Class of the return value, if any.
    pub ret: Option<RegClass>,
    /// Class of each virtual register, indexed by `Vreg.0`.
    pub vregs: Vec<RegClass>,
    /// Stack slots.
    pub slots: Vec<Slot>,
    /// Blocks, indexed by `BlockId.0`.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Func {
    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> Vreg {
        self.vregs.push(class);
        Vreg(self.vregs.len() as u32 - 1)
    }

    /// Allocates a fresh stack slot.
    pub fn new_slot(&mut self, class: RegClass, origin: &'static str) -> SlotId {
        self.slots.push(Slot { class, origin });
        SlotId(self.slots.len() as u32 - 1)
    }

    /// Allocates a fresh empty block (terminated by `Ret(None)` until set).
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Ret(None),
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to the block with the given id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// The class of a virtual register.
    pub fn class_of(&self, v: Vreg) -> RegClass {
        self.vregs[v.0 as usize]
    }

    /// Blocks in reverse post-order from the entry (unreachable blocks
    /// excluded).
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack.
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = self.block(b).term.successors();
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Predecessor lists for every block (unreachable blocks have none).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.rpo() {
            for s in self.block(b).term.successors() {
                preds[s.0 as usize].push(b);
            }
        }
        preds
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}({:?}) {{", self.name, self.params)?;
        for id in self.rpo() {
            writeln!(f, "{id}:")?;
            let b = self.block(id);
            for i in &b.insts {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "    {:?}", b.term)?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Func {
        // b0 -> b1 | b2 -> b3
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let v = f.new_vreg(RegClass::I);
        let b0 = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.entry = b0;
        f.block_mut(b0).term = Term::BrIImm {
            cmp: Cmp::Eq,
            a: v,
            imm: 0,
            then_: b1,
            else_: b2,
        };
        f.block_mut(b1).term = Term::Goto(b3);
        f.block_mut(b2).term = Term::Goto(b3);
        f.block_mut(b3).term = Term::Ret(None);
        f
    }

    #[test]
    fn rpo_visits_all_blocks_entry_first() {
        let f = diamond();
        let rpo = f.rpo();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn rpo_skips_unreachable() {
        let mut f = diamond();
        let dead = f.new_block();
        assert!(!f.rpo().contains(&dead));
    }

    #[test]
    fn predecessors_of_join() {
        let f = diamond();
        let preds = f.predecessors();
        let mut p = preds[3].clone();
        p.sort();
        assert_eq!(p, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn defs_uses() {
        let a = Vreg(0);
        let b = Vreg(1);
        let d = Vreg(2);
        let i = Inst::BinI {
            op: IBin::Add,
            dst: d,
            a,
            b,
        };
        assert_eq!(i.def(), Some(d));
        assert_eq!(i.uses(), vec![a, b]);
        let st = Inst::Store {
            src: a,
            addr: Addr::GlobalIndex {
                name: "t".into(),
                index: b,
                scale: 8,
            },
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![a, b]);
        assert!(!st.is_pure());
        let io = Inst::Load {
            dst: d,
            addr: Addr::Io(3),
        };
        assert!(!io.is_pure(), "I/O loads are volatile");
    }

    #[test]
    fn aliasing_rules() {
        let s0 = Addr::Stack(SlotId(0));
        let s1 = Addr::Stack(SlotId(1));
        assert!(s0.may_alias(&s0));
        assert!(!s0.may_alias(&s1));
        let g = Addr::Global {
            name: "x".into(),
            offset: 0,
        };
        let gi = Addr::GlobalIndex {
            name: "x".into(),
            index: Vreg(0),
            scale: 4,
        };
        assert!(g.may_alias(&gi));
        assert!(!g.may_alias(&s0));
        assert!(Addr::Io(1).may_alias(&Addr::Io(1)));
        assert!(!Addr::Io(1).may_alias(&Addr::Io(2)));
    }
}
