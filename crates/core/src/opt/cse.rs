//! Local common-subexpression elimination by value numbering.
//!
//! Within each basic block, pure computations and cacheable loads are
//! remembered; a repeated computation is replaced by a move from the first
//! result. Remembered loads are invalidated by potentially-aliasing stores
//! and by calls (which may write any global); stack slots survive calls
//! because MiniC has no pointers into frames. I/O loads are volatile and are
//! never remembered — an acquisition must be performed every time the source
//! says so.

use std::collections::BTreeMap;

use crate::rtl::{Addr, FBin, FUn, Func, IBin, IUnop, Inst, RegClass, Vreg};

/// A value-numbering key for a pure computation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    UnI(IUnop, Vreg),
    BinI(IBin, Vreg, Vreg),
    BinIImm(IBin, Vreg, i32),
    UnF(FUn, Vreg),
    BinF(FBin, Vreg, Vreg),
    MaddF(Vreg, Vreg, Vreg),
    Itof(Vreg),
    Ftoi(Vreg),
    ImmF(u64),
    Load(LoadKey),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum LoadKey {
    Stack(u32),
    Global(String, u32),
    GlobalIndex(String, Vreg, u8),
}

fn load_key(addr: &Addr) -> Option<LoadKey> {
    match addr {
        Addr::Stack(s) => Some(LoadKey::Stack(s.0)),
        Addr::Global { name, offset } => Some(LoadKey::Global(name.clone(), *offset)),
        Addr::GlobalIndex { name, index, scale } => {
            Some(LoadKey::GlobalIndex(name.clone(), *index, *scale))
        }
        Addr::Io(_) => None, // volatile
    }
}

fn key_of(inst: &Inst) -> Option<Key> {
    match inst {
        Inst::UnI { op, a, .. } => Some(Key::UnI(*op, *a)),
        Inst::BinI { op, dst: _, a, b } => {
            // normalize commutative operands
            let (x, y) = if matches!(op, IBin::Add | IBin::Mul | IBin::And | IBin::Or | IBin::Xor)
                && b < a
            {
                (*b, *a)
            } else {
                (*a, *b)
            };
            Some(Key::BinI(*op, x, y))
        }
        Inst::BinIImm { op, a, imm, .. } => Some(Key::BinIImm(*op, *a, *imm)),
        Inst::UnF { op, a, .. } => Some(Key::UnF(*op, *a)),
        Inst::BinF { op, a, b, .. } => {
            let (x, y) = if matches!(op, FBin::Add | FBin::Mul) && b < a {
                (*b, *a)
            } else {
                (*a, *b)
            };
            Some(Key::BinF(*op, x, y))
        }
        Inst::MaddF { a, b, c, .. } => Some(Key::MaddF(*a, *b, *c)),
        Inst::Itof { src, .. } => Some(Key::Itof(*src)),
        Inst::Ftoi { src, .. } => Some(Key::Ftoi(*src)),
        Inst::ImmF { value, .. } => Some(Key::ImmF(value.to_bits())),
        Inst::Load { addr, .. } => load_key(addr).map(Key::Load),
        _ => None,
    }
}

fn key_mentions(key: &Key, v: Vreg) -> bool {
    match key {
        Key::UnI(_, a) | Key::BinIImm(_, a, _) | Key::UnF(_, a) | Key::Itof(a) | Key::Ftoi(a) => {
            *a == v
        }
        Key::BinI(_, a, b) | Key::BinF(_, a, b) => *a == v || *b == v,
        Key::MaddF(a, b, c) => *a == v || *b == v || *c == v,
        Key::ImmF(_) => false,
        Key::Load(LoadKey::GlobalIndex(_, i, _)) => *i == v,
        Key::Load(_) => false,
    }
}

/// Runs local CSE over every block.
pub fn run(f: &mut Func) {
    let classes = f.vregs.clone();
    for block in &mut f.blocks {
        let mut table: BTreeMap<Key, Vreg> = BTreeMap::new();
        for inst in &mut block.insts {
            // Invalidate on memory effects.
            match &*inst {
                Inst::Store { addr, .. } => {
                    table.retain(|k, _| match k {
                        Key::Load(lk) => !store_kills(addr, lk),
                        _ => true,
                    });
                }
                Inst::Call { .. } => {
                    // calls may write any global (but not our stack slots)
                    table.retain(|k, _| {
                        !matches!(
                            k,
                            Key::Load(LoadKey::Global(..)) | Key::Load(LoadKey::GlobalIndex(..))
                        )
                    });
                }
                _ => {}
            }

            // Lookup against the pre-definition state.
            if let Some(key) = key_of(inst) {
                if let Some(&prev) = table.get(&key) {
                    let dst = inst.def().expect("keyed instructions define a register");
                    *inst = match classes[dst.0 as usize] {
                        RegClass::I => Inst::MovI { dst, src: prev },
                        RegClass::F => Inst::MovF { dst, src: prev },
                    };
                }
            }

            // Redefinition invalidates entries mentioning or produced by dst.
            if let Some(d) = inst.def() {
                table.retain(|k, v| *v != d && !key_mentions(k, d));
            }

            // Remember the (possibly unchanged) computation, unless its key
            // refers to the value it just overwrote (e.g. `a = a + b`).
            if let Some(key) = key_of(inst) {
                if let Some(d) = inst.def() {
                    if !key_mentions(&key, d) {
                        table.insert(key, d);
                    }
                }
            }
        }
    }
}

fn store_kills(store_addr: &Addr, loaded: &LoadKey) -> bool {
    match (store_addr, loaded) {
        (Addr::Stack(s), LoadKey::Stack(l)) => s.0 == *l,
        (Addr::Global { name, offset }, LoadKey::Global(n, o)) => name == n && offset == o,
        (Addr::Global { name, .. }, LoadKey::GlobalIndex(n, ..))
        | (Addr::GlobalIndex { name, .. }, LoadKey::Global(n, ..))
        | (Addr::GlobalIndex { name, .. }, LoadKey::GlobalIndex(n, ..)) => name == n,
        (Addr::Io(_), _) => false,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, SlotId, Term};

    fn func(insts: Vec<Inst>, vregs: Vec<RegClass>) -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs,
            slots: vec![],
            blocks: vec![Block {
                insts,
                term: Term::Ret(None),
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn repeated_computation_becomes_move() {
        let (a, b, c, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let mut f = func(
            vec![
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
                Inst::BinI {
                    op: IBin::Add,
                    dst: d,
                    a,
                    b,
                },
            ],
            vec![RegClass::I; 4],
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::MovI { dst: d, src: c });
    }

    #[test]
    fn commutative_operands_normalized() {
        let (a, b, c, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let mut f = func(
            vec![
                Inst::BinF {
                    op: FBin::Mul,
                    dst: c,
                    a: b,
                    b: a,
                },
                Inst::BinF {
                    op: FBin::Mul,
                    dst: d,
                    a,
                    b,
                },
            ],
            vec![RegClass::F; 4],
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::MovF { dst: d, src: c });
    }

    #[test]
    fn load_reused_until_aliasing_store() {
        let (v, w, x, y) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let g = Addr::Global {
            name: "g".into(),
            offset: 0,
        };
        let mut f = func(
            vec![
                Inst::Load {
                    dst: v,
                    addr: g.clone(),
                },
                Inst::Load {
                    dst: w,
                    addr: g.clone(),
                }, // CSE'd
                Inst::Store {
                    src: x,
                    addr: g.clone(),
                },
                Inst::Load {
                    dst: y,
                    addr: g.clone(),
                }, // must reload
            ],
            vec![RegClass::I; 4],
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::MovI { dst: w, src: v });
        assert!(matches!(f.blocks[0].insts[3], Inst::Load { .. }));
    }

    #[test]
    fn call_kills_globals_but_not_stack() {
        let (v, w, s, t) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let g = Addr::Global {
            name: "g".into(),
            offset: 0,
        };
        let sl = Addr::Stack(SlotId(0));
        let mut f = func(
            vec![
                Inst::Load {
                    dst: v,
                    addr: g.clone(),
                },
                Inst::Load {
                    dst: s,
                    addr: sl.clone(),
                },
                Inst::Call {
                    dst: None,
                    callee: "h".into(),
                    args: vec![],
                },
                Inst::Load {
                    dst: w,
                    addr: g.clone(),
                }, // must reload
                Inst::Load {
                    dst: t,
                    addr: sl.clone(),
                }, // still available
            ],
            vec![RegClass::I; 4],
        );
        f.slots.push(crate::rtl::Slot {
            class: RegClass::I,
            origin: "local",
        });
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[3], Inst::Load { .. }));
        assert_eq!(f.blocks[0].insts[4], Inst::MovI { dst: t, src: s });
    }

    #[test]
    fn io_loads_never_merged() {
        let (v, w) = (Vreg(0), Vreg(1));
        let mut f = func(
            vec![
                Inst::Load {
                    dst: v,
                    addr: Addr::Io(1),
                },
                Inst::Load {
                    dst: w,
                    addr: Addr::Io(1),
                },
            ],
            vec![RegClass::F; 2],
        );
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Load { .. }));
    }

    #[test]
    fn redefinition_invalidates_expression() {
        let (a, b, c, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let mut f = func(
            vec![
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
                Inst::ImmI { dst: a, value: 5 },
                Inst::BinI {
                    op: IBin::Add,
                    dst: d,
                    a,
                    b,
                }, // different `a` now
            ],
            vec![RegClass::I; 4],
        );
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::BinI { .. }));
    }

    #[test]
    fn indexed_load_invalidated_when_index_changes() {
        let (i, v, w) = (Vreg(0), Vreg(1), Vreg(2));
        let addr = Addr::GlobalIndex {
            name: "tab".into(),
            index: i,
            scale: 8,
        };
        let mut f = func(
            vec![
                Inst::Load {
                    dst: v,
                    addr: addr.clone(),
                },
                Inst::BinIImm {
                    op: IBin::Add,
                    dst: i,
                    a: i,
                    imm: 1,
                },
                Inst::Load {
                    dst: w,
                    addr: addr.clone(),
                },
            ],
            vec![RegClass::I, RegClass::F, RegClass::F],
        );
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Load { .. }));
    }

    #[test]
    fn float_constants_deduplicated() {
        let (a, b) = (Vreg(0), Vreg(1));
        let mut f = func(
            vec![
                Inst::ImmF {
                    dst: a,
                    value: 3.25,
                },
                Inst::ImmF {
                    dst: b,
                    value: 3.25,
                },
            ],
            vec![RegClass::F; 2],
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::MovF { dst: b, src: a });
    }
}
