//! Branch tunneling: retargets jumps through chains of empty
//! unconditional-goto blocks, and folds conditional branches whose arms
//! coincide. One of CompCert's cleanup passes; also a validation target
//! ([`crate::validate::check_tunnel`]).

use crate::rtl::{BlockId, Func, Term};

/// Resolves `b` through empty-goto chains, with a visited guard against
/// pathological goto cycles (an empty infinite loop is left in place).
pub fn resolve(f: &Func, mut b: BlockId) -> BlockId {
    let mut hops = 0;
    loop {
        let block = f.block(b);
        match block.term {
            Term::Goto(next) if block.insts.is_empty() && next != b => {
                hops += 1;
                if hops > f.blocks.len() {
                    return b; // cycle of empty gotos: give up, keep semantics
                }
                b = next;
            }
            _ => return b,
        }
    }
}

/// Runs tunneling over every terminator.
pub fn run(f: &mut Func) {
    let ids = f.rpo();
    for b in ids {
        let mut term = f.block(b).term.clone();
        term.map_successors(|s| resolve(f, s));
        // A conditional with identical arms is a goto.
        match term {
            Term::BrI { then_, else_, .. }
            | Term::BrIImm { then_, else_, .. }
            | Term::BrF { then_, else_, .. }
                if then_ == else_ =>
            {
                term = Term::Goto(then_);
            }
            _ => {}
        }
        f.block_mut(b).term = term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, Inst, RegClass, Vreg};
    use vericomp_minic::ast::Cmp;

    fn empty_block(term: Term) -> Block {
        Block {
            insts: vec![],
            term,
        }
    }

    #[test]
    fn chains_collapse() {
        // b0 -> b1 -> b2 -> ret
        let f = &mut Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I],
            slots: vec![],
            blocks: vec![
                empty_block(Term::Goto(BlockId(1))),
                empty_block(Term::Goto(BlockId(2))),
                empty_block(Term::Ret(None)),
            ],
            entry: BlockId(0),
        };
        run(f);
        assert_eq!(f.blocks[0].term, Term::Goto(BlockId(2)));
    }

    #[test]
    fn nonempty_blocks_not_skipped() {
        let v = Vreg(0);
        let f = &mut Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I],
            slots: vec![],
            blocks: vec![
                empty_block(Term::Goto(BlockId(1))),
                Block {
                    insts: vec![Inst::ImmI { dst: v, value: 1 }],
                    term: Term::Goto(BlockId(2)),
                },
                empty_block(Term::Ret(Some(v))),
            ],
            entry: BlockId(0),
        };
        run(f);
        assert_eq!(f.blocks[0].term, Term::Goto(BlockId(1)), "b1 has effects");
    }

    #[test]
    fn equal_arms_fold_to_goto() {
        let v = Vreg(0);
        let f = &mut Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I],
            slots: vec![],
            blocks: vec![
                empty_block(Term::BrIImm {
                    cmp: Cmp::Lt,
                    a: v,
                    imm: 0,
                    then_: BlockId(1),
                    else_: BlockId(2),
                }),
                empty_block(Term::Goto(BlockId(3))),
                empty_block(Term::Goto(BlockId(3))),
                empty_block(Term::Ret(None)),
            ],
            entry: BlockId(0),
        };
        run(f);
        assert_eq!(f.blocks[0].term, Term::Goto(BlockId(3)));
    }

    #[test]
    fn empty_goto_cycle_survives() {
        let f = &mut Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![
                empty_block(Term::Goto(BlockId(1))),
                empty_block(Term::Goto(BlockId(2))),
                empty_block(Term::Goto(BlockId(1))),
            ],
            entry: BlockId(0),
        };
        run(f); // must terminate
        assert!(matches!(f.blocks[0].term, Term::Goto(_)));
    }
}
