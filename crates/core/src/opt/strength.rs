//! Strength reduction and fused-multiply-add formation.
//!
//! These passes belong to the *fully optimizing* reference configuration
//! only — they go beyond what the paper's CompCert version performed:
//!
//! * multiplications by powers of two become shifts; algebraic identities
//!   (`x+0`, `x*1`, `x*0`, `x&0`, …) are simplified;
//! * `a*b + c` chains where the product has a single use fuse into the
//!   machine's `fmadd`. Because our machine defines `fmadd` with an
//!   intermediate rounding of the product (see `DESIGN.md`), the fusion is
//!   exactly semantics-preserving, unlike on hardware with a true FMA.

use std::collections::BTreeMap;

use crate::rtl::{FBin, Func, IBin, Inst, Vreg};

/// Simplifies integer immediates: shifts for power-of-two multiplies and
/// algebraic identities. Returns the number of rewrites.
pub fn reduce(f: &mut Func) -> usize {
    let mut n = 0;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            let new = match *inst {
                Inst::BinIImm {
                    op: IBin::Mul,
                    dst,
                    a,
                    imm: 1,
                } => Some(Inst::MovI { dst, src: a }),
                Inst::BinIImm {
                    op: IBin::Mul,
                    dst,
                    a,
                    imm,
                } if imm > 1 && imm.count_ones() == 1 => Some(Inst::BinIImm {
                    op: IBin::Shl,
                    dst,
                    a,
                    imm: imm.trailing_zeros() as i32,
                }),
                Inst::BinIImm {
                    op: IBin::Mul,
                    dst,
                    imm: 0,
                    ..
                } => Some(Inst::ImmI { dst, value: 0 }),
                Inst::BinIImm {
                    op: IBin::Add,
                    dst,
                    a,
                    imm: 0,
                }
                | Inst::BinIImm {
                    op: IBin::Or,
                    dst,
                    a,
                    imm: 0,
                }
                | Inst::BinIImm {
                    op: IBin::Xor,
                    dst,
                    a,
                    imm: 0,
                }
                | Inst::BinIImm {
                    op: IBin::Shl,
                    dst,
                    a,
                    imm: 0,
                }
                | Inst::BinIImm {
                    op: IBin::Shr,
                    dst,
                    a,
                    imm: 0,
                }
                | Inst::BinIImm {
                    op: IBin::Sar,
                    dst,
                    a,
                    imm: 0,
                } => Some(Inst::MovI { dst, src: a }),
                Inst::BinIImm {
                    op: IBin::And,
                    dst,
                    imm: 0,
                    ..
                } => Some(Inst::ImmI { dst, value: 0 }),
                _ => None,
            };
            if let Some(rew) = new {
                if *inst != rew {
                    *inst = rew;
                    n += 1;
                }
            }
        }
    }
    n
}

/// Fuses `t = a *f b; d = t +f c` into `d = fmadd a, b, c` when `t` is used
/// exactly once, defined in the same block, and not redefined in between.
/// Returns the number of fusions (the dead multiply is left for DCE).
///
/// The commuted form `d = c +f t` is deliberately *not* fused: `fmadd`
/// evaluates the product as the first addend, and addition is not bitwise
/// commutative when both operands are NaN (the first NaN's payload
/// propagates). Fusing the commuted form was observed to flip NaN bit
/// patterns between the reference interpreter and the machine, so only the
/// order-preserving case — which is bit-exact by construction — is taken.
pub fn fuse_fmadd(f: &mut Func) -> usize {
    // Global use counts.
    let mut uses: BTreeMap<Vreg, usize> = BTreeMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            for u in i.uses() {
                *uses.entry(u).or_insert(0) += 1;
            }
        }
        for u in b.term.uses() {
            *uses.entry(u).or_insert(0) += 1;
        }
    }

    let mut fused = 0;
    for block in &mut f.blocks {
        // Most recent in-block multiply producing each vreg, invalidated on
        // operand or destination redefinition.
        let mut muls: BTreeMap<Vreg, (Vreg, Vreg)> = BTreeMap::new();
        for idx in 0..block.insts.len() {
            let inst = block.insts[idx].clone();
            if let Inst::BinF {
                op: FBin::Add,
                dst,
                a,
                b,
            } = inst
            {
                // Only the product-first form: see the NaN note above.
                let pick = if muls.contains_key(&a) && uses.get(&a) == Some(&1) {
                    Some((a, b))
                } else {
                    None
                };
                if let Some((prod, addend)) = pick {
                    let (ma, mb) = muls[&prod];
                    block.insts[idx] = Inst::MaddF {
                        dst,
                        a: ma,
                        b: mb,
                        c: addend,
                    };
                    fused += 1;
                }
            }
            let inst = &block.insts[idx];
            if let Some(d) = inst.def() {
                // redefinition of an operand or of the product invalidates
                muls.retain(|prod, (a, b)| *prod != d && *a != d && *b != d);
            }
            if let Inst::BinF {
                op: FBin::Mul,
                dst,
                a,
                b,
            } = *inst
            {
                if dst != a && dst != b {
                    muls.insert(dst, (a, b));
                }
            }
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, RegClass, Term};

    fn func(insts: Vec<Inst>, vregs: Vec<RegClass>, ret: Option<Vreg>) -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: ret.map(|_| RegClass::F),
            vregs,
            slots: vec![],
            blocks: vec![Block {
                insts,
                term: Term::Ret(ret),
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let (a, d) = (Vreg(0), Vreg(1));
        let mut f = func(
            vec![Inst::BinIImm {
                op: IBin::Mul,
                dst: d,
                a,
                imm: 8,
            }],
            vec![RegClass::I; 2],
            None,
        );
        assert_eq!(reduce(&mut f), 1);
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::BinIImm {
                op: IBin::Shl,
                dst: d,
                a,
                imm: 3
            }
        );
    }

    #[test]
    fn identities_simplify() {
        let (a, d) = (Vreg(0), Vreg(1));
        let mut f = func(
            vec![
                Inst::BinIImm {
                    op: IBin::Add,
                    dst: d,
                    a,
                    imm: 0,
                },
                Inst::BinIImm {
                    op: IBin::Mul,
                    dst: d,
                    a,
                    imm: 1,
                },
                Inst::BinIImm {
                    op: IBin::And,
                    dst: d,
                    a,
                    imm: 0,
                },
            ],
            vec![RegClass::I; 2],
            None,
        );
        assert_eq!(reduce(&mut f), 3);
        assert_eq!(f.blocks[0].insts[0], Inst::MovI { dst: d, src: a });
        assert_eq!(f.blocks[0].insts[1], Inst::MovI { dst: d, src: a });
        assert_eq!(f.blocks[0].insts[2], Inst::ImmI { dst: d, value: 0 });
    }

    #[test]
    fn fmadd_fusion_single_use() {
        let (a, b, c, t, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3), Vreg(4));
        let mut f = func(
            vec![
                Inst::BinF {
                    op: FBin::Mul,
                    dst: t,
                    a,
                    b,
                },
                Inst::BinF {
                    op: FBin::Add,
                    dst: d,
                    a: t,
                    b: c,
                },
            ],
            vec![RegClass::F; 5],
            Some(d),
        );
        assert_eq!(fuse_fmadd(&mut f), 1);
        assert_eq!(f.blocks[0].insts[1], Inst::MaddF { dst: d, a, b, c });
    }

    #[test]
    fn no_fusion_when_product_is_second_addend() {
        // `d = c + t` must stay an add: fmadd would compute `t + c`, and
        // when both are NaN the first operand's payload wins, so the
        // commuted fusion is not bit-exact.
        let (a, b, c, t, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3), Vreg(4));
        let mut f = func(
            vec![
                Inst::BinF {
                    op: FBin::Mul,
                    dst: t,
                    a,
                    b,
                },
                Inst::BinF {
                    op: FBin::Add,
                    dst: d,
                    a: c,
                    b: t,
                },
            ],
            vec![RegClass::F; 5],
            Some(d),
        );
        assert_eq!(fuse_fmadd(&mut f), 0);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::BinF {
                op: FBin::Add,
                dst: d,
                a: c,
                b: t
            }
        );
    }

    #[test]
    fn no_fusion_when_product_reused() {
        let (a, b, c, t, d, e) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3), Vreg(4), Vreg(5));
        let mut f = func(
            vec![
                Inst::BinF {
                    op: FBin::Mul,
                    dst: t,
                    a,
                    b,
                },
                Inst::BinF {
                    op: FBin::Add,
                    dst: d,
                    a: t,
                    b: c,
                },
                Inst::BinF {
                    op: FBin::Sub,
                    dst: e,
                    a: t,
                    b: c,
                }, // t used twice
            ],
            vec![RegClass::F; 6],
            Some(d),
        );
        assert_eq!(fuse_fmadd(&mut f), 0);
    }

    #[test]
    fn no_fusion_across_operand_redefinition() {
        let (a, b, c, t, d) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3), Vreg(4));
        let mut f = func(
            vec![
                Inst::BinF {
                    op: FBin::Mul,
                    dst: t,
                    a,
                    b,
                },
                Inst::ImmF { dst: a, value: 0.0 }, // `a` changed — fusion would still be
                // correct (operands captured), but the window is invalidated
                // conservatively; what matters is no miscompile:
                Inst::BinF {
                    op: FBin::Add,
                    dst: d,
                    a: t,
                    b: c,
                },
            ],
            vec![RegClass::F; 5],
            Some(d),
        );
        assert_eq!(fuse_fmadd(&mut f), 0);
    }
}
