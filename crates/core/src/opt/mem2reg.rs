//! Stack-slot promotion ("registerization").
//!
//! The `-O0` lowering keeps every scalar variable in a stack slot. This pass
//! rewrites each slot to a dedicated virtual register: loads become moves
//! from it, stores become moves to it, and in-place annotation observations
//! of the slot become register observations. This is the single pass
//! responsible for the paper's headline effect — CompCert "simply keeps
//! these variables inside registers" (§3.3), eliminating most cache
//! traffic of the pattern-generated code.
//!
//! Soundness: MiniC has no address-taken variables, so a slot is only ever
//! accessed through `Addr::Stack(slot)`; substituting one virtual register
//! per slot preserves every def-use relation, including across control-flow
//! joins (the register simply carries the merged value, exactly like the
//! memory cell did). Slots are always initialized at function entry by the
//! lowering (parameter stores / zero initialization).

use crate::rtl::{Addr, AnnotArg, Func, Inst, Vreg};

/// Promotes every stack slot to a virtual register.
pub fn run(f: &mut Func) {
    let slot_regs: Vec<Vreg> = f
        .slots
        .iter()
        .map(|s| s.class)
        .collect::<Vec<_>>()
        .into_iter()
        .map(|class| f.new_vreg(class))
        .collect();

    for block in &mut f.blocks {
        for inst in &mut block.insts {
            let new = match inst {
                Inst::Load {
                    dst,
                    addr: Addr::Stack(s),
                } => {
                    let src = slot_regs[s.0 as usize];
                    match f.slots[s.0 as usize].class {
                        crate::rtl::RegClass::I => Inst::MovI { dst: *dst, src },
                        crate::rtl::RegClass::F => Inst::MovF { dst: *dst, src },
                    }
                }
                Inst::Store {
                    src,
                    addr: Addr::Stack(s),
                } => {
                    let dst = slot_regs[s.0 as usize];
                    match f.slots[s.0 as usize].class {
                        crate::rtl::RegClass::I => Inst::MovI { dst, src: *src },
                        crate::rtl::RegClass::F => Inst::MovF { dst, src: *src },
                    }
                }
                Inst::Annot { args, .. } => {
                    for arg in args {
                        if let AnnotArg::Mem(Addr::Stack(s), _) = arg {
                            *arg = AnnotArg::Reg(slot_regs[s.0 as usize]);
                        }
                    }
                    continue;
                }
                _ => continue,
            };
            *inst = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, RegClass, SlotId, Term};

    #[test]
    fn loads_and_stores_become_moves() {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let s = f.new_slot(RegClass::F, "local");
        let v = f.new_vreg(RegClass::F);
        let w = f.new_vreg(RegClass::F);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Store {
                    src: v,
                    addr: Addr::Stack(s),
                },
                Inst::Load {
                    dst: w,
                    addr: Addr::Stack(s),
                },
            ],
            term: Term::Ret(None),
        };
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[0], Inst::MovF { .. }));
        assert!(matches!(f.blocks[0].insts[1], Inst::MovF { .. }));
        // same promoted register on both sides
        let (d0, s1) = match (&f.blocks[0].insts[0], &f.blocks[0].insts[1]) {
            (Inst::MovF { dst, .. }, Inst::MovF { src, .. }) => (*dst, *src),
            _ => unreachable!(),
        };
        assert_eq!(d0, s1);
    }

    #[test]
    fn annotation_slot_args_promoted_to_registers() {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let s = f.new_slot(RegClass::I, "local");
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![Inst::Annot {
                format: "%1".into(),
                args: vec![AnnotArg::Mem(Addr::Stack(s), RegClass::I)],
            }],
            term: Term::Ret(None),
        };
        run(&mut f);
        match &f.blocks[0].insts[0] {
            Inst::Annot { args, .. } => assert!(matches!(args[0], AnnotArg::Reg(_))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn global_accesses_untouched() {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let v = f.new_vreg(RegClass::I);
        let b = f.new_block();
        f.entry = b;
        let addr = Addr::Global {
            name: "g".into(),
            offset: 0,
        };
        f.blocks[0] = Block {
            insts: vec![Inst::Load {
                dst: v,
                addr: addr.clone(),
            }],
            term: Term::Ret(None),
        };
        run(&mut f);
        assert_eq!(f.blocks[0].insts[0], Inst::Load { dst: v, addr });
    }

    #[test]
    fn distinct_slots_get_distinct_registers() {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let s0 = f.new_slot(RegClass::I, "a");
        let s1 = f.new_slot(RegClass::I, "b");
        let v = f.new_vreg(RegClass::I);
        let b = f.new_block();
        f.entry = b;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Store {
                    src: v,
                    addr: Addr::Stack(s0),
                },
                Inst::Store {
                    src: v,
                    addr: Addr::Stack(s1),
                },
            ],
            term: Term::Ret(None),
        };
        run(&mut f);
        let (d0, d1) = match (&f.blocks[0].insts[0], &f.blocks[0].insts[1]) {
            (Inst::MovI { dst: a, .. }, Inst::MovI { dst: b, .. }) => (*a, *b),
            _ => unreachable!(),
        };
        assert_ne!(d0, d1);
        assert_eq!(SlotId(0), SlotId(0)); // slots remain (frame layout skips unused ones)
    }
}
