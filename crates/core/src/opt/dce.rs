//! Liveness-based dead-code elimination.
//!
//! Removes pure instructions whose destination is dead. Iterates to a
//! fixpoint so that chains of now-dead producers disappear too. Stores,
//! calls, annotations and I/O loads are never removed.

use crate::liveness;
use crate::rtl::Func;

/// Runs DCE to a fixpoint. Returns the number of removed instructions.
pub fn run(f: &mut Func) -> usize {
    let mut removed = 0;
    loop {
        let live = liveness::analyze(f);
        let mut changed = false;
        let ids: Vec<_> = f.rpo();
        for b in ids {
            let out = live.live_out[b.0 as usize].clone();
            let block = f.block_mut(b);
            let mut live_now = out;
            for u in block.term.uses() {
                live_now.insert(u);
            }
            let mut keep = Vec::with_capacity(block.insts.len());
            for inst in block.insts.drain(..).rev() {
                let dead = inst.def().map(|d| !live_now.contains(&d)).unwrap_or(false);
                if dead && inst.is_pure() {
                    changed = true;
                    removed += 1;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live_now.remove(&d);
                }
                for u in inst.uses() {
                    live_now.insert(u);
                }
                keep.push(inst);
            }
            keep.reverse();
            block.insts = keep;
        }
        if !changed {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Addr, Block, BlockId, IBin, Inst, RegClass, Term, Vreg};

    fn func(insts: Vec<Inst>, term: Term, vregs: Vec<RegClass>) -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs,
            slots: vec![],
            blocks: vec![Block { insts, term }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn removes_dead_chain() {
        let (a, b, c, r) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
        let mut f = func(
            vec![
                Inst::ImmI { dst: a, value: 1 }, // only feeds dead b
                Inst::BinIImm {
                    op: IBin::Add,
                    dst: b,
                    a,
                    imm: 2,
                }, // dead
                Inst::ImmI { dst: c, value: 3 },
                Inst::MovI { dst: r, src: c },
            ],
            Term::Ret(Some(r)),
            vec![RegClass::I; 4],
        );
        let n = run(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn keeps_effectful_instructions() {
        let (a, v) = (Vreg(0), Vreg(1));
        let mut f = func(
            vec![
                Inst::ImmI { dst: a, value: 1 },
                Inst::Store {
                    src: a,
                    addr: Addr::Global {
                        name: "g".into(),
                        offset: 0,
                    },
                },
                Inst::Load {
                    dst: v,
                    addr: Addr::Io(0),
                }, // volatile, dst dead
            ],
            Term::Ret(None),
            vec![RegClass::I, RegClass::F],
        );
        let n = run(&mut f);
        assert_eq!(n, 0);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn keeps_values_used_by_annotations() {
        let a = Vreg(0);
        let mut f = func(
            vec![
                Inst::ImmI { dst: a, value: 7 },
                Inst::Annot {
                    format: "%1".into(),
                    args: vec![crate::rtl::AnnotArg::Reg(a)],
                },
            ],
            Term::Ret(None),
            vec![RegClass::I],
        );
        let n = run(&mut f);
        assert_eq!(n, 0, "annotation argument producers must survive DCE");
    }

    #[test]
    fn respects_cross_block_liveness() {
        // b0 defines a, b1 uses it
        let a = Vreg(0);
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I],
            slots: vec![],
            blocks: vec![
                Block {
                    insts: vec![Inst::ImmI { dst: a, value: 1 }],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(a)),
                },
            ],
            entry: BlockId(0),
        };
        let n = run(&mut f);
        assert_eq!(n, 0);
    }
}
