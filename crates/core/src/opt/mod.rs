//! Optimization passes over RTL.
//!
//! The pass inventory matches the paper's description of CompCert §3.2
//! ("basic optimizations such as constant propagation, common subexpression
//! elimination and register allocation by graph coloring, but no loop
//! optimizations"), plus the extra passes the fully-optimizing reference
//! compiler is allowed to use (strength reduction, `fmadd` fusion; list
//! scheduling lives in the emitter since it works on machine instructions).

pub mod constprop;
pub mod cse;
pub mod dce;
pub mod mem2reg;
pub mod strength;
pub mod tunnel;
