//! Local constant propagation, copy propagation and constant folding.
//!
//! Facts are tracked per basic block (each block starts from ⊤). Folding of
//! floating-point constants is *exact*: the folder applies the very same
//! host IEEE-754 double operations the target machine executes, so the
//! transformation is semantics-preserving to the bit.
//!
//! The pass also canonicalizes immediate forms: `v + 5` becomes an
//! `addi`-shaped [`Inst::BinIImm`] when the constant fits the instruction's
//! immediate field, and integer compare-branches against constants become
//! compare-immediate branches.

use std::collections::BTreeMap;

use vericomp_minic::interp::sat_trunc;

use crate::rtl::{FBin, FUn, Func, IBin, IUnop, Inst, Term, Vreg};

/// An abstract value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Abs {
    ConstI(i32),
    ConstF(f64),
    Copy(Vreg),
}

/// Machine division semantics (`divw`).
pub(crate) fn divw(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Evaluates an integer binary operation with machine semantics.
pub(crate) fn eval_ibin(op: IBin, a: i32, b: i32) -> i32 {
    match op {
        IBin::Add => a.wrapping_add(b),
        IBin::Sub => a.wrapping_sub(b),
        IBin::Mul => a.wrapping_mul(b),
        IBin::Div => divw(a, b),
        IBin::And => a & b,
        IBin::Or => a | b,
        IBin::Xor => a ^ b,
        // `slw`/`srw` semantics: shift amounts are masked to 6 bits and
        // amounts ≥ 32 produce 0; `sraw` saturates to the sign.
        IBin::Shl => {
            let sh = (b as u32) & 63;
            if sh >= 32 {
                0
            } else {
                ((a as u32) << sh) as i32
            }
        }
        IBin::Shr => {
            let sh = (b as u32) & 63;
            if sh >= 32 {
                0
            } else {
                ((a as u32) >> sh) as i32
            }
        }
        IBin::Sar => {
            let sh = (b as u32) & 63;
            if sh >= 32 {
                a >> 31
            } else {
                a >> sh
            }
        }
    }
}

/// Evaluates a floating binary operation (exactly the machine's).
pub(crate) fn eval_fbin(op: FBin, a: f64, b: f64) -> f64 {
    match op {
        FBin::Add => a + b,
        FBin::Sub => a - b,
        FBin::Mul => a * b,
        FBin::Div => a / b,
    }
}

/// Whether `imm` is encodable as the immediate operand of `op`.
pub(crate) fn imm_legal(op: IBin, imm: i32) -> bool {
    match op {
        IBin::Add | IBin::Mul => i16::try_from(imm).is_ok(),
        IBin::And | IBin::Or | IBin::Xor => (0..=0xFFFF).contains(&imm),
        IBin::Shl | IBin::Shr | IBin::Sar => (0..=31).contains(&imm),
        IBin::Sub | IBin::Div => false,
    }
}

fn commutative(op: IBin) -> bool {
    matches!(op, IBin::Add | IBin::Mul | IBin::And | IBin::Or | IBin::Xor)
}

struct State {
    facts: BTreeMap<Vreg, Abs>,
}

impl State {
    fn resolve(&self, v: Vreg) -> Vreg {
        match self.facts.get(&v) {
            Some(Abs::Copy(w)) => *w,
            _ => v,
        }
    }

    fn const_i(&self, v: Vreg) -> Option<i32> {
        match self.facts.get(&v) {
            Some(Abs::ConstI(c)) => Some(*c),
            _ => None,
        }
    }

    fn const_f(&self, v: Vreg) -> Option<f64> {
        match self.facts.get(&v) {
            Some(Abs::ConstF(c)) => Some(*c),
            _ => None,
        }
    }

    /// Invalidates facts that mention `d` (it is being redefined).
    fn kill(&mut self, d: Vreg) {
        self.facts.remove(&d);
        self.facts
            .retain(|_, a| !matches!(a, Abs::Copy(w) if *w == d));
    }

    fn learn(&mut self, d: Vreg, a: Abs) {
        self.facts.insert(d, a);
    }
}

/// Runs the pass over every block.
pub fn run(f: &mut Func) {
    for block in &mut f.blocks {
        let mut st = State {
            facts: BTreeMap::new(),
        };
        for inst in &mut block.insts {
            // 1. copy-propagate uses
            inst.map_uses(&mut |v| st.resolve(v));

            // 2. fold / canonicalize
            let folded: Option<Inst> = match &*inst {
                Inst::MovI { dst, src } => st.const_i(*src).map(|c| Inst::ImmI {
                    dst: *dst,
                    value: c,
                }),
                Inst::MovF { dst, src } => st.const_f(*src).map(|c| Inst::ImmF {
                    dst: *dst,
                    value: c,
                }),
                Inst::UnI {
                    op: IUnop::Neg,
                    dst,
                    a,
                } => st.const_i(*a).map(|c| Inst::ImmI {
                    dst: *dst,
                    value: c.wrapping_neg(),
                }),
                Inst::UnF { op, dst, a } => st.const_f(*a).map(|c| Inst::ImmF {
                    dst: *dst,
                    value: match op {
                        FUn::Neg => -c,
                        FUn::Abs => c.abs(),
                    },
                }),
                Inst::BinI { op, dst, a, b } => match (st.const_i(*a), st.const_i(*b)) {
                    (Some(x), Some(y)) => Some(Inst::ImmI {
                        dst: *dst,
                        value: eval_ibin(*op, x, y),
                    }),
                    (None, Some(y)) if imm_legal(*op, y) => Some(Inst::BinIImm {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        imm: y,
                    }),
                    (None, Some(y))
                        if *op == IBin::Sub && i16::try_from(y.wrapping_neg()).is_ok() =>
                    {
                        Some(Inst::BinIImm {
                            op: IBin::Add,
                            dst: *dst,
                            a: *a,
                            imm: y.wrapping_neg(),
                        })
                    }
                    (Some(x), None) if commutative(*op) && imm_legal(*op, x) => {
                        Some(Inst::BinIImm {
                            op: *op,
                            dst: *dst,
                            a: *b,
                            imm: x,
                        })
                    }
                    _ => None,
                },
                Inst::BinIImm { op, dst, a, imm } => st.const_i(*a).map(|x| Inst::ImmI {
                    dst: *dst,
                    value: eval_ibin(*op, x, *imm),
                }),
                Inst::BinF { op, dst, a, b } => match (st.const_f(*a), st.const_f(*b)) {
                    (Some(x), Some(y)) => Some(Inst::ImmF {
                        dst: *dst,
                        value: eval_fbin(*op, x, y),
                    }),
                    _ => None,
                },
                Inst::Itof { dst, src } => st.const_i(*src).map(|c| Inst::ImmF {
                    dst: *dst,
                    value: f64::from(c),
                }),
                Inst::Ftoi { dst, src } => st.const_f(*src).map(|c| Inst::ImmI {
                    dst: *dst,
                    value: sat_trunc(c),
                }),
                _ => None,
            };
            if let Some(n) = folded {
                *inst = n;
            }

            // 3. update facts
            if let Some(d) = inst.def() {
                st.kill(d);
                match &*inst {
                    Inst::ImmI { value, .. } => st.learn(d, Abs::ConstI(*value)),
                    Inst::ImmF { value, .. } => st.learn(d, Abs::ConstF(*value)),
                    // Self-moves (possible after copy propagation of a
                    // store-to-self) carry no information.
                    Inst::MovI { src, .. } | Inst::MovF { src, .. } if *src != d => {
                        st.learn(d, Abs::Copy(*src));
                    }
                    _ => {}
                }
            }
        }

        // 4. terminator
        match &mut block.term {
            Term::BrI {
                cmp,
                a,
                b,
                then_,
                else_,
            } => {
                *a = st.resolve(*a);
                *b = st.resolve(*b);
                match (st.const_i(*a), st.const_i(*b)) {
                    (Some(x), Some(y)) => {
                        let t = if cmp.eval(Some(x.cmp(&y))) {
                            *then_
                        } else {
                            *else_
                        };
                        block.term = Term::Goto(t);
                    }
                    (None, Some(y)) if i16::try_from(y).is_ok() => {
                        block.term = Term::BrIImm {
                            cmp: *cmp,
                            a: *a,
                            imm: y,
                            then_: *then_,
                            else_: *else_,
                        };
                    }
                    (Some(x), None) if i16::try_from(x).is_ok() => {
                        block.term = Term::BrIImm {
                            cmp: cmp.swap(),
                            a: *b,
                            imm: x,
                            then_: *then_,
                            else_: *else_,
                        };
                    }
                    _ => {}
                }
            }
            Term::BrIImm {
                cmp,
                a,
                imm,
                then_,
                else_,
            } => {
                *a = st.resolve(*a);
                if let Some(x) = st.const_i(*a) {
                    let t = if cmp.eval(Some(x.cmp(imm))) {
                        *then_
                    } else {
                        *else_
                    };
                    block.term = Term::Goto(t);
                }
            }
            Term::BrF { a, b, .. } => {
                *a = st.resolve(*a);
                *b = st.resolve(*b);
            }
            Term::Ret(Some(v)) => *v = st.resolve(*v),
            Term::Goto(_) | Term::Ret(None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, RegClass};
    use vericomp_minic::ast::Cmp;

    fn func1(insts: Vec<Inst>, term: Term, nvregs: u32) -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I; nvregs as usize],
            slots: vec![],
            blocks: vec![Block { insts, term }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn folds_constant_addition() {
        let (a, b, c) = (Vreg(0), Vreg(1), Vreg(2));
        let mut f = func1(
            vec![
                Inst::ImmI { dst: a, value: 40 },
                Inst::ImmI { dst: b, value: 2 },
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
            ],
            Term::Ret(Some(c)),
            3,
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[2], Inst::ImmI { dst: c, value: 42 });
    }

    #[test]
    fn forms_immediate_operand() {
        let (a, b, c) = (Vreg(0), Vreg(1), Vreg(2));
        let mut f = func1(
            vec![
                Inst::ImmI { dst: b, value: 5 },
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
            ],
            Term::Ret(Some(c)),
            3,
        );
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::BinIImm {
                op: IBin::Add,
                dst: c,
                a,
                imm: 5
            }
        );
    }

    #[test]
    fn sub_constant_becomes_addi_negative() {
        let (a, b, c) = (Vreg(0), Vreg(1), Vreg(2));
        let mut f = func1(
            vec![
                Inst::ImmI { dst: b, value: 7 },
                Inst::BinI {
                    op: IBin::Sub,
                    dst: c,
                    a,
                    b,
                },
            ],
            Term::Ret(Some(c)),
            3,
        );
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::BinIImm {
                op: IBin::Add,
                dst: c,
                a,
                imm: -7
            }
        );
    }

    #[test]
    fn copy_propagates_through_moves() {
        let (a, b, c) = (Vreg(0), Vreg(1), Vreg(2));
        let mut f = func1(
            vec![
                Inst::MovI { dst: b, src: a },
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a: b,
                    b,
                },
            ],
            Term::Ret(Some(c)),
            3,
        );
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::BinI {
                op: IBin::Add,
                dst: c,
                a,
                b: a
            }
        );
    }

    #[test]
    fn copy_fact_dies_when_source_redefined() {
        let (a, b) = (Vreg(0), Vreg(1));
        let mut f = func1(
            vec![
                Inst::MovI { dst: b, src: a },
                Inst::ImmI { dst: a, value: 9 }, // a redefined: b != a now
                Inst::MovI { dst: a, src: b },   // must NOT become ImmI 9
            ],
            Term::Ret(Some(a)),
            2,
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[2], Inst::MovI { dst: a, src: b });
    }

    #[test]
    fn folds_float_exactly() {
        let (a, b, c) = (Vreg(0), Vreg(1), Vreg(2));
        let mut f = Func {
            vregs: vec![RegClass::F; 3],
            ..func1(vec![], Term::Ret(None), 0)
        };
        f.blocks[0].insts = vec![
            Inst::ImmF { dst: a, value: 0.1 },
            Inst::ImmF { dst: b, value: 0.2 },
            Inst::BinF {
                op: FBin::Add,
                dst: c,
                a,
                b,
            },
        ];
        run(&mut f);
        match f.blocks[0].insts[2] {
            Inst::ImmF { value, .. } => assert_eq!(value.to_bits(), (0.1f64 + 0.2).to_bits()),
            ref other => panic!("expected fold, got {other}"),
        }
    }

    #[test]
    fn branch_on_constants_becomes_goto() {
        let a = Vreg(0);
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![RegClass::I],
            slots: vec![],
            blocks: vec![
                Block {
                    insts: vec![Inst::ImmI { dst: a, value: 3 }],
                    term: Term::BrIImm {
                        cmp: Cmp::Lt,
                        a,
                        imm: 10,
                        then_: BlockId(1),
                        else_: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            entry: BlockId(0),
        };
        run(&mut f);
        assert_eq!(f.blocks[0].term, Term::Goto(BlockId(1)));
    }

    #[test]
    fn machine_semantics_in_folder() {
        assert_eq!(eval_ibin(IBin::Div, 5, 0), 0);
        assert_eq!(eval_ibin(IBin::Div, i32::MIN, -1), i32::MIN);
        assert_eq!(eval_ibin(IBin::Shl, 1, 40), 0);
        assert_eq!(eval_ibin(IBin::Sar, -8, 2), -2);
        assert_eq!(eval_ibin(IBin::Sar, -1, 45), -1);
        assert_eq!(eval_ibin(IBin::Add, i32::MAX, 1), i32::MIN);
    }
}
