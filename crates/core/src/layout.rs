//! Data-section layout: assigns addresses to global variables, the
//! floating-point constant pool and the small-data-area base register.

use std::collections::BTreeMap;

use vericomp_arch::program::ElemTy;
use vericomp_arch::MachineConfig;
use vericomp_minic::ast::{GlobalDef, Program};

/// Placement of one global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalInfo {
    /// Base address.
    pub addr: u32,
    /// Element type (booleans are stored as `I32` words).
    pub elem: ElemTy,
    /// Number of elements (1 for scalars).
    pub len: u32,
}

/// The data-section layout of a program.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Global placements by name.
    pub globals: BTreeMap<String, GlobalInfo>,
    /// Base address of the floating-point constant pool (`r2` at run time).
    pub pool_base: u32,
    /// Value of the small-data-area base register `r13`. Chosen at
    /// `data_base + 0x8000` so every data-section address within the first
    /// 64 KiB is reachable with a signed 16-bit displacement.
    pub sda_base: u32,
}

impl Layout {
    /// The placement of a global.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown (programs are typechecked first).
    pub fn global(&self, name: &str) -> GlobalInfo {
        self.globals[name]
    }

    /// Signed displacement of `addr` from the SDA base, if it fits the
    /// 16-bit field.
    pub fn sda_offset(&self, addr: u32) -> Option<i16> {
        let off = i64::from(addr) - i64::from(self.sda_base);
        i16::try_from(off).ok()
    }
}

/// Computes the layout for a program's globals.
pub fn layout_globals(prog: &Program, cfg: &MachineConfig) -> Layout {
    let mut addr = cfg.data_base;
    let mut globals = BTreeMap::new();
    for g in &prog.globals {
        let (elem, len) = match &g.def {
            GlobalDef::ScalarI32(_) | GlobalDef::ScalarBool(_) => (ElemTy::I32, 1),
            GlobalDef::ScalarF64(_) => (ElemTy::F64, 1),
            GlobalDef::ArrayI32(v) => (ElemTy::I32, v.len() as u32),
            GlobalDef::ArrayF64(v) => (ElemTy::F64, v.len() as u32),
        };
        addr = addr.next_multiple_of(8);
        globals.insert(g.name.clone(), GlobalInfo { addr, elem, len });
        addr += elem.size() * len;
    }
    let pool_base = addr.next_multiple_of(8);
    Layout {
        globals,
        pool_base,
        sda_base: cfg.data_base + 0x8000,
    }
}

/// The deduplicating floating-point constant pool, addressed `r2`-relative.
#[derive(Debug, Clone, Default)]
pub struct ConstPool {
    entries: Vec<f64>,
    index: BTreeMap<u64, u32>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Byte offset of `value` within the pool, interning it if new.
    /// Deduplication is bitwise, so `0.0` and `-0.0` get distinct entries.
    pub fn offset_of(&mut self, value: f64) -> u32 {
        let bits = value.to_bits();
        if let Some(&off) = self.index.get(&bits) {
            return off;
        }
        let off = 8 * self.entries.len() as u32;
        self.entries.push(value);
        self.index.insert(bits, off);
        off
    }

    /// `(byte offset, value)` pairs in pool order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &v)| (8 * i as u32, v))
    }

    /// Pool size in bytes.
    pub fn size(&self) -> u32 {
        8 * self.entries.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::ast::Global;

    #[test]
    fn layout_aligns_and_orders() {
        let prog = Program {
            globals: vec![
                Global {
                    name: "a".into(),
                    def: GlobalDef::ScalarI32(None),
                },
                Global {
                    name: "b".into(),
                    def: GlobalDef::ScalarF64(None),
                },
                Global {
                    name: "t".into(),
                    def: GlobalDef::ArrayF64(vec![0.0; 3]),
                },
            ],
            functions: vec![],
        };
        let cfg = MachineConfig::mpc755();
        let l = layout_globals(&prog, &cfg);
        assert_eq!(l.global("a").addr, cfg.data_base);
        assert_eq!(l.global("b").addr, cfg.data_base + 8);
        assert_eq!(l.global("t").addr, cfg.data_base + 16);
        assert_eq!(l.pool_base, cfg.data_base + 40);
        assert_eq!(l.global("t").len, 3);
    }

    #[test]
    fn sda_offsets() {
        let cfg = MachineConfig::mpc755();
        let l = layout_globals(&Program::default(), &cfg);
        assert_eq!(l.sda_offset(cfg.data_base), Some(-0x8000));
        assert_eq!(l.sda_offset(cfg.data_base + 0x8000), Some(0));
        assert_eq!(l.sda_offset(cfg.data_base + 0xFFFF).unwrap(), 0x7FFF);
        assert_eq!(l.sda_offset(cfg.data_base + 0x1_0000), None);
    }

    #[test]
    fn pool_dedup_is_bitwise() {
        let mut p = ConstPool::new();
        let a = p.offset_of(1.5);
        let b = p.offset_of(1.5);
        let c = p.offset_of(-0.0);
        let d = p.offset_of(0.0);
        assert_eq!(a, b);
        assert_ne!(c, d);
        assert_eq!(p.size(), 24);
        let vals: Vec<f64> = p.entries().map(|(_, v)| v).collect();
        assert_eq!(vals.len(), 3);
    }
}
