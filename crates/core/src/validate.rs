//! Translation validators — the Rust analog of CompCert's machine-checked
//! correctness argument (see `DESIGN.md`).
//!
//! Each structure-changing, untrusted transformation is re-checked by an
//! independent validator with a sound rejection criterion:
//!
//! * [`check_allocation`] — register allocation: recomputes liveness and
//!   verifies, def point by def point, that no two simultaneously-live
//!   virtual registers share a physical register (with the standard
//!   move-coalescing exception), that classes match, that reserved registers
//!   are untouched, and that values live across calls sit in callee-saved
//!   registers;
//! * [`check_tunnel`] — branch tunneling: every retargeted edge must follow
//!   a chain of *empty goto* blocks of the original function;
//! * [`check_schedule`] — post-emission list scheduling: the scheduled block
//!   must be a dependence-preserving permutation of the original block
//!   (register RAW/WAR/WAW including CR fields and LR, store ordering,
//!   calls and annotation markers pinned).
//!
//! The paper (§4) points to exactly this technique — *verified translation
//! validation* à la Tristan & Leroy — as the way to get semantic-preservation
//! guarantees for optimizations that are too hard to prove directly.

use std::collections::BTreeSet;
use std::fmt;

use vericomp_arch::inst::{Inst as MInst, Reg};

use crate::liveness;
use crate::regalloc::{Allocation, PReg};
use crate::rtl::{Func, Inst, Term, Vreg};

/// A validation failure: the transformation result is rejected and
/// compilation fails closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two interfering virtual registers share a physical register.
    AllocConflict {
        /// Function name.
        func: String,
        /// First virtual register.
        a: Vreg,
        /// Second virtual register.
        b: Vreg,
        /// The shared physical register (printable).
        preg: String,
    },
    /// A virtual register has no assignment or one of the wrong class.
    AllocMissing {
        /// Function name.
        func: String,
        /// The offending virtual register.
        vreg: Vreg,
    },
    /// A reserved register was allocated.
    AllocReserved {
        /// Function name.
        func: String,
        /// The offending assignment (printable).
        preg: String,
    },
    /// A value live across a call sits in a caller-saved register.
    AllocCallClobber {
        /// Function name.
        func: String,
        /// The offending virtual register.
        vreg: Vreg,
    },
    /// A tunneled branch edge does not follow empty-goto chains.
    TunnelBadEdge {
        /// Function name.
        func: String,
    },
    /// Tunneling changed instructions (it must only rewrite terminators).
    TunnelChangedCode {
        /// Function name.
        func: String,
    },
    /// The scheduled block is not a permutation of the original.
    ScheduleNotPermutation,
    /// The schedule violates a dependence.
    ScheduleDependence {
        /// Index (in the scheduled block) of the offending instruction.
        at: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::AllocConflict { func, a, b, preg } => {
                write!(
                    f,
                    "allocation conflict in `{func}`: {a} and {b} both in {preg}"
                )
            }
            ValidationError::AllocMissing { func, vreg } => {
                write!(f, "no/ill-classed assignment for {vreg} in `{func}`")
            }
            ValidationError::AllocReserved { func, preg } => {
                write!(f, "reserved register {preg} allocated in `{func}`")
            }
            ValidationError::AllocCallClobber { func, vreg } => {
                write!(
                    f,
                    "{vreg} lives across a call in a volatile register in `{func}`"
                )
            }
            ValidationError::TunnelBadEdge { func } => {
                write!(f, "tunneling retargeted an edge illegally in `{func}`")
            }
            ValidationError::TunnelChangedCode { func } => {
                write!(f, "tunneling modified instructions in `{func}`")
            }
            ValidationError::ScheduleNotPermutation => {
                write!(f, "scheduled block is not a permutation of the original")
            }
            ValidationError::ScheduleDependence { at } => {
                write!(f, "schedule violates a dependence at scheduled index {at}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

fn reserved(p: PReg) -> bool {
    match p {
        PReg::G(g) => matches!(g.index(), 0 | 1 | 2 | 11 | 12 | 13),
        PReg::F(fp) => matches!(fp.index(), 0 | 12 | 13),
    }
}

fn callee_saved(p: PReg) -> bool {
    match p {
        PReg::G(g) => !g.is_volatile(),
        PReg::F(fp) => !fp.is_volatile(),
    }
}

/// Checks a register allocation against the (post-spill) RTL function.
///
/// # Errors
///
/// The first [`ValidationError`] found.
pub fn check_allocation(f: &Func, alloc: &Allocation) -> Result<(), ValidationError> {
    let live = liveness::analyze(f);

    // Totality, class and reservation checks.
    let mut occurring: BTreeSet<Vreg> = f.params.iter().copied().collect();
    for b in f.rpo() {
        let block = f.block(b);
        for inst in &block.insts {
            occurring.extend(inst.uses());
            occurring.extend(inst.def());
        }
        occurring.extend(block.term.uses());
    }
    for &v in &occurring {
        match alloc.map.get(&v) {
            None => {
                return Err(ValidationError::AllocMissing {
                    func: f.name.clone(),
                    vreg: v,
                })
            }
            Some(&p) => {
                if p.class() != f.class_of(v) {
                    return Err(ValidationError::AllocMissing {
                        func: f.name.clone(),
                        vreg: v,
                    });
                }
                if reserved(p) {
                    return Err(ValidationError::AllocReserved {
                        func: f.name.clone(),
                        preg: p.to_string(),
                    });
                }
            }
        }
    }

    let conflict = |d: Vreg, x: Vreg| ValidationError::AllocConflict {
        func: f.name.clone(),
        a: d,
        b: x,
        preg: alloc.preg(d).to_string(),
    };

    // Entry: parameters are defined simultaneously; they must be mutually
    // disjoint and disjoint from anything live at entry.
    for (i, &a) in f.params.iter().enumerate() {
        for &b in f.params.iter().skip(i + 1) {
            if alloc.preg(a) == alloc.preg(b) {
                return Err(conflict(a, b));
            }
        }
        for &x in &live.live_in[f.entry.0 as usize] {
            if x != a && alloc.preg(a) == alloc.preg(x) {
                return Err(conflict(a, x));
            }
        }
    }

    // Per-definition-point disjointness.
    for b in f.rpo() {
        let block = f.block(b);
        let mut live_now: BTreeSet<Vreg> = live.live_out[b.0 as usize].clone();
        live_now.extend(block.term.uses());
        for inst in block.insts.iter().rev() {
            if matches!(inst, Inst::Call { .. }) {
                let def = inst.def();
                for &v in &live_now {
                    if Some(v) != def && !callee_saved(alloc.preg(v)) {
                        return Err(ValidationError::AllocCallClobber {
                            func: f.name.clone(),
                            vreg: v,
                        });
                    }
                }
            }
            if let Some(d) = inst.def() {
                let move_src = match inst {
                    Inst::MovI { src, .. } | Inst::MovF { src, .. } => Some(*src),
                    _ => None,
                };
                for &x in &live_now {
                    if x != d && Some(x) != move_src && alloc.preg(d) == alloc.preg(x) {
                        return Err(conflict(d, x));
                    }
                }
                live_now.remove(&d);
            }
            live_now.extend(inst.uses());
        }
    }
    Ok(())
}

/// Checks that `after` is `before` with only terminator retargeting through
/// empty-goto chains (and equal-arm folding).
///
/// # Errors
///
/// The first [`ValidationError`] found.
pub fn check_tunnel(before: &Func, after: &Func) -> Result<(), ValidationError> {
    if before.blocks.len() != after.blocks.len() {
        return Err(ValidationError::TunnelChangedCode {
            func: before.name.clone(),
        });
    }
    // Chain membership: the set of blocks reachable from `s` through empty
    // gotos of `before`.
    let chain = |mut s: crate::rtl::BlockId| -> BTreeSet<crate::rtl::BlockId> {
        let mut seen = BTreeSet::new();
        seen.insert(s);
        loop {
            let blk = before.block(s);
            match blk.term {
                Term::Goto(n) if blk.insts.is_empty() && !seen.contains(&n) => {
                    seen.insert(n);
                    s = n;
                }
                _ => return seen,
            }
        }
    };

    // Instruction equality must be bitwise on floating constants: folded
    // NaNs are legitimate and `NaN != NaN` under derived equality.
    fn rtl_inst_eq(a: &Inst, b: &Inst) -> bool {
        match (a, b) {
            (Inst::ImmF { dst: d1, value: v1 }, Inst::ImmF { dst: d2, value: v2 }) => {
                d1 == d2 && v1.to_bits() == v2.to_bits()
            }
            _ => a == b,
        }
    }
    for (i, (bb, ab)) in before.blocks.iter().zip(&after.blocks).enumerate() {
        if bb.insts.len() != ab.insts.len()
            || !bb
                .insts
                .iter()
                .zip(&ab.insts)
                .all(|(x, y)| rtl_inst_eq(x, y))
        {
            return Err(ValidationError::TunnelChangedCode {
                func: before.name.clone(),
            });
        }
        let _ = i;
        let ok = match (&bb.term, &ab.term) {
            (Term::Goto(s), Term::Goto(t)) => chain(*s).contains(t),
            (Term::Ret(a), Term::Ret(b)) => a == b,
            (
                Term::BrI {
                    cmp: c1,
                    a: a1,
                    b: b1,
                    then_: t1,
                    else_: e1,
                },
                Term::BrI {
                    cmp: c2,
                    a: a2,
                    b: b2,
                    then_: t2,
                    else_: e2,
                },
            ) => {
                c1 == c2
                    && a1 == a2
                    && b1 == b2
                    && chain(*t1).contains(t2)
                    && chain(*e1).contains(e2)
            }
            (
                Term::BrIImm {
                    cmp: c1,
                    a: a1,
                    imm: i1,
                    then_: t1,
                    else_: e1,
                },
                Term::BrIImm {
                    cmp: c2,
                    a: a2,
                    imm: i2,
                    then_: t2,
                    else_: e2,
                },
            ) => {
                c1 == c2
                    && a1 == a2
                    && i1 == i2
                    && chain(*t1).contains(t2)
                    && chain(*e1).contains(e2)
            }
            (
                Term::BrF {
                    cmp: c1,
                    a: a1,
                    b: b1,
                    then_: t1,
                    else_: e1,
                },
                Term::BrF {
                    cmp: c2,
                    a: a2,
                    b: b2,
                    then_: t2,
                    else_: e2,
                },
            ) => {
                c1 == c2
                    && a1 == a2
                    && b1 == b2
                    && chain(*t1).contains(t2)
                    && chain(*e1).contains(e2)
            }
            // Equal-arm folding: a conditional may become a goto when both
            // chains meet the target.
            (Term::BrI { then_, else_, .. }, Term::Goto(t))
            | (Term::BrIImm { then_, else_, .. }, Term::Goto(t))
            | (Term::BrF { then_, else_, .. }, Term::Goto(t)) => {
                chain(*then_).contains(t) && chain(*else_).contains(t)
            }
            _ => false,
        };
        if !ok {
            return Err(ValidationError::TunnelBadEdge {
                func: before.name.clone(),
            });
        }
    }
    Ok(())
}

/// Dependence test between two machine instructions at original positions
/// `i < j`.
/// Dependence test used by both the scheduler and its validator.
pub(crate) fn depends(a: &MInst, b: &MInst) -> bool {
    let barrier = |i: &MInst| matches!(i, MInst::Bl { .. } | MInst::Annot { .. });
    if barrier(a) || barrier(b) {
        return true;
    }
    let defs_a: BTreeSet<Reg> = a.defs().into_iter().collect();
    let uses_a: BTreeSet<Reg> = a.uses().into_iter().collect();
    let defs_b: BTreeSet<Reg> = b.defs().into_iter().collect();
    let uses_b: BTreeSet<Reg> = b.uses().into_iter().collect();
    // RAW / WAR / WAW
    if defs_a.intersection(&uses_b).next().is_some()
        || uses_a.intersection(&defs_b).next().is_some()
        || defs_a.intersection(&defs_b).next().is_some()
    {
        return true;
    }
    // memory ordering: conservative — loads commute, everything else doesn't
    match (a.mem_access(), b.mem_access()) {
        (Some(ma), Some(mb)) => !(ma.is_load() && mb.is_load()),
        _ => false,
    }
}

/// Checks that `scheduled` is a dependence-preserving permutation of
/// `original` (both are straight-line instruction sequences of one block).
///
/// # Errors
///
/// The first [`ValidationError`] found; the validator may conservatively
/// reject exotic-but-legal schedules, never accept an illegal one.
pub fn check_schedule(original: &[MInst], scheduled: &[MInst]) -> Result<(), ValidationError> {
    if original.len() != scheduled.len() {
        return Err(ValidationError::ScheduleNotPermutation);
    }
    let mut matched = vec![false; original.len()];
    let mut placed: Vec<usize> = Vec::with_capacity(original.len());
    for (si, s) in scheduled.iter().enumerate() {
        // earliest unmatched original occurrence of this instruction
        let oi = original
            .iter()
            .enumerate()
            .position(|(k, o)| !matched[k] && o == s)
            .ok_or(ValidationError::ScheduleNotPermutation)?;
        // all original predecessors with a dependence must already be placed
        for k in 0..oi {
            if !matched[k] && depends(&original[k], &original[oi]) {
                return Err(ValidationError::ScheduleDependence { at: si });
            }
        }
        matched[oi] = true;
        placed.push(oi);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::{allocate, Palette};
    use crate::rtl::{Block, BlockId, IBin, RegClass};
    use vericomp_arch::reg::{Fpr, Gpr};

    fn two_live_func() -> Func {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            ret: Some(RegClass::I),
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        };
        let a = f.new_vreg(RegClass::I);
        let b = f.new_vreg(RegClass::I);
        let c = f.new_vreg(RegClass::I);
        let blk = f.new_block();
        f.entry = blk;
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmI { dst: a, value: 1 },
                Inst::ImmI { dst: b, value: 2 },
                Inst::BinI {
                    op: IBin::Add,
                    dst: c,
                    a,
                    b,
                },
            ],
            term: Term::Ret(Some(c)),
        };
        f
    }

    #[test]
    fn accepts_genuine_allocation() {
        let mut f = two_live_func();
        let alloc = allocate(&mut f, &Palette::full()).unwrap();
        check_allocation(&f, &alloc).unwrap();
    }

    #[test]
    fn rejects_corrupted_allocation() {
        let mut f = two_live_func();
        let mut alloc = allocate(&mut f, &Palette::full()).unwrap();
        // force a and b into the same register — they are simultaneously live
        let a = Vreg(0);
        let b = Vreg(1);
        let pa = alloc.preg(a);
        alloc.map.insert(b, pa);
        assert!(matches!(
            check_allocation(&f, &alloc),
            Err(ValidationError::AllocConflict { .. })
        ));
    }

    #[test]
    fn rejects_reserved_register() {
        let mut f = two_live_func();
        let mut alloc = allocate(&mut f, &Palette::full()).unwrap();
        alloc.map.insert(Vreg(0), PReg::G(Gpr::SP));
        assert!(matches!(
            check_allocation(&f, &alloc),
            Err(ValidationError::AllocReserved { .. })
        ));
    }

    #[test]
    fn rejects_missing_assignment() {
        let mut f = two_live_func();
        let mut alloc = allocate(&mut f, &Palette::full()).unwrap();
        alloc.map.remove(&Vreg(2));
        assert!(matches!(
            check_allocation(&f, &alloc),
            Err(ValidationError::AllocMissing { .. })
        ));
    }

    #[test]
    fn rejects_class_mismatch() {
        let mut f = two_live_func();
        let mut alloc = allocate(&mut f, &Palette::full()).unwrap();
        alloc.map.insert(Vreg(0), PReg::F(Fpr::new(5)));
        assert!(matches!(
            check_allocation(&f, &alloc),
            Err(ValidationError::AllocMissing { .. })
        ));
    }

    #[test]
    fn tunnel_validator_accepts_pass_output() {
        let mut before = Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            entry: BlockId(0),
        };
        let mut after = before.clone();
        crate::opt::tunnel::run(&mut after);
        check_tunnel(&before, &after).unwrap();
        // a bogus retarget is rejected
        before.blocks[1].term = Term::Ret(None); // chain broken
        assert!(check_tunnel(&before, &after).is_err());
    }

    #[test]
    fn schedule_validator() {
        use vericomp_arch::inst::Inst as M;
        let g = Gpr::new;
        let orig = vec![
            M::Lwz {
                rd: g(3),
                d: 0,
                ra: g(13),
            },
            M::Addi {
                rd: g(4),
                ra: g(3),
                imm: 1,
            }, // RAW on r3
            M::Lwz {
                rd: g(5),
                d: 4,
                ra: g(13),
            },
        ];
        // legal: hoist the independent load
        let legal = vec![orig[0], orig[2], orig[1]];
        check_schedule(&orig, &legal).unwrap();
        // illegal: use before def
        let illegal = vec![orig[1], orig[0], orig[2]];
        assert!(matches!(
            check_schedule(&orig, &illegal),
            Err(ValidationError::ScheduleDependence { .. })
        ));
        // not a permutation
        let wrong = vec![orig[0], orig[0], orig[2]];
        assert!(matches!(
            check_schedule(&orig, &wrong),
            Err(ValidationError::ScheduleNotPermutation)
        ));
        // stores don't move past loads of possibly-same memory
        let st = M::Stw {
            rs: g(6),
            d: 0,
            ra: g(13),
        };
        let orig2 = vec![orig[0], st];
        assert!(check_schedule(&orig2, &[st, orig[0]]).is_err());
    }
}
