//! Layout and linking: machine functions → an executable [`Program`].
//!
//! Two passes: the first fixes block sizes and addresses (fall-through
//! elision decisions depend only on block order, which is fixed), the second
//! materializes branch and call targets and the data section.
//!
//! Floating-point branch layout note: a conditional arm is *never* emitted by
//! negating a float condition — `!(a < b)` is not `a ≥ b` under IEEE
//! unordered results — so float conditionals always branch on the original
//! condition and fall through (or jump) to the `else` arm.

use std::collections::BTreeMap;

use vericomp_arch::inst::Inst as M;
use vericomp_arch::program::{AnnotationEntry, DataValue, FuncSym, GlobalSym, Program};
use vericomp_arch::reg::Cr;
use vericomp_arch::MachineConfig;
use vericomp_minic::ast::{GlobalDef, Program as SrcProgram};

use crate::emit::{AsmFunc, AsmTerm};
use crate::layout::{ConstPool, Layout};
use crate::rtl::BlockId;
use crate::CompileError;

fn term_size(term: &AsmTerm, next: Option<BlockId>) -> u32 {
    match term {
        AsmTerm::Goto(t) => u32::from(Some(*t) != next),
        AsmTerm::Cond { else_, .. } => 1 + u32::from(Some(*else_) != next),
        AsmTerm::Ret => 1,
    }
}

/// Links machine functions into an executable program.
///
/// # Errors
///
/// [`CompileError::Link`] on unknown callees or a missing entry function.
pub fn link(
    cfg: &MachineConfig,
    funcs: &[AsmFunc],
    layout: &Layout,
    pool: &ConstPool,
    annotations: Vec<AnnotationEntry>,
    src: &SrcProgram,
    entry: &str,
) -> Result<Program, CompileError> {
    // ---- pass 1: addresses ----
    let mut cursor = cfg.text_base;
    let mut fn_entry: BTreeMap<&str, u32> = BTreeMap::new();
    let mut fn_len: BTreeMap<&str, u32> = BTreeMap::new();
    // block addresses per function
    let mut block_addr: Vec<BTreeMap<BlockId, u32>> = Vec::with_capacity(funcs.len());
    for f in funcs {
        let start = cursor;
        fn_entry.insert(&f.name, start);
        let mut addrs = BTreeMap::new();
        for (i, b) in f.blocks.iter().enumerate() {
            addrs.insert(b.id, cursor);
            let next = f.blocks.get(i + 1).map(|nb| nb.id);
            cursor += 4 * (b.insts.len() as u32 + term_size(&b.term, next));
        }
        fn_len.insert(&f.name, (cursor - start) / 4);
        block_addr.push(addrs);
    }

    // ---- pass 2: code ----
    let mut code: Vec<M> = Vec::with_capacity(((cursor - cfg.text_base) / 4) as usize);
    for (fi, f) in funcs.iter().enumerate() {
        let addrs = &block_addr[fi];
        for (i, b) in f.blocks.iter().enumerate() {
            let next = f.blocks.get(i + 1).map(|nb| nb.id);
            let mut insts = b.insts.clone();
            for &(idx, ref callee) in &b.calls {
                let target = *fn_entry.get(callee.as_str()).ok_or_else(|| {
                    CompileError::Link(format!("call to unknown function `{callee}`"))
                })?;
                match &mut insts[idx] {
                    M::Bl { target: t } => *t = target,
                    other => {
                        return Err(CompileError::Link(format!(
                            "call record points at non-call instruction {other}"
                        )));
                    }
                }
            }
            code.extend(insts);
            match &b.term {
                AsmTerm::Goto(t) => {
                    if Some(*t) != next {
                        code.push(M::B { target: addrs[t] });
                    }
                }
                AsmTerm::Cond {
                    cond,
                    then_,
                    else_,
                    float: _,
                } => {
                    code.push(M::Bc {
                        cond: *cond,
                        cr: Cr::CR0,
                        target: addrs[then_],
                    });
                    if Some(*else_) != next {
                        code.push(M::B {
                            target: addrs[else_],
                        });
                    }
                }
                AsmTerm::Ret => code.push(M::Blr),
            }
        }
    }
    debug_assert_eq!(cfg.text_base + 4 * code.len() as u32, cursor);

    // ---- data section ----
    let mut data = BTreeMap::new();
    for g in &src.globals {
        let info = layout.global(&g.name);
        match &g.def {
            GlobalDef::ScalarI32(Some(v)) => {
                data.insert(info.addr, DataValue::I32(*v));
            }
            GlobalDef::ScalarBool(Some(v)) => {
                data.insert(info.addr, DataValue::I32(i32::from(*v)));
            }
            GlobalDef::ScalarF64(Some(v)) => {
                data.insert(info.addr, DataValue::F64(*v));
            }
            GlobalDef::ArrayI32(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    data.insert(info.addr + 4 * i as u32, DataValue::I32(*v));
                }
            }
            GlobalDef::ArrayF64(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    data.insert(info.addr + 8 * i as u32, DataValue::F64(*v));
                }
            }
            _ => {}
        }
    }
    for (off, v) in pool.entries() {
        data.insert(layout.pool_base + off, DataValue::F64(v));
    }

    let globals = layout
        .globals
        .iter()
        .map(|(name, info)| GlobalSym {
            name: name.clone(),
            addr: info.addr,
            elem: info.elem,
            len: info.len,
        })
        .collect();

    let functions = funcs
        .iter()
        .map(|f| FuncSym {
            name: f.name.clone(),
            entry: fn_entry[f.name.as_str()],
            len_words: fn_len[f.name.as_str()],
        })
        .collect();

    let entry_addr = *fn_entry
        .get(entry)
        .ok_or_else(|| CompileError::Link(format!("entry function `{entry}` not found")))?;

    Ok(Program {
        config: cfg.clone(),
        code,
        entry: entry_addr,
        functions,
        globals,
        data,
        const_pool_base: layout.pool_base,
        sda_base: layout.sda_base,
        annotations,
    })
}
