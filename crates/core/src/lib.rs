//! The paper's primary contribution: an optimizing compiler from MiniC to
//! the PowerPC-subset target, structured like CompCert and driven in the
//! four configurations the paper compares (§3.3, Figure 2):
//!
//! | configuration | models | passes |
//! |---|---|---|
//! | [`OptLevel::PatternO0`] | the incumbent non-optimizing COTS compiler: fixed per-symbol code patterns, manual (scratch-pool) register allocation, every variable on the stack | lowering only |
//! | [`OptLevel::OptNoRegalloc`] | the COTS compiler "optimized without register allocation optimizations" | const-prop, CSE, DCE, tunneling — variables stay in memory |
//! | [`OptLevel::Verified`] | **CompCert**: the formally verified optimizing compiler | mem2reg + const-prop + CSE + DCE + tunneling + graph-coloring allocation, each structure-changing step re-checked by a translation validator |
//! | [`OptLevel::OptFull`] | the COTS compiler fully optimized | everything above + strength reduction, `fmadd` fusion, list scheduling, small-data-area addressing |
//!
//! # Example
//!
//! ```
//! use vericomp_core::{Compiler, OptLevel};
//! use vericomp_minic::ast::*;
//!
//! // void step(void) { out = in1 + in2; }   (globals)
//! let gf = |name: &str| Global { name: name.into(), def: GlobalDef::ScalarF64(None) };
//! let prog = Program {
//!     globals: vec![gf("in1"), gf("in2"), gf("out")],
//!     functions: vec![Function {
//!         name: "step".into(),
//!         params: vec![],
//!         ret: None,
//!         locals: vec![],
//!         body: vec![Stmt::Assign(
//!             "out".into(),
//!             Expr::binop(Binop::AddF, Expr::var("in1"), Expr::var("in2")),
//!         )],
//!     }],
//! };
//! let binary = Compiler::new(OptLevel::Verified).compile(&prog, "step")?;
//! assert!(binary.function("step").is_some());
//! # Ok::<(), vericomp_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod emit;
pub mod layout;
pub mod link;
pub mod liveness;
pub mod lower;
pub mod opt;
pub mod regalloc;
pub mod rtl;
pub mod sched;
pub mod validate;

use std::fmt;
use std::time::{Duration, Instant};

use vericomp_arch::{MachineConfig, Program};
use vericomp_minic::ast::Program as SrcProgram;
use vericomp_minic::typeck::{self, TypeError};

pub use validate::ValidationError;

/// Canonical names of the observable compiler passes, in execution order.
/// These are the names a [`PassObserver`] receives and the per-pass rows
/// of the pipeline's trace profile. The `check-*` entries are the
/// translation validators (and the always-on allocation checker) — the
/// pipeline derives its `validate` stage row from them.
pub const PASS_NAMES: [&str; 14] = [
    "lower",
    "mem2reg",
    "constprop",
    "cse",
    "strength",
    "dce",
    "tunnel",
    "check-tunnel",
    "regalloc",
    "check-alloc",
    "emit",
    "sched",
    "check-sched",
    "link",
];

/// Observes individual compiler passes as they run — the hook the
/// pipeline's span tracer attaches to. `start` is the offset from the
/// beginning of the `compile_with_passes_observed` call, `took` the pass
/// duration; both are wall-clock and carry no determinism guarantee (the
/// *sequence of names* per input is deterministic, the times are not).
pub trait PassObserver {
    /// Called once per executed pass, in execution order. `name` is one
    /// of [`PASS_NAMES`]; per-function passes report once per function
    /// (and `check-sched` once per scheduled block).
    fn pass(&mut self, name: &'static str, start: Duration, took: Duration);
}

/// The do-nothing observer behind the plain
/// [`Compiler::compile_with_passes`] entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl PassObserver for NoopObserver {
    fn pass(&mut self, _name: &'static str, _start: Duration, _took: Duration) {}
}

/// Runs `f` and reports it to `obs` under `name`.
fn observed<T>(
    obs: &mut dyn PassObserver,
    t0: Instant,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let start = t0.elapsed();
    let out = f();
    obs.pass(name, start, t0.elapsed().saturating_sub(start));
    out
}

/// The four compiler configurations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// Non-optimizing pattern compiler (the certification baseline).
    PatternO0,
    /// Optimizations enabled but no register-allocation improvements.
    OptNoRegalloc,
    /// The CompCert-like verified optimizing compiler.
    Verified,
    /// The fully optimizing reference compiler.
    OptFull,
}

impl OptLevel {
    /// All four configurations, in the paper's comparison order.
    pub fn all() -> [OptLevel; 4] {
        [
            OptLevel::PatternO0,
            OptLevel::OptNoRegalloc,
            OptLevel::Verified,
            OptLevel::OptFull,
        ]
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::PatternO0 => "pattern-O0",
            OptLevel::OptNoRegalloc => "opt-no-regalloc",
            OptLevel::Verified => "verified",
            OptLevel::OptFull => "opt-full",
        };
        f.write_str(s)
    }
}

/// Fine-grained pass selection, for ablation studies. The four standard
/// [`OptLevel`]s are presets over this structure
/// ([`PassConfig::for_level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Promote stack slots to virtual registers (the decisive pass).
    pub mem2reg: bool,
    /// Local constant/copy propagation and folding.
    pub constprop: bool,
    /// Local common-subexpression elimination.
    pub cse: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Branch tunneling (validated when `validators` is set).
    pub tunnel: bool,
    /// Strength reduction and `fmadd` fusion (full optimizer only).
    pub strength: bool,
    /// Post-emission list scheduling (validated when `validators` is set).
    pub schedule: bool,
    /// Small-data-area global addressing through `r13`.
    pub sda: bool,
    /// Use the full register palette (otherwise the scratch pool of the
    /// pattern compiler).
    pub full_palette: bool,
    /// Run the translation validators on tunneling and scheduling (the
    /// allocation checker always runs — it is the backend's safety net).
    pub validators: bool,
}

impl PassConfig {
    /// The preset corresponding to a standard configuration.
    pub fn for_level(level: OptLevel) -> PassConfig {
        match level {
            OptLevel::PatternO0 => PassConfig {
                mem2reg: false,
                constprop: false,
                cse: false,
                dce: false,
                tunnel: false,
                strength: false,
                schedule: false,
                sda: false,
                full_palette: false,
                validators: false,
            },
            // No cross-statement CSE: without register-allocation
            // improvements there is nowhere to keep the reused values
            // (the paper's -0.5 % configuration).
            OptLevel::OptNoRegalloc => PassConfig {
                mem2reg: false,
                constprop: true,
                cse: false,
                dce: true,
                tunnel: true,
                strength: false,
                schedule: false,
                sda: false,
                full_palette: false,
                validators: false,
            },
            OptLevel::Verified => PassConfig {
                mem2reg: true,
                constprop: true,
                cse: true,
                dce: true,
                tunnel: true,
                strength: false,
                schedule: false,
                sda: false,
                full_palette: true,
                validators: true,
            },
            OptLevel::OptFull => PassConfig {
                mem2reg: true,
                constprop: true,
                cse: true,
                dce: true,
                tunnel: true,
                strength: true,
                schedule: true,
                sda: true,
                full_palette: true,
                validators: true,
            },
        }
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The source program does not typecheck.
    Type(TypeError),
    /// Register allocation failed to converge.
    RegAlloc(String),
    /// A translation validator rejected a pass result (compilation fails
    /// closed — the CompCert-style guarantee).
    Validation(ValidationError),
    /// A backend limitation was hit during emission.
    Emit(String),
    /// Linking failed (unknown callee / entry).
    Link(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "type error: {e}"),
            CompileError::RegAlloc(m) => write!(f, "register allocation: {m}"),
            CompileError::Validation(e) => write!(f, "translation validation failed: {e}"),
            CompileError::Emit(m) => write!(f, "emission: {m}"),
            CompileError::Link(m) => write!(f, "link: {m}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Type(e) => Some(e),
            CompileError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl From<ValidationError> for CompileError {
    fn from(e: ValidationError) -> Self {
        CompileError::Validation(e)
    }
}

/// The compiler driver.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Configuration (pass list) to compile with.
    pub level: OptLevel,
    /// Target machine configuration.
    pub config: MachineConfig,
}

impl Compiler {
    /// A compiler for the given level targeting the default MPC755 model.
    pub fn new(level: OptLevel) -> Self {
        Compiler {
            level,
            config: MachineConfig::mpc755(),
        }
    }

    /// A compiler with an explicit machine configuration.
    pub fn with_config(level: OptLevel, config: MachineConfig) -> Self {
        Compiler { level, config }
    }

    /// Compiles a MiniC program into a linked executable whose entry point is
    /// the function named `entry`.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]; in the `Verified` and `OptFull` configurations a
    /// translation-validator rejection aborts compilation.
    pub fn compile(&self, prog: &SrcProgram, entry: &str) -> Result<Program, CompileError> {
        self.compile_with_passes(prog, entry, &PassConfig::for_level(self.level))
    }

    /// Compiles with an explicit pass selection (ablation studies).
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]; with `passes.validators` set, a
    /// translation-validator rejection aborts compilation.
    pub fn compile_with_passes(
        &self,
        prog: &SrcProgram,
        entry: &str,
        passes: &PassConfig,
    ) -> Result<Program, CompileError> {
        self.compile_with_passes_observed(prog, entry, passes, &mut NoopObserver)
    }

    /// [`compile_with_passes`](Compiler::compile_with_passes) with a
    /// [`PassObserver`] reporting every executed pass — the entry point
    /// the pipeline's span tracer uses for nested per-pass spans.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]; passes that ran before the failure are still
    /// reported to the observer.
    pub fn compile_with_passes_observed(
        &self,
        prog: &SrcProgram,
        entry: &str,
        passes: &PassConfig,
        obs: &mut dyn PassObserver,
    ) -> Result<Program, CompileError> {
        let t0 = Instant::now();
        typeck::check(prog)?;
        let layout = layout::layout_globals(prog, &self.config);
        let mut pool = layout::ConstPool::new();
        let mut annots = Vec::new();
        let mut funcs = Vec::with_capacity(prog.functions.len());

        for func in &prog.functions {
            let mut rtl = observed(obs, t0, "lower", || lower::lower_function(prog, func))?;

            if passes.mem2reg {
                observed(obs, t0, "mem2reg", || opt::mem2reg::run(&mut rtl));
            }
            if passes.constprop {
                observed(obs, t0, "constprop", || opt::constprop::run(&mut rtl));
            }
            if passes.cse {
                // the cleanup constprop rerun is part of the CSE span
                observed(obs, t0, "cse", || {
                    opt::cse::run(&mut rtl);
                    opt::constprop::run(&mut rtl);
                });
            }
            if passes.strength {
                observed(obs, t0, "strength", || {
                    opt::strength::reduce(&mut rtl);
                    opt::strength::fuse_fmadd(&mut rtl);
                    opt::constprop::run(&mut rtl);
                });
            }
            if passes.dce {
                observed(obs, t0, "dce", || opt::dce::run(&mut rtl));
            }
            if passes.tunnel {
                let pre_tunnel = passes.validators.then(|| rtl.clone());
                observed(obs, t0, "tunnel", || opt::tunnel::run(&mut rtl));
                if let Some(pre) = pre_tunnel {
                    observed(obs, t0, "check-tunnel", || {
                        validate::check_tunnel(&pre, &rtl)
                    })?;
                }
            }

            let alloc = observed(obs, t0, "regalloc", || {
                let palette = if passes.full_palette {
                    regalloc::Palette::full()
                } else {
                    regalloc::Palette::scratch_only()
                };
                regalloc::allocate(&mut rtl, &palette)
            })?;
            // The allocation checker runs for every configuration: it is the
            // safety net of the whole backend, not an optimization.
            observed(obs, t0, "check-alloc", || {
                validate::check_allocation(&rtl, &alloc)
            })?;

            let opts = emit::EmitOptions { sda: passes.sda };
            let mut af = observed(obs, t0, "emit", || {
                emit::emit_function(
                    &rtl,
                    &alloc,
                    &layout,
                    &mut pool,
                    &mut annots,
                    &self.config,
                    opts,
                )
            })?;

            if passes.schedule {
                // one `sched` span per function; the per-block validator
                // checks report as nested `check-sched` spans inside it
                let sched_start = t0.elapsed();
                for block in &mut af.blocks {
                    let scheduled = sched::schedule_block(&block.insts, &self.config);
                    if passes.validators {
                        observed(obs, t0, "check-sched", || {
                            validate::check_schedule(&block.insts, &scheduled)
                        })?;
                    }
                    block.insts = scheduled;
                    // Barrier semantics keep call placeholders at their
                    // original indices; double-check before linking.
                    for &(idx, _) in &block.calls {
                        debug_assert!(matches!(
                            block.insts[idx],
                            vericomp_arch::inst::Inst::Bl { .. }
                        ));
                    }
                }
                obs.pass(
                    "sched",
                    sched_start,
                    t0.elapsed().saturating_sub(sched_start),
                );
            }
            funcs.push(af);
        }

        observed(obs, t0, "link", || {
            link::link(&self.config, &funcs, &layout, &pool, annots, prog, entry)
        })
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use vericomp_minic::ast::{Binop, Expr, Function, Global, GlobalDef, Program, Stmt};

    fn tiny_prog() -> Program {
        let gf = |name: &str| Global {
            name: name.into(),
            def: GlobalDef::ScalarF64(None),
        };
        Program {
            globals: vec![gf("in1"), gf("in2"), gf("out")],
            functions: vec![Function {
                name: "step".into(),
                params: vec![],
                ret: None,
                locals: vec![],
                body: vec![Stmt::Assign(
                    "out".into(),
                    Expr::binop(Binop::AddF, Expr::var("in1"), Expr::var("in2")),
                )],
            }],
        }
    }

    struct Names(Vec<&'static str>);
    impl PassObserver for Names {
        fn pass(&mut self, name: &'static str, _start: Duration, _took: Duration) {
            self.0.push(name);
        }
    }

    #[test]
    fn observer_sees_every_enabled_pass_and_output_is_unchanged() {
        let prog = tiny_prog();
        let passes = PassConfig::for_level(OptLevel::OptFull);
        let compiler = Compiler::new(OptLevel::OptFull);
        let mut names = Names(Vec::new());
        let observed = compiler
            .compile_with_passes_observed(&prog, "step", &passes, &mut names)
            .expect("compiles");
        let plain = compiler
            .compile_with_passes(&prog, "step", &passes)
            .expect("compiles");
        assert_eq!(observed.encode_text(), plain.encode_text());
        for name in &names.0 {
            assert!(PASS_NAMES.contains(name), "unknown pass name `{name}`");
        }
        for expected in [
            "lower",
            "mem2reg",
            "constprop",
            "cse",
            "strength",
            "dce",
            "tunnel",
            "check-tunnel",
            "regalloc",
            "check-alloc",
            "emit",
            "check-sched",
            "sched",
            "link",
        ] {
            assert!(
                names.0.contains(&expected),
                "opt-full never reported `{expected}`: {:?}",
                names.0
            );
        }
        // the pattern compiler runs no optional passes
        let mut o0 = Names(Vec::new());
        compiler
            .compile_with_passes_observed(
                &prog,
                "step",
                &PassConfig::for_level(OptLevel::PatternO0),
                &mut o0,
            )
            .expect("compiles");
        assert_eq!(
            o0.0,
            vec!["lower", "regalloc", "check-alloc", "emit", "link"]
        );
    }
}
