//! Lowering from MiniC to RTL.
//!
//! The lowering is deliberately naive — it produces exactly the `-O0`
//! pattern style of the paper's incumbent process (Listing 1): every source
//! variable lives in a stack slot, every operand is loaded before use and
//! every result stored back. Booleans are materialized as 0/1 integers
//! through compare-branch diamonds (the PowerPC has no cheap set-on-compare).
//!
//! All later improvement is the business of the optimization passes; this
//! keeps the four compiler configurations differing only in their pass
//! lists.

use std::collections::BTreeMap;

use vericomp_minic::ast::{Binop, Expr, Function, Program, Stmt, Unop};

use crate::rtl::{Addr, AnnotArg, BlockId, Func, IBin, IUnop, Inst, RegClass, SlotId, Term, Vreg};
use crate::CompileError;

/// Where a scalar name lives.
#[derive(Clone)]
enum Place {
    Slot(SlotId, RegClass),
    Global(String, RegClass),
}

struct Lowerer<'p> {
    prog: &'p Program,
    func: Func,
    places: BTreeMap<String, Place>,
    cur: BlockId,
}

/// Lowers one function.
///
/// # Errors
///
/// Returns [`CompileError`] for constructs the backend cannot express (none
/// today for typechecked programs; the error type keeps the interface
/// honest).
pub fn lower_function(prog: &Program, f: &Function) -> Result<Func, CompileError> {
    let mut func = Func {
        name: f.name.clone(),
        params: Vec::new(),
        ret: f.ret.map(RegClass::of_ty),
        vregs: Vec::new(),
        slots: Vec::new(),
        blocks: Vec::new(),
        entry: BlockId(0),
    };
    let entry = func.new_block();
    func.entry = entry;

    let mut places = BTreeMap::new();
    // Parameters: value arrives in a register, is stored to its slot.
    let mut param_stores = Vec::new();
    for (name, ty) in &f.params {
        let class = RegClass::of_ty(*ty);
        let v = func.new_vreg(class);
        func.params.push(v);
        let slot = func.new_slot(class, "param");
        places.insert(name.clone(), Place::Slot(slot, class));
        param_stores.push(Inst::Store {
            src: v,
            addr: Addr::Stack(slot),
        });
    }
    func.block_mut(entry).insts = param_stores;
    // MiniC locals are zero-initialized, but materializing the
    // initialization is only necessary when a local can be read before its
    // first definite (top-level) assignment — the pattern code generator
    // assigns every wire temporary before use, so almost no store is
    // emitted here (the incumbent compiler does not zero-initialize
    // either).
    let needs_init = locals_read_before_assignment(f);
    for (name, ty) in &f.locals {
        let class = RegClass::of_ty(*ty);
        let slot = func.new_slot(class, "local");
        places.insert(name.clone(), Place::Slot(slot, class));
        if needs_init.contains(name.as_str()) {
            let zero = func.new_vreg(class);
            let init = match class {
                RegClass::I => Inst::ImmI {
                    dst: zero,
                    value: 0,
                },
                RegClass::F => Inst::ImmF {
                    dst: zero,
                    value: 0.0,
                },
            };
            func.block_mut(entry).insts.push(init);
            func.block_mut(entry).insts.push(Inst::Store {
                src: zero,
                addr: Addr::Stack(slot),
            });
        }
    }

    let mut lw = Lowerer {
        prog,
        func,
        places,
        cur: entry,
    };
    let done = lw.stmts(&f.body)?;
    if done {
        // fell off the end of a void function
        lw.func.block_mut(lw.cur).term = Term::Ret(None);
    }
    Ok(lw.func)
}

/// Locals that may be read before a definite assignment (and therefore need
/// their zero initialization materialized). Conservative: only a *top-level*
/// assignment counts as definite; any read — including inside nested
/// statements and annotation arguments — before that point marks the local.
fn locals_read_before_assignment(f: &Function) -> std::collections::BTreeSet<&str> {
    fn reads<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        match e {
            Expr::Var(n) => out.push(n),
            Expr::Index(_, i) => reads(i, out),
            Expr::Unop(_, a) => reads(a, out),
            Expr::Binop(_, a, b) => {
                reads(a, out);
                reads(b, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    reads(a, out);
                }
            }
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::BoolLit(_) | Expr::IoRead(_) => {}
        }
    }
    fn stmt_reads<'a>(s: &'a Stmt, out: &mut Vec<&'a str>) {
        match s {
            Stmt::Assign(_, e) | Stmt::IoWrite(_, e) | Stmt::Return(Some(e)) => reads(e, out),
            Stmt::Return(None) => {}
            Stmt::StoreIndex(_, i, e) => {
                reads(i, out);
                reads(e, out);
            }
            Stmt::If(c, a, b) => {
                reads(c, out);
                for s in a.iter().chain(b) {
                    stmt_reads(s, out);
                }
            }
            Stmt::While(c, body) => {
                reads(c, out);
                for s in body {
                    stmt_reads(s, out);
                }
            }
            Stmt::Annot(_, args) | Stmt::CallStmt(_, args) => {
                for a in args {
                    reads(a, out);
                }
            }
        }
    }
    // nested assignments also count as reads of nothing, but they are not
    // definite; only track top-level assignment order
    let locals: std::collections::BTreeSet<&str> =
        f.locals.iter().map(|(n, _)| n.as_str()).collect();
    let mut assigned: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut need = std::collections::BTreeSet::new();
    for s in &f.body {
        let mut r = Vec::new();
        stmt_reads(s, &mut r);
        for n in r {
            if locals.contains(n) && !assigned.contains(n) {
                need.insert(n);
            }
        }
        if let Stmt::Assign(x, _) = s {
            if let Some(&name) = locals.get(x.as_str()) {
                assigned.insert(name);
            }
        }
    }
    need
}

impl<'p> Lowerer<'p> {
    fn emit(&mut self, inst: Inst) {
        self.func.block_mut(self.cur).insts.push(inst);
    }

    fn place(&self, name: &str) -> Place {
        if let Some(p) = self.places.get(name) {
            return p.clone();
        }
        let g = self
            .prog
            .global(name)
            .unwrap_or_else(|| unreachable!("typechecked var `{name}` must resolve"));
        Place::Global(name.to_owned(), RegClass::of_ty(g.def.elem_ty()))
    }

    fn place_addr(&self, p: &Place) -> Addr {
        match p {
            Place::Slot(s, _) => Addr::Stack(*s),
            Place::Global(n, _) => Addr::Global {
                name: n.clone(),
                offset: 0,
            },
        }
    }

    /// Lowers an expression to a virtual register holding its value.
    fn expr(&mut self, e: &Expr) -> Result<Vreg, CompileError> {
        match e {
            Expr::IntLit(v) => {
                let t = self.func.new_vreg(RegClass::I);
                self.emit(Inst::ImmI { dst: t, value: *v });
                Ok(t)
            }
            Expr::BoolLit(v) => {
                let t = self.func.new_vreg(RegClass::I);
                self.emit(Inst::ImmI {
                    dst: t,
                    value: i32::from(*v),
                });
                Ok(t)
            }
            Expr::FloatLit(v) => {
                let t = self.func.new_vreg(RegClass::F);
                self.emit(Inst::ImmF { dst: t, value: *v });
                Ok(t)
            }
            Expr::Var(name) => {
                let p = self.place(name);
                let class = match &p {
                    Place::Slot(_, c) | Place::Global(_, c) => *c,
                };
                let t = self.func.new_vreg(class);
                let addr = self.place_addr(&p);
                self.emit(Inst::Load { dst: t, addr });
                Ok(t)
            }
            Expr::Index(name, idx) => {
                let i = self.expr(idx)?;
                let g = self
                    .prog
                    .global(name)
                    .unwrap_or_else(|| unreachable!("typechecked array `{name}`"));
                let class = RegClass::of_ty(g.def.elem_ty());
                let scale = match class {
                    RegClass::I => 4,
                    RegClass::F => 8,
                };
                let t = self.func.new_vreg(class);
                self.emit(Inst::Load {
                    dst: t,
                    addr: Addr::GlobalIndex {
                        name: name.clone(),
                        index: i,
                        scale,
                    },
                });
                Ok(t)
            }
            Expr::IoRead(port) => {
                let t = self.func.new_vreg(RegClass::F);
                self.emit(Inst::Load {
                    dst: t,
                    addr: Addr::Io(*port),
                });
                Ok(t)
            }
            Expr::Unop(op, a) => {
                let va = self.expr(a)?;
                let (class, inst) = match op {
                    Unop::NegI => {
                        let t = self.func.new_vreg(RegClass::I);
                        (
                            t,
                            Inst::UnI {
                                op: IUnop::Neg,
                                dst: t,
                                a: va,
                            },
                        )
                    }
                    Unop::NotB => {
                        let t = self.func.new_vreg(RegClass::I);
                        (
                            t,
                            Inst::BinIImm {
                                op: IBin::Xor,
                                dst: t,
                                a: va,
                                imm: 1,
                            },
                        )
                    }
                    Unop::NegF => {
                        let t = self.func.new_vreg(RegClass::F);
                        (
                            t,
                            Inst::UnF {
                                op: crate::rtl::FUn::Neg,
                                dst: t,
                                a: va,
                            },
                        )
                    }
                    Unop::AbsF => {
                        let t = self.func.new_vreg(RegClass::F);
                        (
                            t,
                            Inst::UnF {
                                op: crate::rtl::FUn::Abs,
                                dst: t,
                                a: va,
                            },
                        )
                    }
                    Unop::I2F => {
                        let t = self.func.new_vreg(RegClass::F);
                        (t, Inst::Itof { dst: t, src: va })
                    }
                    Unop::F2I => {
                        let t = self.func.new_vreg(RegClass::I);
                        (t, Inst::Ftoi { dst: t, src: va })
                    }
                };
                self.emit(inst);
                Ok(class)
            }
            Expr::Binop(op, a, b) => self.binop(*op, a, b),
            Expr::Call(name, args) => {
                let argv = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let ret_ty = self
                    .prog
                    .function(name)
                    .and_then(|f| f.ret)
                    .unwrap_or_else(|| unreachable!("typechecked call `{name}`"));
                let t = self.func.new_vreg(RegClass::of_ty(ret_ty));
                self.emit(Inst::Call {
                    dst: Some(t),
                    callee: name.clone(),
                    args: argv,
                });
                Ok(t)
            }
        }
    }

    fn binop(&mut self, op: Binop, a: &Expr, b: &Expr) -> Result<Vreg, CompileError> {
        use crate::rtl::FBin;
        let ibin = |op| match op {
            Binop::AddI => Some(IBin::Add),
            Binop::SubI => Some(IBin::Sub),
            Binop::MulI => Some(IBin::Mul),
            Binop::DivI => Some(IBin::Div),
            Binop::AndB => Some(IBin::And),
            Binop::OrB => Some(IBin::Or),
            Binop::XorB => Some(IBin::Xor),
            _ => None,
        };
        let fbin = |op| match op {
            Binop::AddF => Some(FBin::Add),
            Binop::SubF => Some(FBin::Sub),
            Binop::MulF => Some(FBin::Mul),
            Binop::DivF => Some(FBin::Div),
            _ => None,
        };
        if let Some(iop) = ibin(op) {
            // Immediate-operand selection: even the pattern compiler uses
            // `addi`-style forms for small literal operands (and the WCET
            // analyzer's counted-loop witness relies on `addi` updates).
            let small = |e: &Expr| match e {
                Expr::IntLit(v) if i16::try_from(*v).is_ok() => Some(*v),
                _ => None,
            };
            match (iop, small(a), small(b)) {
                (IBin::Add, _, Some(imm)) => {
                    let va = self.expr(a)?;
                    let t = self.func.new_vreg(RegClass::I);
                    self.emit(Inst::BinIImm {
                        op: IBin::Add,
                        dst: t,
                        a: va,
                        imm,
                    });
                    return Ok(t);
                }
                (IBin::Add, Some(imm), _) => {
                    let vb = self.expr(b)?;
                    let t = self.func.new_vreg(RegClass::I);
                    self.emit(Inst::BinIImm {
                        op: IBin::Add,
                        dst: t,
                        a: vb,
                        imm,
                    });
                    return Ok(t);
                }
                (IBin::Sub, _, Some(imm)) if i16::try_from(-imm).is_ok() => {
                    let va = self.expr(a)?;
                    let t = self.func.new_vreg(RegClass::I);
                    self.emit(Inst::BinIImm {
                        op: IBin::Add,
                        dst: t,
                        a: va,
                        imm: -imm,
                    });
                    return Ok(t);
                }
                _ => {}
            }
            let va = self.expr(a)?;
            let vb = self.expr(b)?;
            let t = self.func.new_vreg(RegClass::I);
            self.emit(Inst::BinI {
                op: iop,
                dst: t,
                a: va,
                b: vb,
            });
            return Ok(t);
        }
        if let Some(fop) = fbin(op) {
            let va = self.expr(a)?;
            let vb = self.expr(b)?;
            let t = self.func.new_vreg(RegClass::F);
            self.emit(Inst::BinF {
                op: fop,
                dst: t,
                a: va,
                b: vb,
            });
            return Ok(t);
        }
        // Comparison: materialize 0/1 through a diamond.
        let va = self.expr(a)?;
        let vb = self.expr(b)?;
        let t = self.func.new_vreg(RegClass::I);
        let then_b = self.func.new_block();
        let else_b = self.func.new_block();
        let join = self.func.new_block();
        let term = match op {
            Binop::CmpI(c) => Term::BrI {
                cmp: c,
                a: va,
                b: vb,
                then_: then_b,
                else_: else_b,
            },
            Binop::CmpF(c) => Term::BrF {
                cmp: c,
                a: va,
                b: vb,
                then_: then_b,
                else_: else_b,
            },
            _ => unreachable!("all binops covered"),
        };
        self.func.block_mut(self.cur).term = term;
        self.func
            .block_mut(then_b)
            .insts
            .push(Inst::ImmI { dst: t, value: 1 });
        self.func.block_mut(then_b).term = Term::Goto(join);
        self.func
            .block_mut(else_b)
            .insts
            .push(Inst::ImmI { dst: t, value: 0 });
        self.func.block_mut(else_b).term = Term::Goto(join);
        self.cur = join;
        Ok(t)
    }

    /// Lowers a condition directly into a branch between two blocks.
    fn branch_on(
        &mut self,
        cond: &Expr,
        then_b: BlockId,
        else_b: BlockId,
    ) -> Result<(), CompileError> {
        let term = match cond {
            Expr::Binop(Binop::CmpI(c), a, b) => {
                let va = self.expr(a)?;
                // compare-against-immediate when the rhs is a small literal
                if let Expr::IntLit(imm) = **b {
                    if i16::try_from(imm).is_ok() {
                        Term::BrIImm {
                            cmp: *c,
                            a: va,
                            imm,
                            then_: then_b,
                            else_: else_b,
                        }
                    } else {
                        let vb = self.expr(b)?;
                        Term::BrI {
                            cmp: *c,
                            a: va,
                            b: vb,
                            then_: then_b,
                            else_: else_b,
                        }
                    }
                } else {
                    let vb = self.expr(b)?;
                    Term::BrI {
                        cmp: *c,
                        a: va,
                        b: vb,
                        then_: then_b,
                        else_: else_b,
                    }
                }
            }
            Expr::Binop(Binop::CmpF(c), a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                Term::BrF {
                    cmp: *c,
                    a: va,
                    b: vb,
                    then_: then_b,
                    else_: else_b,
                }
            }
            Expr::Unop(Unop::NotB, inner) => {
                return self.branch_on(inner, else_b, then_b);
            }
            _ => {
                let v = self.expr(cond)?;
                Term::BrIImm {
                    cmp: vericomp_minic::ast::Cmp::Ne,
                    a: v,
                    imm: 0,
                    then_: then_b,
                    else_: else_b,
                }
            }
        };
        self.func.block_mut(self.cur).term = term;
        Ok(())
    }

    /// Lowers a statement list. Returns `false` if control definitely left
    /// (every path returned), `true` if execution can fall through.
    fn stmts(&mut self, body: &[Stmt]) -> Result<bool, CompileError> {
        for s in body {
            if !self.stmt(s)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<bool, CompileError> {
        match s {
            Stmt::Assign(name, e) => {
                let v = self.expr(e)?;
                let p = self.place(name);
                let addr = self.place_addr(&p);
                self.emit(Inst::Store { src: v, addr });
                Ok(true)
            }
            Stmt::StoreIndex(name, idx, e) => {
                let i = self.expr(idx)?;
                let v = self.expr(e)?;
                let g = self
                    .prog
                    .global(name)
                    .unwrap_or_else(|| unreachable!("typechecked array `{name}`"));
                let scale = match RegClass::of_ty(g.def.elem_ty()) {
                    RegClass::I => 4,
                    RegClass::F => 8,
                };
                self.emit(Inst::Store {
                    src: v,
                    addr: Addr::GlobalIndex {
                        name: name.clone(),
                        index: i,
                        scale,
                    },
                });
                Ok(true)
            }
            Stmt::If(c, then_s, else_s) => {
                let then_b = self.func.new_block();
                let else_b = self.func.new_block();
                self.branch_on(c, then_b, else_b)?;

                self.cur = then_b;
                let t_falls = self.stmts(then_s)?;
                let t_end = self.cur;

                self.cur = else_b;
                let e_falls = self.stmts(else_s)?;
                let e_end = self.cur;

                if !t_falls && !e_falls {
                    return Ok(false);
                }
                let join = self.func.new_block();
                if t_falls {
                    self.func.block_mut(t_end).term = Term::Goto(join);
                }
                if e_falls {
                    self.func.block_mut(e_end).term = Term::Goto(join);
                }
                self.cur = join;
                Ok(true)
            }
            Stmt::While(c, body) => {
                let head = self.func.new_block();
                let body_b = self.func.new_block();
                let exit = self.func.new_block();
                self.func.block_mut(self.cur).term = Term::Goto(head);
                self.cur = head;
                self.branch_on(c, body_b, exit)?;
                self.cur = body_b;
                if self.stmts(body)? {
                    let end = self.cur;
                    self.func.block_mut(end).term = Term::Goto(head);
                }
                self.cur = exit;
                Ok(true)
            }
            Stmt::Return(None) => {
                self.func.block_mut(self.cur).term = Term::Ret(None);
                Ok(false)
            }
            Stmt::Return(Some(e)) => {
                let v = self.expr(e)?;
                self.func.block_mut(self.cur).term = Term::Ret(Some(v));
                Ok(false)
            }
            Stmt::Annot(format, args) => {
                let mut lowered = Vec::new();
                for a in args {
                    // Simple variables are observed in place — no load is
                    // forced, so the final location may be a stack slot or a
                    // global (paper §3.4), and becomes a register only after
                    // promotion.
                    if let Expr::Var(name) = a {
                        let p = self.place(name);
                        let class = match &p {
                            Place::Slot(_, c) | Place::Global(_, c) => *c,
                        };
                        lowered.push(AnnotArg::Mem(self.place_addr(&p), class));
                    } else {
                        let v = self.expr(a)?;
                        lowered.push(AnnotArg::Reg(v));
                    }
                }
                self.emit(Inst::Annot {
                    format: format.clone(),
                    args: lowered,
                });
                Ok(true)
            }
            Stmt::IoWrite(port, e) => {
                let v = self.expr(e)?;
                self.emit(Inst::Store {
                    src: v,
                    addr: Addr::Io(*port),
                });
                Ok(true)
            }
            Stmt::CallStmt(name, args) => {
                let argv = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.emit(Inst::Call {
                    dst: None,
                    callee: name.clone(),
                    args: argv,
                });
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::ast::{Cmp, Global, GlobalDef, Ty};

    fn lower_src(globals: Vec<Global>, f: Function) -> Func {
        let p = Program {
            globals,
            functions: vec![f],
        };
        vericomp_minic::typeck::check(&p).expect("test source must typecheck");
        lower_function(&p, p.function_by_index(0)).expect("lowering must succeed")
    }

    // Helper on Program for tests
    trait ByIndex {
        fn function_by_index(&self, i: usize) -> &Function;
    }
    impl ByIndex for Program {
        fn function_by_index(&self, i: usize) -> &Function {
            &self.functions[i]
        }
    }

    #[test]
    fn assignment_produces_load_op_store() {
        // x = x + y  (both f64 locals)
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![("x".into(), Ty::F64), ("y".into(), Ty::F64)],
            body: vec![Stmt::Assign(
                "x".into(),
                Expr::binop(Binop::AddF, Expr::var("x"), Expr::var("y")),
            )],
        };
        let func = lower_src(vec![], f);
        let entry = func.block(func.entry);
        // zero-init of 2 locals = 4 insts, then: load, load, fadd, store
        let tail: Vec<_> = entry.insts[4..].iter().collect();
        assert_eq!(tail.len(), 4);
        assert!(matches!(tail[0], Inst::Load { .. }));
        assert!(matches!(tail[1], Inst::Load { .. }));
        assert!(matches!(tail[2], Inst::BinF { .. }));
        assert!(matches!(tail[3], Inst::Store { .. }));
    }

    #[test]
    fn while_becomes_loop_with_header() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![("i".into(), Ty::I32)],
            body: vec![Stmt::While(
                Expr::binop(Binop::CmpI(Cmp::Lt), Expr::var("i"), Expr::IntLit(8)),
                vec![Stmt::Assign(
                    "i".into(),
                    Expr::binop(Binop::AddI, Expr::var("i"), Expr::IntLit(1)),
                )],
            )],
        };
        let func = lower_src(vec![], f);
        // Header ends with a compare-immediate branch.
        let has_brimm = func.rpo().iter().any(|&b| {
            matches!(
                func.block(b).term,
                Term::BrIImm {
                    cmp: Cmp::Lt,
                    imm: 8,
                    ..
                }
            )
        });
        assert!(has_brimm, "{func}");
        // There is a back edge (some block jumps to an earlier RPO block).
        let rpo = func.rpo();
        let pos: BTreeMap<_, _> = rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let back = rpo.iter().any(|&b| {
            func.block(b)
                .term
                .successors()
                .iter()
                .any(|s| pos[s] <= pos[&b])
        });
        assert!(back, "expected a back edge:\n{func}");
    }

    #[test]
    fn bool_materializes_via_diamond() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![("b".into(), Ty::Bool), ("x".into(), Ty::F64)],
            body: vec![Stmt::Assign(
                "b".into(),
                Expr::binop(Binop::CmpF(Cmp::Lt), Expr::var("x"), Expr::FloatLit(1.0)),
            )],
        };
        let func = lower_src(vec![], f);
        let has_brf = func
            .rpo()
            .iter()
            .any(|&b| matches!(func.block(b).term, Term::BrF { cmp: Cmp::Lt, .. }));
        assert!(has_brf, "{func}");
    }

    #[test]
    fn annotation_var_args_observed_in_place() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![("x".into(), Ty::I32)],
            body: vec![Stmt::Annot("0 <= %1".into(), vec![Expr::var("x")])],
        };
        let func = lower_src(vec![], f);
        let entry = func.block(func.entry);
        let annot = entry
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Annot { args, .. } => Some(args.clone()),
                _ => None,
            })
            .expect("annotation must be lowered");
        assert!(matches!(
            annot[0],
            AnnotArg::Mem(Addr::Stack(_), RegClass::I)
        ));
        // and no load was emitted for it
        assert!(!entry.insts.iter().any(|i| matches!(i, Inst::Load { .. })));
    }

    #[test]
    fn global_array_access_lowered_indexed() {
        let f = Function {
            name: "f".into(),
            params: vec![("i".into(), Ty::I32)],
            ret: Some(Ty::F64),
            locals: vec![],
            body: vec![Stmt::Return(Some(Expr::Index(
                "tab".into(),
                Box::new(Expr::var("i")),
            )))],
        };
        let func = lower_src(
            vec![Global {
                name: "tab".into(),
                def: GlobalDef::ArrayF64(vec![0.0; 4]),
            }],
            f,
        );
        let found = func.rpo().iter().any(|&b| {
            func.block(b).insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Load {
                        addr: Addr::GlobalIndex { scale: 8, .. },
                        ..
                    }
                )
            })
        });
        assert!(found, "{func}");
    }

    #[test]
    fn if_without_else_joins() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![("x".into(), Ty::I32)],
            body: vec![
                Stmt::If(
                    Expr::binop(Binop::CmpI(Cmp::Gt), Expr::var("x"), Expr::IntLit(0)),
                    vec![Stmt::Assign("x".into(), Expr::IntLit(0))],
                    vec![],
                ),
                Stmt::Assign("x".into(), Expr::IntLit(1)),
            ],
        };
        let func = lower_src(vec![], f);
        // both sides reach the join; the function ends with Ret
        let rets = func
            .rpo()
            .iter()
            .filter(|&&b| matches!(func.block(b).term, Term::Ret(_)))
            .count();
        assert_eq!(rets, 1, "{func}");
    }
}
