//! Graph-coloring register allocation (Chaitin–Briggs style) with iterated
//! spilling — "register allocation by graph coloring", the CompCert pass the
//! paper credits with most of the WCET gain.
//!
//! Virtual registers that live across a call are restricted to callee-saved
//! registers; everything else may use the volatile set too. The reserved
//! registers (`r0` prologue scratch, `r1` SP, `r2` TOC, `r11`/`r12` emission
//! scratch, `r13` SDA, `f12`/`f13` emission scratch) are never allocated.
//!
//! The allocator is *untrusted*: its result is independently checked by
//! [`crate::validate::check_allocation`], our analog of CompCert's verified
//! translation validation for this pass.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use vericomp_arch::reg::{Fpr, Gpr};

use crate::liveness;
use crate::rtl::{Addr, Func, Inst, RegClass, Vreg};
use crate::CompileError;

/// A physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PReg {
    /// General-purpose register.
    G(Gpr),
    /// Floating-point register.
    F(Fpr),
}

impl PReg {
    /// The class of the register.
    pub fn class(self) -> RegClass {
        match self {
            PReg::G(_) => RegClass::I,
            PReg::F(_) => RegClass::F,
        }
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PReg::G(r) => r.fmt(f),
            PReg::F(r) => r.fmt(f),
        }
    }
}

/// The allocatable register sets.
#[derive(Debug, Clone)]
pub struct Palette {
    /// Volatile (caller-saved) GPRs, preferred.
    pub volatile_i: Vec<Gpr>,
    /// Callee-saved GPRs (cost a save/restore in the prologue).
    pub saved_i: Vec<Gpr>,
    /// Volatile FPRs.
    pub volatile_f: Vec<Fpr>,
    /// Callee-saved FPRs.
    pub saved_f: Vec<Fpr>,
}

impl Palette {
    /// The full palette used by the optimizing configurations.
    pub fn full() -> Palette {
        Palette {
            volatile_i: (3..=10).map(Gpr::new).collect(),
            saved_i: (14..=31).map(Gpr::new).collect(),
            volatile_f: (1..=11).map(Fpr::new).collect(),
            saved_f: (14..=31).map(Fpr::new).collect(),
        }
    }

    /// The small scratch palette of the pattern-based configurations: it
    /// mimics the "manual register allocation" of the incumbent process,
    /// where each code pattern only touches a handful of scratch registers.
    pub fn scratch_only() -> Palette {
        Palette {
            volatile_i: (5..=10).map(Gpr::new).collect(),
            saved_i: vec![],
            volatile_f: (5..=11).map(Fpr::new).collect(),
            saved_f: vec![],
        }
    }

    fn colors(&self, class: RegClass, across_call: bool) -> Vec<PReg> {
        match (class, across_call) {
            (RegClass::I, false) => self
                .volatile_i
                .iter()
                .chain(&self.saved_i)
                .map(|&r| PReg::G(r))
                .collect(),
            (RegClass::I, true) => self.saved_i.iter().map(|&r| PReg::G(r)).collect(),
            (RegClass::F, false) => self
                .volatile_f
                .iter()
                .chain(&self.saved_f)
                .map(|&r| PReg::F(r))
                .collect(),
            (RegClass::F, true) => self.saved_f.iter().map(|&r| PReg::F(r)).collect(),
        }
    }

    fn k(&self, class: RegClass) -> usize {
        match class {
            RegClass::I => self.volatile_i.len() + self.saved_i.len(),
            RegClass::F => self.volatile_f.len() + self.saved_f.len(),
        }
    }
}

/// The result of allocation: a total map from occurring virtual registers to
/// physical registers.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Virtual → physical assignment.
    pub map: BTreeMap<Vreg, PReg>,
}

impl Allocation {
    /// The physical register of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not seen during allocation (a compiler bug).
    pub fn preg(&self, v: Vreg) -> PReg {
        self.map[&v]
    }
}

/// Interference information, exposed so the validator can rebuild and check
/// it independently.
#[derive(Debug, Clone, Default)]
pub struct Interference {
    /// Adjacency sets.
    pub edges: BTreeMap<Vreg, BTreeSet<Vreg>>,
    /// Virtual registers that are live across at least one call.
    pub across_call: BTreeSet<Vreg>,
    /// Every virtual register that occurs in the function.
    pub occurring: BTreeSet<Vreg>,
}

impl Interference {
    fn add_edge(&mut self, a: Vreg, b: Vreg) {
        if a != b {
            self.edges.entry(a).or_default().insert(b);
            self.edges.entry(b).or_default().insert(a);
        }
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: Vreg, b: Vreg) -> bool {
        self.edges.get(&a).is_some_and(|s| s.contains(&b))
    }
}

/// Builds the interference graph of `f` (with the standard move-source
/// refinement: a move's destination does not interfere with its source).
pub fn build_interference(f: &Func) -> Interference {
    let live = liveness::analyze(f);
    let mut g = Interference::default();

    for &p in &f.params {
        g.occurring.insert(p);
    }
    // Parameters are all defined at entry by the prologue moves.
    for (i, &a) in f.params.iter().enumerate() {
        for &b in &f.params[i + 1..] {
            g.add_edge(a, b);
        }
        for &x in &live.live_in[f.entry.0 as usize] {
            g.add_edge(a, x);
        }
    }

    for bid in f.rpo() {
        let block = f.block(bid);
        let mut live_now: BTreeSet<Vreg> = live.live_out[bid.0 as usize].clone();
        for u in block.term.uses() {
            live_now.insert(u);
            g.occurring.insert(u);
        }
        for inst in block.insts.iter().rev() {
            if matches!(inst, Inst::Call { .. }) {
                let def = inst.def();
                for &v in &live_now {
                    if Some(v) != def {
                        g.across_call.insert(v);
                    }
                }
            }
            if let Some(d) = inst.def() {
                g.occurring.insert(d);
                let move_src = match inst {
                    Inst::MovI { src, .. } | Inst::MovF { src, .. } => Some(*src),
                    _ => None,
                };
                for &x in &live_now {
                    if x != d && Some(x) != move_src {
                        g.add_edge(d, x);
                    }
                }
                live_now.remove(&d);
            }
            for u in inst.uses() {
                live_now.insert(u);
                g.occurring.insert(u);
            }
        }
    }
    g
}

/// Allocates registers, spilling to fresh stack slots until colorable.
///
/// # Errors
///
/// [`CompileError::RegAlloc`] if spilling does not converge (would indicate
/// an allocator bug — spilled ranges are single-instruction and always
/// colorable with ≥ 3 registers per class).
pub fn allocate(f: &mut Func, palette: &Palette) -> Result<Allocation, CompileError> {
    for _round in 0..16 {
        let g = build_interference(f);
        match try_color(f, palette, &g) {
            Ok(map) => return Ok(Allocation { map }),
            Err(spills) => {
                rewrite_spills(f, &spills);
            }
        }
    }
    Err(CompileError::RegAlloc(format!(
        "spilling did not converge in function `{}`",
        f.name
    )))
}

/// Attempts to color; on failure returns the set of vregs to spill.
fn try_color(
    f: &Func,
    palette: &Palette,
    g: &Interference,
) -> Result<BTreeMap<Vreg, PReg>, BTreeSet<Vreg>> {
    let empty = BTreeSet::new();
    let degree = |v: Vreg, removed: &BTreeSet<Vreg>| {
        g.edges
            .get(&v)
            .map(|s| s.iter().filter(|x| !removed.contains(x)).count())
            .unwrap_or(0)
    };

    // Simplify: repeatedly remove a low-degree node; otherwise pick a
    // spill candidate optimistically.
    let mut removed: BTreeSet<Vreg> = BTreeSet::new();
    let mut stack: Vec<Vreg> = Vec::new();
    let mut remaining: BTreeSet<Vreg> = g.occurring.clone();
    while !remaining.is_empty() {
        let pick_simplifiable = remaining
            .iter()
            .copied()
            .find(|&v| degree(v, &removed) < palette.k(f.class_of(v)));
        let v = pick_simplifiable.unwrap_or_else(|| {
            // optimistic spill candidate: maximal degree, lowest index tiebreak
            *remaining
                .iter()
                .max_by_key(|&&v| (degree(v, &removed), std::cmp::Reverse(v.0)))
                .expect("remaining not empty")
        });
        remaining.remove(&v);
        removed.insert(v);
        stack.push(v);
    }

    // Select: pop and color.
    let mut colors: BTreeMap<Vreg, PReg> = BTreeMap::new();
    let mut spills: BTreeSet<Vreg> = BTreeSet::new();
    while let Some(v) = stack.pop() {
        let neighbours = g.edges.get(&v).unwrap_or(&empty);
        let taken: BTreeSet<PReg> = neighbours
            .iter()
            .filter_map(|n| colors.get(n).copied())
            .collect();
        let choice = palette
            .colors(f.class_of(v), g.across_call.contains(&v))
            .into_iter()
            .find(|c| !taken.contains(c));
        match choice {
            Some(c) => {
                colors.insert(v, c);
            }
            None => {
                spills.insert(v);
            }
        }
    }
    if spills.is_empty() {
        Ok(colors)
    } else {
        Err(spills)
    }
}

/// Rewrites spilled vregs into per-occurrence temporaries staged through
/// fresh stack slots.
fn rewrite_spills(f: &mut Func, spills: &BTreeSet<Vreg>) {
    let mut slot_of = BTreeMap::new();
    for &v in spills {
        let class = f.class_of(v);
        slot_of.insert(v, f.new_slot(class, "spill"));
    }
    let mov = |load: bool, v: Vreg, slot| {
        if load {
            Inst::Load {
                dst: v,
                addr: Addr::Stack(slot),
            }
        } else {
            Inst::Store {
                src: v,
                addr: Addr::Stack(slot),
            }
        }
    };

    let param_spills: Vec<Vreg> = f
        .params
        .iter()
        .copied()
        .filter(|p| spills.contains(p))
        .collect();

    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len());
        // Parameters spilled: store them at the very top of the entry block.
        if bi == f.entry.0 as usize {
            for &p in &param_spills {
                out.push(mov(false, p, slot_of[&p]));
            }
        }
        for mut inst in insts {
            // uses first
            let mut pre = Vec::new();
            inst.map_uses(&mut |v| {
                if let Some(&slot) = slot_of.get(&v) {
                    let t = f.vregs.len() as u32;
                    f.vregs.push(f.vregs[v.0 as usize]);
                    let t = Vreg(t);
                    pre.push(mov(true, t, slot));
                    t
                } else {
                    v
                }
            });
            out.extend(pre);
            // then the def
            let mut post = Vec::new();
            inst.map_def(&mut |v| {
                if let Some(&slot) = slot_of.get(&v) {
                    let t = f.vregs.len() as u32;
                    f.vregs.push(f.vregs[v.0 as usize]);
                    let t = Vreg(t);
                    post.push(mov(false, t, slot));
                    t
                } else {
                    v
                }
            });
            out.push(inst);
            out.extend(post);
        }
        // terminator uses
        let mut pre = Vec::new();
        let mut term = f.blocks[bi].term.clone();
        term.map_uses(&mut |v| {
            if let Some(&slot) = slot_of.get(&v) {
                let t = f.vregs.len() as u32;
                f.vregs.push(f.vregs[v.0 as usize]);
                let t = Vreg(t);
                pre.push(mov(true, t, slot));
                t
            } else {
                v
            }
        });
        out.extend(pre);
        f.blocks[bi].insts = out;
        f.blocks[bi].term = term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Block, BlockId, IBin, Term};

    fn empty_func() -> Func {
        Func {
            name: "t".into(),
            params: vec![],
            ret: None,
            vregs: vec![],
            slots: vec![],
            blocks: vec![],
            entry: BlockId(0),
        }
    }

    /// n simultaneously-live integer values, summed at the end.
    fn high_pressure(n: u32) -> Func {
        let mut f = empty_func();
        let b = f.new_block();
        f.entry = b;
        let vs: Vec<Vreg> = (0..n).map(|_| f.new_vreg(RegClass::I)).collect();
        let mut insts: Vec<Inst> = vs
            .iter()
            .enumerate()
            .map(|(i, &v)| Inst::ImmI {
                dst: v,
                value: i as i32,
            })
            .collect();
        let acc = f.new_vreg(RegClass::I);
        insts.push(Inst::ImmI { dst: acc, value: 0 });
        for &v in &vs {
            insts.push(Inst::BinI {
                op: IBin::Add,
                dst: acc,
                a: acc,
                b: v,
            });
        }
        f.blocks[0] = Block {
            insts,
            term: Term::Ret(Some(acc)),
        };
        f.ret = Some(RegClass::I);
        f
    }

    #[test]
    fn colors_respect_interference() {
        let mut f = high_pressure(6);
        let alloc = allocate(&mut f, &Palette::full()).unwrap();
        let g = build_interference(&f);
        for (&a, neigh) in &g.edges {
            for &b in neigh {
                assert_ne!(alloc.preg(a), alloc.preg(b), "{a} and {b} interfere");
            }
        }
    }

    #[test]
    fn class_respected() {
        let mut f = empty_func();
        let b = f.new_block();
        f.entry = b;
        let i = f.new_vreg(RegClass::I);
        let x = f.new_vreg(RegClass::F);
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmI { dst: i, value: 1 },
                Inst::ImmF { dst: x, value: 1.0 },
                Inst::Store {
                    src: x,
                    addr: Addr::Io(0),
                },
            ],
            term: Term::Ret(Some(i)),
        };
        f.ret = Some(RegClass::I);
        let alloc = allocate(&mut f, &Palette::full()).unwrap();
        assert_eq!(alloc.preg(i).class(), RegClass::I);
        assert_eq!(alloc.preg(x).class(), RegClass::F);
    }

    #[test]
    fn spills_under_pressure_and_converges() {
        // 40 live values > 26 int registers: must spill yet stay correct.
        let mut f = high_pressure(40);
        let alloc = allocate(&mut f, &Palette::full()).unwrap();
        // final graph colorable and disjoint
        let g = build_interference(&f);
        for (&a, neigh) in &g.edges {
            for &b in neigh {
                assert_ne!(alloc.preg(a), alloc.preg(b));
            }
        }
        assert!(
            f.slots.iter().any(|s| s.origin == "spill"),
            "expected spill slots to be created"
        );
    }

    #[test]
    fn tiny_scratch_palette_still_allocates_via_spills() {
        let mut f = high_pressure(12);
        let alloc = allocate(&mut f, &Palette::scratch_only()).unwrap();
        for p in alloc.map.values() {
            match p {
                PReg::G(r) => assert!((5..=10).contains(&r.index())),
                PReg::F(r) => assert!((5..=11).contains(&r.index())),
            }
        }
    }

    #[test]
    fn call_crossing_values_get_callee_saved_registers() {
        let mut f = empty_func();
        let b = f.new_block();
        f.entry = b;
        let v = f.new_vreg(RegClass::I);
        let r = f.new_vreg(RegClass::I);
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmI { dst: v, value: 7 },
                Inst::Call {
                    dst: Some(r),
                    callee: "h".into(),
                    args: vec![],
                },
                Inst::BinI {
                    op: IBin::Add,
                    dst: r,
                    a: r,
                    b: v,
                },
            ],
            term: Term::Ret(Some(r)),
        };
        f.ret = Some(RegClass::I);
        let alloc = allocate(&mut f, &Palette::full()).unwrap();
        match alloc.preg(v) {
            PReg::G(g) => assert!(g.index() >= 14, "v crosses the call, got {g}"),
            _ => panic!("wrong class"),
        }
    }

    #[test]
    fn move_refinement_allows_coalescable_assignment() {
        // dst = src; both live after? No: src dead after the move — they may share.
        let mut f = empty_func();
        let b = f.new_block();
        f.entry = b;
        let a = f.new_vreg(RegClass::I);
        let c = f.new_vreg(RegClass::I);
        f.blocks[0] = Block {
            insts: vec![
                Inst::ImmI { dst: a, value: 1 },
                Inst::MovI { dst: c, src: a },
            ],
            term: Term::Ret(Some(c)),
        };
        f.ret = Some(RegClass::I);
        let g = build_interference(&f);
        assert!(!g.interferes(a, c));
    }
}
