//! End-to-end pipeline tests: MiniC source → compile at every level →
//! simulate, differentially checked against the reference interpreter.

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::{AnnotValue, Simulator};
use vericomp_minic::ast::*;
use vericomp_minic::interp::{Interp, Value};

fn gf(name: &str) -> Global {
    Global {
        name: name.into(),
        def: GlobalDef::ScalarF64(None),
    }
}

fn gi(name: &str) -> Global {
    Global {
        name: name.into(),
        def: GlobalDef::ScalarI32(None),
    }
}

/// A small but representative node: arithmetic, comparison diamond, loop
/// over a lookup table, annotation, I/O.
fn sample_program() -> Program {
    Program {
        globals: vec![
            gf("in1"),
            gf("state"),
            gf("out"),
            gi("count"),
            Global {
                name: "tab".into(),
                def: GlobalDef::ArrayF64(vec![0.5, 1.5, 2.5, 3.5]),
            },
        ],
        functions: vec![Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![
                ("x".into(), Ty::F64),
                ("acc".into(), Ty::F64),
                ("i".into(), Ty::I32),
            ],
            body: vec![
                Stmt::Assign(
                    "x".into(),
                    Expr::binop(Binop::MulF, Expr::IoRead(0), Expr::FloatLit(0.25)),
                ),
                Stmt::Annot("input %1".into(), vec![Expr::var("x")]),
                // saturation
                Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Gt), Expr::var("x"), Expr::FloatLit(10.0)),
                    vec![Stmt::Assign("x".into(), Expr::FloatLit(10.0))],
                    vec![],
                ),
                // table sum loop
                Stmt::While(
                    Expr::binop(Binop::CmpI(Cmp::Lt), Expr::var("i"), Expr::IntLit(4)),
                    vec![
                        Stmt::Assign(
                            "acc".into(),
                            Expr::binop(
                                Binop::AddF,
                                Expr::var("acc"),
                                Expr::Index("tab".into(), Box::new(Expr::var("i"))),
                            ),
                        ),
                        Stmt::Assign(
                            "i".into(),
                            Expr::binop(Binop::AddI, Expr::var("i"), Expr::IntLit(1)),
                        ),
                    ],
                ),
                // first-order filter on the state
                Stmt::Assign(
                    "state".into(),
                    Expr::binop(
                        Binop::AddF,
                        Expr::var("state"),
                        Expr::binop(
                            Binop::MulF,
                            Expr::FloatLit(0.125),
                            Expr::binop(Binop::SubF, Expr::var("x"), Expr::var("state")),
                        ),
                    ),
                ),
                Stmt::Assign(
                    "out".into(),
                    Expr::binop(
                        Binop::AddF,
                        Expr::binop(Binop::MulF, Expr::var("state"), Expr::var("in1")),
                        Expr::var("acc"),
                    ),
                ),
                Stmt::Assign(
                    "count".into(),
                    Expr::binop(Binop::AddI, Expr::var("count"), Expr::IntLit(1)),
                ),
                Stmt::Annot(
                    "out %1 count %2".into(),
                    vec![Expr::var("out"), Expr::var("count")],
                ),
                Stmt::IoWrite(1, Expr::var("out")),
            ],
        }],
    }
}

fn value_of(v: AnnotValue) -> Value {
    match v {
        AnnotValue::I32(i) => Value::I(i),
        AnnotValue::F64(f) => Value::F(f),
    }
}

fn run_both(level: OptLevel, input: f64, in1: f64) {
    let prog = sample_program();

    // reference
    let mut interp = Interp::new(&prog);
    interp.set_io(0, input);
    interp.set_global("in1", Value::F(in1)).unwrap();
    interp.call("step", &[]).unwrap();
    let ref_out = interp.global("out").unwrap();
    let ref_state = interp.global("state").unwrap();
    let ref_count = interp.global("count").unwrap();
    let ref_io = interp.io(1);
    let ref_trace = interp.take_trace();

    // machine
    let binary = Compiler::new(level).compile(&prog, "step").unwrap();
    let mut sim = Simulator::new(binary);
    sim.set_io_f64(0, input);
    sim.set_global_f64("in1", 0, in1).unwrap();
    let outcome = sim.run(100_000).unwrap();

    assert_eq!(
        Value::F(sim.global_f64("out", 0).unwrap()),
        ref_out,
        "out mismatch at {level}"
    );
    assert_eq!(
        Value::F(sim.global_f64("state", 0).unwrap()),
        ref_state,
        "state mismatch at {level}"
    );
    assert_eq!(
        Value::I(sim.global_i32("count", 0).unwrap()),
        ref_count,
        "count mismatch at {level}"
    );
    assert_eq!(
        sim.io_f64(1).to_bits(),
        ref_io.to_bits(),
        "io mismatch at {level}"
    );

    // annotation traces agree: same events, same order, same values
    assert_eq!(
        outcome.annotations.len(),
        ref_trace.len(),
        "trace length at {level}"
    );
    for (m, r) in outcome.annotations.iter().zip(&ref_trace) {
        assert_eq!(m.format, r.format, "trace format at {level}");
        let mvals: Vec<Value> = m.values.iter().map(|&v| value_of(v)).collect();
        assert_eq!(mvals, r.values, "trace values at {level}");
    }
}

#[test]
fn pattern_o0_end_to_end() {
    run_both(OptLevel::PatternO0, 8.0, 2.0);
}

#[test]
fn opt_no_regalloc_end_to_end() {
    run_both(OptLevel::OptNoRegalloc, 8.0, 2.0);
}

#[test]
fn verified_end_to_end() {
    run_both(OptLevel::Verified, 8.0, 2.0);
}

#[test]
fn opt_full_end_to_end() {
    run_both(OptLevel::OptFull, 8.0, 2.0);
}

#[test]
fn saturation_branch_both_ways() {
    for level in OptLevel::all() {
        run_both(level, 100.0, -1.5); // saturates
        run_both(level, 0.0, 0.0); // zero path
        run_both(level, -3.0, 7.25);
    }
}

#[test]
fn verified_is_smaller_and_quieter_on_cache_than_o0() {
    let prog = sample_program();
    let o0 = Compiler::new(OptLevel::PatternO0)
        .compile(&prog, "step")
        .unwrap();
    let vr = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .unwrap();
    assert!(
        vr.text_size() < o0.text_size(),
        "verified {} vs O0 {}",
        vr.text_size(),
        o0.text_size()
    );

    let run = |p: vericomp_arch::Program| {
        let mut sim = Simulator::new(p);
        sim.set_io_f64(0, 4.0);
        sim.set_global_f64("in1", 0, 1.0).unwrap();
        sim.run(100_000).unwrap().stats
    };
    let s0 = run(o0);
    let sv = run(vr);
    assert!(
        sv.dcache_reads < s0.dcache_reads / 2,
        "verified reads {} vs O0 reads {}",
        sv.dcache_reads,
        s0.dcache_reads
    );
    assert!(
        sv.dcache_writes < s0.dcache_writes,
        "verified writes {} vs O0 writes {}",
        sv.dcache_writes,
        s0.dcache_writes
    );
    assert!(
        sv.cycles < s0.cycles,
        "verified {} vs O0 {} cycles",
        sv.cycles,
        s0.cycles
    );
}

#[test]
fn function_calls_work_across_levels() {
    // helper with parameters and return value, called twice
    let helper = Function {
        name: "scale".into(),
        params: vec![("v".into(), Ty::F64), ("k".into(), Ty::F64)],
        ret: Some(Ty::F64),
        locals: vec![],
        body: vec![Stmt::Return(Some(Expr::binop(
            Binop::MulF,
            Expr::var("v"),
            Expr::var("k"),
        )))],
    };
    let main = Function {
        name: "step".into(),
        params: vec![],
        ret: None,
        locals: vec![("a".into(), Ty::F64)],
        body: vec![
            Stmt::Assign(
                "a".into(),
                Expr::Call("scale".into(), vec![Expr::var("x"), Expr::FloatLit(3.0)]),
            ),
            Stmt::Assign(
                "y".into(),
                Expr::binop(
                    Binop::AddF,
                    Expr::Call("scale".into(), vec![Expr::var("a"), Expr::FloatLit(0.5)]),
                    Expr::var("a"),
                ),
            ),
        ],
    };
    let prog = Program {
        globals: vec![gf("x"), gf("y")],
        functions: vec![main, helper],
    };
    for level in OptLevel::all() {
        let mut interp = Interp::new(&prog);
        interp.set_global("x", Value::F(7.0)).unwrap();
        interp.call("step", &[]).unwrap();
        let expect = interp.global("y").unwrap();

        let binary = Compiler::new(level).compile(&prog, "step").unwrap();
        let mut sim = Simulator::new(binary);
        sim.set_global_f64("x", 0, 7.0).unwrap();
        sim.run(100_000).unwrap();
        assert_eq!(
            Value::F(sim.global_f64("y", 0).unwrap()),
            expect,
            "at {level}"
        );
    }
}
