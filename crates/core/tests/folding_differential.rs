//! Property test targeting the constant folder: a function returning a
//! randomly generated *constant* expression is fully folded by the verified
//! configuration, and the folded result must be bit-identical to the
//! interpreter's — the folder applies the exact machine semantics
//! (wrapping, `divw` corner cases, IEEE doubles, saturating conversion).

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::ast::*;
use vericomp_minic::interp::{Interp, Value};
use vericomp_testkit::prop::{check, gens, Config, Gen};

/// Shrinks a constant expression: replace a node by its sub-expressions,
/// or simplify a leaf literal. The regression file's pinned case below is
/// what this kind of shrinking converges to.
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::IntLit(v) => vericomp_testkit::prop::shrink::int(i64::from(*v))
            .into_iter()
            .map(Expr::IntLit)
            .collect(),
        Expr::FloatLit(v) => vericomp_testkit::prop::shrink::float(*v)
            .into_iter()
            .map(Expr::FloatLit)
            .collect(),
        Expr::Unop(_, a) => {
            let mut out = vec![(**a).clone()];
            out.extend(shrink_expr(a).into_iter().map(|a2| {
                let Expr::Unop(op, _) = e else { unreachable!() };
                Expr::unop(*op, a2)
            }));
            out
        }
        Expr::Binop(op, a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            out.extend(
                shrink_expr(a)
                    .into_iter()
                    .map(|a2| Expr::binop(*op, a2, (**b).clone())),
            );
            out.extend(
                shrink_expr(b)
                    .into_iter()
                    .map(|b2| Expr::binop(*op, (**a).clone(), b2)),
            );
            out
        }
        _ => Vec::new(),
    }
}

/// Random constant integer expressions.
fn int_expr() -> Gen<Expr> {
    let leaf = gens::one_of(vec![
        gens::any_i32().map(Expr::IntLit),
        gens::i32_range(-100, 100).map(Expr::IntLit),
    ]);
    gens::recursive(leaf, 4, |inner| {
        let pairs = gens::pair(inner.clone(), inner.clone());
        gens::one_of(vec![
            pairs.clone().map(|(a, b)| Expr::binop(Binop::AddI, a, b)),
            pairs.clone().map(|(a, b)| Expr::binop(Binop::SubI, a, b)),
            pairs.clone().map(|(a, b)| Expr::binop(Binop::MulI, a, b)),
            pairs.map(|(a, b)| Expr::binop(Binop::DivI, a, b)),
            inner.map(|a| Expr::unop(Unop::NegI, a)),
        ])
    })
    .with_shrink(shrink_expr)
}

/// Random constant floating expressions (including non-finite results).
fn float_expr() -> Gen<Expr> {
    let leaf = gens::one_of(vec![
        gens::f64_range(-1e6, 1e6).map(Expr::FloatLit),
        gens::just(Expr::FloatLit(0.0)),
        gens::just(Expr::FloatLit(-0.0)),
        gens::just(Expr::FloatLit(1e300)),
    ]);
    gens::recursive(leaf, 4, |inner| {
        let pairs = gens::pair(inner.clone(), inner.clone());
        gens::one_of(vec![
            pairs.clone().map(|(a, b)| Expr::binop(Binop::AddF, a, b)),
            pairs.clone().map(|(a, b)| Expr::binop(Binop::SubF, a, b)),
            pairs.clone().map(|(a, b)| Expr::binop(Binop::MulF, a, b)),
            pairs.map(|(a, b)| Expr::binop(Binop::DivF, a, b)),
            inner.clone().map(|a| Expr::unop(Unop::NegF, a)),
            inner.map(|a| Expr::unop(Unop::AbsF, a)),
        ])
    })
    .with_shrink(shrink_expr)
}

fn run_both_i(expr: Expr) -> (i32, i32) {
    let prog = Program {
        globals: vec![Global {
            name: "out".into(),
            def: GlobalDef::ScalarI32(None),
        }],
        functions: vec![Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::Assign("out".into(), expr)],
        }],
    };
    let mut it = Interp::new(&prog);
    it.call("step", &[]).expect("interprets");
    let expect = match it.global("out").expect("out") {
        Value::I(v) => v,
        _ => unreachable!(),
    };
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let mut sim = Simulator::new(bin);
    sim.run(1_000_000).expect("runs");
    (expect, sim.global_i32("out", 0).expect("out"))
}

fn run_both_f(expr: Expr) -> (f64, f64) {
    let prog = Program {
        globals: vec![Global {
            name: "out".into(),
            def: GlobalDef::ScalarF64(None),
        }],
        functions: vec![Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::Assign("out".into(), expr)],
        }],
    };
    let mut it = Interp::new(&prog);
    it.call("step", &[]).expect("interprets");
    let expect = match it.global("out").expect("out") {
        Value::F(v) => v,
        _ => unreachable!(),
    };
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let mut sim = Simulator::new(bin);
    sim.run(1_000_000).expect("runs");
    (expect, sim.global_f64("out", 0).expect("out"))
}

fn cfg() -> Config {
    Config::with_cases(300).with_regressions("tests/folding_differential.proptest-regressions")
}

#[test]
fn integer_folding_matches_interpreter() {
    check(
        "integer_folding_matches_interpreter",
        &cfg(),
        &int_expr(),
        |e| {
            let (expect, got) = run_both_i(e.clone());
            if expect == got {
                Ok(())
            } else {
                Err(format!("interp {expect} != folded {got} for {e:?}"))
            }
        },
    );
}

#[test]
fn float_folding_matches_interpreter_bitwise() {
    check(
        "float_folding_matches_interpreter_bitwise",
        &cfg(),
        &float_expr(),
        |e| {
            let (expect, got) = run_both_f(e.clone());
            if expect.to_bits() == got.to_bits() {
                Ok(())
            } else {
                Err(format!("interp {expect:?} != folded {got:?} for {e:?}"))
            }
        },
    );
}

#[test]
fn conversion_roundtrips_match() {
    // out = (int) v — saturating truncation corner cases
    check(
        "conversion_roundtrips_match",
        &cfg(),
        &gens::any_f64(),
        |&v| {
            let e = Expr::unop(Unop::F2I, Expr::FloatLit(v));
            let (expect, got) = run_both_i(e);
            if expect == got {
                Ok(())
            } else {
                Err(format!("interp {expect} != folded {got} for (int){v:?}"))
            }
        },
    );
}

#[test]
fn folder_handles_known_corner_cases() {
    for (e, want) in [
        (
            Expr::binop(Binop::DivI, Expr::IntLit(i32::MIN), Expr::IntLit(-1)),
            i32::MIN,
        ),
        (
            Expr::binop(Binop::DivI, Expr::IntLit(17), Expr::IntLit(0)),
            0,
        ),
        (
            Expr::binop(Binop::AddI, Expr::IntLit(i32::MAX), Expr::IntLit(1)),
            i32::MIN,
        ),
        (Expr::unop(Unop::NegI, Expr::IntLit(i32::MIN)), i32::MIN),
        (Expr::unop(Unop::F2I, Expr::FloatLit(f64::NAN)), i32::MIN),
        (Expr::unop(Unop::F2I, Expr::FloatLit(1e300)), i32::MAX),
    ] {
        let (expect, got) = run_both_i(e);
        assert_eq!(expect, want);
        assert_eq!(got, want);
    }
}

/// The shrunk counterexample recorded in the legacy proptest regression
/// file (`cc` entry): `|0.0 / 0.0| - 0.0` — an AbsF applied to a NaN with
/// a sign-sensitive subtraction on top. Pinned explicitly because proptest
/// hashes are not replayable by the testkit runner.
#[test]
fn pinned_regression_absf_of_nan_minus_zero() {
    let e = Expr::binop(
        Binop::SubF,
        Expr::unop(
            Unop::AbsF,
            Expr::binop(Binop::DivF, Expr::FloatLit(0.0), Expr::FloatLit(0.0)),
        ),
        Expr::FloatLit(0.0),
    );
    let (expect, got) = run_both_f(e);
    assert_eq!(expect.to_bits(), got.to_bits());
}
