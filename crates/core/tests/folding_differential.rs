//! Property test targeting the constant folder: a function returning a
//! randomly generated *constant* expression is fully folded by the verified
//! configuration, and the folded result must be bit-identical to the
//! interpreter's — the folder applies the exact machine semantics
//! (wrapping, `divw` corner cases, IEEE doubles, saturating conversion).

use proptest::prelude::*;
use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::ast::*;
use vericomp_minic::interp::{Interp, Value};

/// Random constant integer expressions.
fn int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Expr::IntLit),
        (-100i32..100).prop_map(Expr::IntLit),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::AddI, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::SubI, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::MulI, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::DivI, a, b)),
            inner.clone().prop_map(|a| Expr::unop(Unop::NegI, a)),
        ]
    })
}

/// Random constant floating expressions (including non-finite results).
fn float_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1e6f64..1e6).prop_map(Expr::FloatLit),
        Just(Expr::FloatLit(0.0)),
        Just(Expr::FloatLit(-0.0)),
        Just(Expr::FloatLit(1e300)),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::AddF, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::SubF, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::MulF, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(Binop::DivF, a, b)),
            inner.clone().prop_map(|a| Expr::unop(Unop::NegF, a)),
            inner.clone().prop_map(|a| Expr::unop(Unop::AbsF, a)),
        ]
    })
}

fn run_both_i(expr: Expr) -> (i32, i32) {
    let prog = Program {
        globals: vec![Global {
            name: "out".into(),
            def: GlobalDef::ScalarI32(None),
        }],
        functions: vec![Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::Assign("out".into(), expr)],
        }],
    };
    let mut it = Interp::new(&prog);
    it.call("step", &[]).expect("interprets");
    let expect = match it.global("out").expect("out") {
        Value::I(v) => v,
        _ => unreachable!(),
    };
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let mut sim = Simulator::new(bin);
    sim.run(1_000_000).expect("runs");
    (expect, sim.global_i32("out", 0).expect("out"))
}

fn run_both_f(expr: Expr) -> (f64, f64) {
    let prog = Program {
        globals: vec![Global {
            name: "out".into(),
            def: GlobalDef::ScalarF64(None),
        }],
        functions: vec![Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::Assign("out".into(), expr)],
        }],
    };
    let mut it = Interp::new(&prog);
    it.call("step", &[]).expect("interprets");
    let expect = match it.global("out").expect("out") {
        Value::F(v) => v,
        _ => unreachable!(),
    };
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let mut sim = Simulator::new(bin);
    sim.run(1_000_000).expect("runs");
    (expect, sim.global_f64("out", 0).expect("out"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn integer_folding_matches_interpreter(e in int_expr()) {
        let (expect, got) = run_both_i(e);
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn float_folding_matches_interpreter_bitwise(e in float_expr()) {
        let (expect, got) = run_both_f(e);
        prop_assert_eq!(expect.to_bits(), got.to_bits());
    }

    #[test]
    fn conversion_roundtrips_match(v in any::<f64>()) {
        // out = (int) v — saturating truncation corner cases
        let e = Expr::unop(Unop::F2I, Expr::FloatLit(v));
        let (expect, got) = run_both_i(e);
        prop_assert_eq!(expect, got);
    }
}

#[test]
fn folder_handles_known_corner_cases() {
    for (e, want) in [
        (
            Expr::binop(Binop::DivI, Expr::IntLit(i32::MIN), Expr::IntLit(-1)),
            i32::MIN,
        ),
        (
            Expr::binop(Binop::DivI, Expr::IntLit(17), Expr::IntLit(0)),
            0,
        ),
        (
            Expr::binop(Binop::AddI, Expr::IntLit(i32::MAX), Expr::IntLit(1)),
            i32::MIN,
        ),
        (Expr::unop(Unop::NegI, Expr::IntLit(i32::MIN)), i32::MIN),
        (Expr::unop(Unop::F2I, Expr::FloatLit(f64::NAN)), i32::MIN),
        (Expr::unop(Unop::F2I, Expr::FloatLit(1e300)), i32::MAX),
    ] {
        let (expect, got) = run_both_i(e);
        assert_eq!(expect, want);
        assert_eq!(got, want);
    }
}
