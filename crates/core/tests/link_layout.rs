//! Linker-level properties: layout, fall-through elision, call patching,
//! data-section initialization and float-branch direction preservation.

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::parse;

fn compile(src: &str, level: OptLevel) -> vericomp_arch::Program {
    let prog = parse::parse(src).expect("parses");
    Compiler::new(level)
        .compile(&prog, "step")
        .expect("compiles")
}

#[test]
fn functions_laid_out_contiguously() {
    let src = r#"
        double y;
        double helper(double v) {
            return (v * 2.0);
        }
        void step() {
            y = helper(y);
        }
    "#;
    let bin = compile(src, OptLevel::Verified);
    let mut fns = bin.functions.clone();
    fns.sort_by_key(|f| f.entry);
    assert_eq!(fns.len(), 2);
    // contiguous, no gaps or overlaps
    assert_eq!(fns[0].entry, bin.config.text_base);
    assert_eq!(fns[0].entry + 4 * fns[0].len_words, fns[1].entry);
    assert_eq!(
        fns[1].entry + 4 * fns[1].len_words,
        bin.config.text_base + bin.text_size()
    );
    // the entry symbol is the requested one
    assert_eq!(bin.entry, bin.function("step").expect("symbol").entry);
}

#[test]
fn call_targets_patched_to_function_entries() {
    let src = r#"
        double y;
        double h(double v) { return (v + 1.0); }
        void step() { y = h(h(y)); }
    "#;
    let bin = compile(src, OptLevel::Verified);
    let h_entry = bin.function("h").expect("symbol").entry;
    let calls: Vec<u32> = bin
        .code
        .iter()
        .filter_map(|i| match i {
            vericomp_arch::Inst::Bl { target } => Some(*target),
            _ => None,
        })
        .collect();
    assert_eq!(calls, vec![h_entry, h_entry]);
}

#[test]
fn unknown_entry_is_a_link_error() {
    let prog = parse::parse("double x; void step() { x = 1.0; }").expect("parses");
    let err = Compiler::new(OptLevel::Verified)
        .compile(&prog, "nonexistent")
        .unwrap_err();
    assert!(matches!(err, vericomp_core::CompileError::Link(_)), "{err}");
}

#[test]
fn initialized_data_lands_in_memory() {
    let src = r#"
        double k = 2.5;
        int n = -7;
        bool armed = true;
        double tab[3] = {1.0, -2.0, 3.0};
        double y;
        void step() { y = (k * tab[1]); }
    "#;
    let bin = compile(src, OptLevel::PatternO0);
    let mut sim = Simulator::new(bin);
    assert_eq!(sim.global_f64("k", 0).expect("k"), 2.5);
    assert_eq!(sim.global_i32("n", 0).expect("n"), -7);
    assert_eq!(sim.global_i32("armed", 0).expect("armed"), 1);
    assert_eq!(sim.global_f64("tab", 2).expect("tab"), 3.0);
    sim.run(100_000).expect("runs");
    assert_eq!(sim.global_f64("y", 0).expect("y"), -5.0);
}

#[test]
fn nan_branches_take_the_else_arm_under_all_layouts() {
    // !(x < 1.0) is not (x >= 1.0) for NaN: the linker must never invert a
    // float condition while choosing the fall-through arm.
    let src = r#"
        double x;
        double y;
        void step() {
            if (x < 1.0) {
                y = 1.0;
            } else {
                y = 2.0;
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull] {
        let bin = compile(src, level);
        let mut sim = Simulator::new(bin);
        sim.set_global_f64("x", 0, f64::NAN).expect("x");
        sim.run(100_000).expect("runs");
        assert_eq!(
            sim.global_f64("y", 0).expect("y"),
            2.0,
            "{level}: NaN must not compare less"
        );
        sim.set_global_f64("x", 0, 0.5).expect("x");
        sim.run(100_000).expect("runs");
        assert_eq!(sim.global_f64("y", 0).expect("y"), 1.0, "{level}");
    }
}

#[test]
fn const_pool_is_addressable_and_deduplicated() {
    let src = r#"
        double a;
        double b;
        void step() {
            a = (a + 1.5);
            b = (b + 1.5);
            a = (a * -0.0);
        }
    "#;
    let bin = compile(src, OptLevel::Verified);
    // pool holds 1.5 and -0.0 (bitwise distinct from 0.0), deduplicated
    let pool_values: Vec<u64> = bin
        .data
        .iter()
        .filter(|(addr, _)| **addr >= bin.const_pool_base)
        .map(|(_, v)| match v {
            vericomp_arch::program::DataValue::F64(x) => x.to_bits(),
            vericomp_arch::program::DataValue::I32(_) => panic!("pool holds doubles"),
        })
        .collect();
    assert!(pool_values.contains(&1.5f64.to_bits()));
    assert!(pool_values.contains(&(-0.0f64).to_bits()));
    let unique: std::collections::BTreeSet<u64> = pool_values.iter().copied().collect();
    assert_eq!(
        unique.len(),
        pool_values.len(),
        "pool entries are deduplicated"
    );
}
