//! E9 — WCET-guided search over the `PassConfig` lattice through
//! `search_wcet`. Emits `BENCH_search.json`.
//!
//! Regimes, all on a 10-node slice of the paper-analog suite:
//!
//! * `suite10/fixed_seeds` — the pre-search driver cost: one sweep of the
//!   six fixed WCET-driven candidate configs, fresh pipeline per
//!   iteration;
//! * `suite10/cold_search` — fresh pipeline per iteration, the full
//!   dominance-pruned frontier search compiles every probe;
//! * `suite10/warm_research` — persistent pipeline, the identical search
//!   replays every probe from the content-addressed cache;
//! * `suite10/warm_1dirty` — the edit-compile loop: nine nodes unchanged,
//!   one node's filter coefficient differs per iteration, so exactly that
//!   node's probes miss.
//!
//! Acceptance bars asserted below: warm re-search with one dirty node at
//! least 10x faster than the cold full search, dominance pruning fires on
//! at least one node, and on every Table-1 node the search winner is at
//! least as good as the best fixed candidate (the improvement table is
//! printed).

use std::path::Path;

use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::{fleet, Node, NodeBuilder};
use vericomp_pipeline::{Pipeline, SearchSpec, SweepSpec};
use vericomp_testkit::bench::Bench;

/// The fixed candidate set of the pre-search WCET-driven driver (the
/// harness's `wcet_driven_candidates`, replicated here because the bench
/// crate deliberately depends only on the sub-crates).
fn fixed_candidates() -> [(&'static str, PassConfig); 6] {
    let verified = PassConfig::for_level(OptLevel::Verified);
    let full = PassConfig::for_level(OptLevel::OptFull);
    [
        ("verified", verified),
        (
            "verified+tunnel",
            PassConfig {
                tunnel: true,
                validators: true,
                ..verified
            },
        ),
        (
            "verified+sda",
            PassConfig {
                sda: true,
                validators: true,
                ..verified
            },
        ),
        (
            "verified+sched",
            PassConfig {
                schedule: true,
                validators: true,
                ..verified
            },
        ),
        (
            "verified+strength",
            PassConfig {
                strength: true,
                validators: true,
                ..verified
            },
        ),
        (
            "opt-full(validated)",
            PassConfig {
                validators: true,
                ..full
            },
        ),
    ]
}

fn search_spec(nodes: &[Node]) -> SearchSpec {
    let mut spec = SearchSpec::new().nodes(nodes);
    for (name, passes) in fixed_candidates() {
        spec = spec.seed(name, &passes);
    }
    spec
}

/// A small filter node whose gain constant varies per step — a distinct
/// source text, hence a distinct cache key, each iteration.
fn dirty_node(step: u32) -> Node {
    let mut b = NodeBuilder::new("dirty_filter");
    let x = b.acquisition(0);
    let f = b.second_order_filter(x, 0.2, 0.1, -0.3);
    let g = b.gain(f, 1.0 + f64::from(step) * 1e-6);
    b.output("dirty_filter_out", g);
    b.build().expect("well-formed")
}

fn benches() -> Bench {
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(10).collect();
    let spec = search_spec(&nodes);
    let mut g = Bench::group("search");

    // the pre-search driver: six fixed configs per node, no expansions
    let fixed_sweep = {
        let mut s = SweepSpec::new().nodes(&nodes);
        for (name, passes) in fixed_candidates() {
            s = s.config(name, &passes);
        }
        s
    };
    g.bench("suite10/fixed_seeds", || {
        let r = Pipeline::in_memory()
            .run_sweep(&fixed_sweep)
            .expect("fixed sweep");
        r.stats.jobs_run
    });

    g.bench("suite10/cold_search", || {
        let r = Pipeline::in_memory()
            .search_wcet(&spec)
            .expect("cold search");
        r.stats.jobs_run
    });

    let warm = Pipeline::in_memory();
    warm.search_wcet(&spec).expect("prewarm");
    g.bench("suite10/warm_research", || {
        let r = warm.search_wcet(&spec).expect("warm re-search");
        assert_eq!(r.stats.jobs_run, 0, "warm re-search recompiled a probe");
        r.stats.jobs_cached
    });

    let mut step = 0u32;
    g.bench("suite10/warm_1dirty", || {
        step += 1;
        let mut dirty = nodes[..9].to_vec();
        dirty.push(dirty_node(step));
        let r = warm
            .search_wcet(&search_spec(&dirty))
            .expect("1-dirty search");
        // the nine clean nodes replay; only the dirty node compiles
        assert!(r.stats.jobs_run > 0, "the dirty node missed no probe");
        r.stats.jobs_run
    });

    // one representative cold search's stats and span profile (including
    // the search:* provenance event counts) ride along in the summary
    let sample = Pipeline::in_memory()
        .search_wcet(&spec)
        .expect("sample run");
    g.note("stats", &sample.stats.to_json());
    g.note("profile", &sample.trace().profile().to_json());
    g
}

fn mean_of(g: &Bench, name: &str) -> f64 {
    g.results()
        .iter()
        .find(|r| r.name == name)
        .expect("bench ran")
        .mean_ns
}

fn main() {
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());

    // per-node improvement over the best fixed candidate, Table-1 suite
    let nodes = fleet::named_suite();
    let pipeline = Pipeline::in_memory();
    let fixed = {
        let mut s = SweepSpec::new().nodes(&nodes);
        for (name, passes) in fixed_candidates() {
            s = s.config(name, &passes);
        }
        pipeline.run_sweep(&s).expect("fixed sweep")
    };
    let searched = pipeline
        .search_wcet(&search_spec(&nodes))
        .expect("suite search");
    println!(
        "\n{:<24} {:>10} {:>10} {:>7}  winner",
        "node", "fixed best", "searched", "gain"
    );
    for (i, (node, search)) in nodes.iter().zip(&searched.nodes).enumerate() {
        let fixed_best = (0..fixed_candidates().len())
            .map(|c| fixed[(i, c, 0)].wcet())
            .min()
            .expect("six candidates");
        assert!(
            search.winner.wcet <= fixed_best,
            "{}: search winner {} worse than fixed best {fixed_best}",
            node.name(),
            search.winner.wcet
        );
        println!(
            "{:<24} {:>10} {:>10} {:>6.1}%  {}",
            node.name(),
            fixed_best,
            search.winner.wcet,
            100.0 * (1.0 - search.winner.wcet as f64 / fixed_best as f64),
            search.winner.label,
        );
    }
    println!(
        "suite search: {} probes, {} flags dominance-pruned, {} generations max",
        searched.total_probes(),
        searched.total_pruned(),
        searched
            .nodes
            .iter()
            .map(|n| n.generations)
            .max()
            .unwrap_or(0),
    );
    assert!(
        searched.total_pruned() > 0,
        "dominance pruning never fired on the suite"
    );

    let speedup = mean_of(&g, "suite10/cold_search") / mean_of(&g, "suite10/warm_1dirty");
    println!("1-dirty re-search speedup vs cold search: {speedup:.1}x (bar: 10x)");
    assert!(
        speedup >= 10.0,
        "1-dirty re-search speedup regressed below 10x: {speedup:.2}x"
    );
}
