//! E4 — regenerates the §3.4 annotation-pipeline comparison and benchmarks
//! the annotation machinery (file generation/parsing, analysis with the
//! constraints applied). Emits `BENCH_annotations.json`.

use std::path::Path;

use vericomp_bench::annotations;
use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::NodeBuilder;
use vericomp_testkit::bench::Bench;
use vericomp_wcet::annot::AnnotationFile;
use vericomp_wcet::{Analysis, AnalysisOptions, AnalysisRequest, Analyzer};

fn analyze_with(
    program: &vericomp_arch::Program,
    func: &str,
    opts: &AnalysisOptions,
) -> Result<vericomp_wcet::WcetReport, vericomp_wcet::AnalysisError> {
    Analyzer::new(*opts)
        .analyze(&AnalysisRequest::new(program, func))
        .map(Analysis::into_report)
}

fn scan_node_binary() -> vericomp_arch::Program {
    let mut b = NodeBuilder::new("annot");
    let x = b.global_input("annot_x");
    let y = b.lookup_search(
        x,
        vec![0.0, 10.0, 40.0, 90.0, 160.0, 250.0, 360.0],
        vec![1.0, 0.9, 0.7, 0.55, 0.4, 0.3, 0.25],
    );
    b.output("annot_y", y);
    let node = b.build().expect("fixed node is valid");
    Compiler::new(OptLevel::Verified)
        .compile(&node.to_minic(), "step")
        .expect("compiles")
}

fn benches() -> Bench {
    let bin = scan_node_binary();
    let mut g = Bench::group("annotations");
    g.bench("file/generate+serialize", || {
        AnnotationFile::from_program(&bin).to_text()
    });
    let text = AnnotationFile::from_program(&bin).to_text();
    g.bench("file/parse", || {
        AnnotationFile::parse(&text).expect("roundtrip")
    });
    g.bench("analyze/with_annotations", || {
        analyze_with(
            &bin,
            "step",
            &AnalysisOptions {
                use_annotations: true,
            },
        )
        .expect("bounded")
    });
    g.bench("analyze/without_annotations_fails", || {
        analyze_with(
            &bin,
            "step",
            &AnalysisOptions {
                use_annotations: false,
            },
        )
        .expect_err("must be unbounded")
    });
    g
}

fn main() {
    let e = annotations::run();
    println!("{}", annotations::render(&e));
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
