//! E6 — cold vs. warm vs. parallel fleet compilation through the
//! vericomp-pipeline service. Emits `BENCH_pipeline.json`.
//!
//! Regimes timed over the 26-node named suite at `verified`:
//!
//! * `fleet26/cold_serial` — the pre-pipeline path (plain compile+analyze
//!   loop), the baseline;
//! * `fleet26/cold_parallel` — fresh pipeline per iteration, empty cache,
//!   units overlap on the pool (pool spawn cost included);
//! * `fleet26/warm_cached` — persistent pipeline, every unit replays its
//!   stored verdict and WCET report;
//! * `fleet26/warm_one_dirty` — one node's spec changes every iteration
//!   (distinct revision => distinct artifact key), 25 replay, 1 recompiles.
//!
//! The acceptance bar asserted below: warm-cache recompilation with one
//! dirty node at least 5x faster than the cold serial baseline.

use std::path::Path;

use vericomp_bench::pipeline::{self, dirty_node};
use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::fleet;
use vericomp_pipeline::{Pipeline, SweepSpec};
use vericomp_testkit::bench::Bench;

fn benches() -> Bench {
    let nodes = fleet::named_suite();
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);
    let mut g = Bench::group("pipeline");

    let compiler = Compiler::new(OptLevel::Verified);
    g.bench("fleet26/cold_serial", || {
        for node in &nodes {
            let bin = compiler
                .compile(&node.to_minic(), "step")
                .expect("compiles");
            vericomp_wcet::Analyzer::default()
                .analyze(&vericomp_wcet::AnalysisRequest::new(&bin, "step"))
                .expect("analyzes");
        }
    });

    g.bench("fleet26/cold_parallel", || {
        let pipeline = Pipeline::in_memory();
        pipeline
            .run_sweep(&spec)
            .expect("cold sweep")
            .stats
            .jobs_run
    });

    let warm = Pipeline::in_memory();
    warm.run_sweep(&spec).expect("prewarm");
    g.bench("fleet26/warm_cached", || {
        let r = warm.run_sweep(&spec).expect("warm sweep");
        assert_eq!(r.stats.jobs_cached, nodes.len() as u64);
        r.stats.jobs_cached
    });

    // each iteration edits the probe node to a never-seen revision, so the
    // run is always 25 hits + 1 genuine recompile
    let mut revision = 0u32;
    let mut edited = nodes.clone();
    g.bench("fleet26/warm_one_dirty", || {
        edited[0] = dirty_node(revision);
        revision += 1;
        let dirty = SweepSpec::new().nodes(&edited).level(OptLevel::Verified);
        let r = warm.run_sweep(&dirty).expect("dirty sweep");
        assert_eq!(r.stats.jobs_run, 1);
        r.stats.jobs_cached
    });

    // one representative cold run's stats and span profile ride along in
    // the summary, so every BENCH_*.json shares the same stats schema
    let sample = Pipeline::in_memory().run_sweep(&spec).expect("sample run");
    g.note("stats", &sample.stats.to_json());
    g.note("profile", &sample.trace().profile().to_json());
    g
}

fn mean_of(g: &Bench, name: &str) -> f64 {
    g.results()
        .iter()
        .find(|r| r.name == name)
        .expect("bench ran")
        .mean_ns
}

fn main() {
    // the experiment artifact first (single-shot walls + hit rates)...
    let e6 = pipeline::run(0);
    println!("{}", pipeline::render(&e6));

    // ...then the calibrated benchmark rows
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());

    let speedup = mean_of(&g, "fleet26/cold_serial") / mean_of(&g, "fleet26/warm_one_dirty");
    println!("warm one-dirty rebuild speedup vs cold serial: {speedup:.1}x (bar: 5x)");
    assert!(
        speedup >= 5.0,
        "incremental rebuild speedup regressed below 5x: {speedup:.2}x"
    );
}
