//! E2 — regenerates the Figure 2 series (per-node WCET under the four
//! compiler configurations) and benchmarks the WCET analyzer. Emits
//! `BENCH_figure2.json`.

use std::path::Path;

use vericomp_bench::figure2;
use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::fleet;
use vericomp_testkit::bench::Bench;

fn benches() -> Bench {
    let node = fleet::named_suite()
        .into_iter()
        .find(|n| n.name() == "pitch_normal_law")
        .expect("suite contains the pitch law");
    let src = node.to_minic();

    let mut g = Bench::group("figure2");
    for level in OptLevel::all() {
        let bin = Compiler::new(level)
            .compile(&src, "step")
            .expect("compiles");
        g.bench(&format!("wcet_analyze/{level}"), || {
            vericomp_wcet::Analyzer::default()
                .analyze(&vericomp_wcet::AnalysisRequest::new(&bin, "step"))
                .expect("analyzable")
        });
    }
    g
}

fn main() {
    let fig = figure2::run();
    println!("{}", figure2::render(&fig));
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
