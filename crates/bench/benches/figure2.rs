//! E2 — regenerates the Figure 2 series (per-node WCET under the four
//! compiler configurations) and benchmarks the WCET analyzer.

use criterion::{criterion_group, Criterion};
use vericomp_bench::figure2;
use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::fleet;

fn bench_wcet_analysis(c: &mut Criterion) {
    let node = fleet::named_suite()
        .into_iter()
        .find(|n| n.name() == "pitch_normal_law")
        .expect("suite contains the pitch law");
    let src = node.to_minic();

    let mut g = c.benchmark_group("figure2");
    for level in OptLevel::all() {
        let bin = Compiler::new(level)
            .compile(&src, "step")
            .expect("compiles");
        g.bench_function(format!("wcet_analyze/{level}"), |b| {
            b.iter(|| vericomp_wcet::analyze(&bin, "step").expect("analyzable"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wcet_analysis);

fn main() {
    let fig = figure2::run();
    println!("{}", figure2::render(&fig));
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
