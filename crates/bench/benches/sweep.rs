//! E8 — cold vs. warm sweep-matrix compilation through `run_sweep`.
//! Emits `BENCH_sweep.json`.
//!
//! The matrix is 8 suite nodes × the four compiler configurations × two
//! machine models (MPC755 and a 4x-slower-memory variant) = 64 cells, the
//! shape of a WCET sensitivity study. Regimes:
//!
//! * `matrix64/cold` — fresh pipeline per iteration, every cell compiles
//!   and analyzes on the pool (pool spawn cost included);
//! * `matrix64/warm` — persistent pipeline, every cell replays its stored
//!   verdict and WCET report from the content-addressed cache;
//! * `matrix64/widen_machine` — the incremental-study case: a third
//!   machine axis value is added, 64 cells replay, 32 compile.
//!
//! The acceptance bar asserted below: the warm sweep at least 5x faster
//! than the cold sweep.

use std::path::Path;

use vericomp_arch::MachineConfig;
use vericomp_bench::LEVELS;
use vericomp_dataflow::fleet;
use vericomp_pipeline::{Pipeline, SweepSpec};
use vericomp_testkit::bench::Bench;

fn slow_mem() -> MachineConfig {
    let mut m = MachineConfig::mpc755();
    m.mem_latency *= 4;
    m
}

fn benches() -> Bench {
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(8).collect();
    let spec = SweepSpec::new()
        .nodes(&nodes)
        .levels(LEVELS)
        .machine("mpc755", &MachineConfig::mpc755())
        .machine("slow-mem", &slow_mem());
    let cells = spec.cell_count();
    let mut g = Bench::group("sweep");

    g.bench("matrix64/cold", || {
        let r = Pipeline::in_memory().run_sweep(&spec).expect("cold sweep");
        assert_eq!(r.cell_count(), cells);
        r.stats.jobs_run
    });

    let warm = Pipeline::in_memory();
    warm.run_sweep(&spec).expect("prewarm");
    g.bench("matrix64/warm", || {
        let r = warm.run_sweep(&spec).expect("warm sweep");
        assert_eq!(r.stats.jobs_cached, cells as u64);
        r.stats.jobs_cached
    });

    // widening the machine axis: every old cell replays, only the new
    // machine's column compiles
    let mut latency = 0u32;
    g.bench("matrix64/widen_machine", || {
        let mut extra = MachineConfig::mpc755();
        // a never-seen latency each iteration => a genuinely new column
        // (additive so it never collides with the x4 slow-mem axis)
        latency += 1;
        extra.mem_latency += latency;
        let widened = spec.clone().machine("extra", &extra);
        let r = warm.run_sweep(&widened).expect("widened sweep");
        assert_eq!(r.stats.jobs_cached, cells as u64);
        assert_eq!(r.stats.jobs_run, (nodes.len() * LEVELS.len()) as u64);
        r.stats.jobs_run
    });

    // one representative cold run's stats and span profile ride along in
    // the summary, so every BENCH_*.json shares the same stats schema
    let sample = Pipeline::in_memory().run_sweep(&spec).expect("sample run");
    g.note("stats", &sample.stats.to_json());
    g.note("profile", &sample.trace().profile().to_json());
    g
}

fn mean_of(g: &Bench, name: &str) -> f64 {
    g.results()
        .iter()
        .find(|r| r.name == name)
        .expect("bench ran")
        .mean_ns
}

fn main() {
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());

    let speedup = mean_of(&g, "matrix64/cold") / mean_of(&g, "matrix64/warm");
    println!("warm sweep speedup vs cold: {speedup:.1}x (bar: 5x)");
    assert!(
        speedup >= 5.0,
        "warm sweep speedup regressed below 5x: {speedup:.2}x"
    );
}
