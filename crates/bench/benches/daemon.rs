//! E11 — the compile service: client latency and batching throughput
//! against a live `vericomp-serve` daemon. Emits `BENCH_daemon.json`.
//!
//! One in-process server (4 shards, unbounded store) serves every regime
//! over its Unix socket, exactly the deployment shape of
//! `vericomp_serve` + `compile_fleet --connect`:
//!
//! * `fleet26/cold_client` — one-shot (recorded in the `latency` note):
//!   first request of the 26-node suite against an empty store, the full
//!   cold path over the wire;
//! * `fleet26/warm_client` — the same request replayed from the warm
//!   shared store, protocol + replay cost only;
//! * `batch4/concurrent_clients` — four clients submit overlapping
//!   4-node specs (plus one never-seen dirty node each) at once; the
//!   server coalesces them into batched sweeps;
//! * `batch4/serial_client` — the identical four specs one after another
//!   on a single connection, the unbatched baseline.
//!
//! The soak: the E10 5 000-task scenario (10k+ units) through the
//! daemon, digest-checked against a solo `run_sweep` of the same spec,
//! then replayed warm (asserted 100% hits, **zero unit bodies
//! uploaded** — the v2 protocol resolves every unit from the parse
//! cache by digest) and warm again from a *fresh* connection that has
//! to negotiate `have`/`need` first (also zero uploads). The daemon's
//! own [`ServerStats`] ride along in the summary under the `server`
//! note, so `BENCH_daemon.json` records hit rate, evictions, wire
//! bytes, parse-cache traffic and per-stage nanos next to the timings —
//! and the full metrics registry (per-request latency, batch-size and
//! queue-depth histograms with p50/p90/p99, plus its counter digest)
//! rides under the `metrics` note.
//!
//! Acceptance bars asserted below: the warm served request is at least
//! 5x faster than the cold one, the warm soak beats the recorded v1
//! line-protocol soak by ≥3x at matched machine speed (same
//! compile-span calibration as the E12 analyzer bar — the compile
//! stage is byte-identical code between the recording and this bench),
//! the flight recorder costs < 3% on the warm soak vs a `--no-recorder`
//! daemon (best-of-3 each, 25 ms absolute noise floor), and all digests
//! equal the solo runs.

use std::path::Path;
use std::time::Instant;

use vericomp_arch::MachineConfig;
use vericomp_bench::pipeline::dirty_node;
use vericomp_core::OptLevel;
use vericomp_dataflow::fleet;
use vericomp_pipeline::{
    normalize_spec, Client, Pipeline, PipelineOptions, Server, ServerOptions, SweepSpec,
};
use vericomp_testkit::bench::Bench;
use vericomp_testkit::scenario::{Scenario, ScenarioConfig};

/// The v1 line protocol's recorded E10 warm soak (commit fa47cbf:
/// pretty-print + re-upload + re-parse of all 12 692 units per request),
/// and the same recording's solo compile-stage span for machine
/// calibration — compile is byte-identical code between that recording
/// and this bench, so `measured_compile / recorded_compile` normalizes
/// the asserted speedup the same way the E12 analyzer bar does. The
/// recording ran the solo sweep under `jobs(8)`, so the calibration
/// sweep below does too: per-cell stage spans include worker
/// contention, and the ratio only cancels it when both runs share the
/// same worker count.
const V1_OLD_SOAK_WARM_NS: u64 = 5_400_000_000;
const V1_OLD_COMPILE_NS: u64 = 58_709_781_411;

fn soak_config() -> ScenarioConfig {
    ScenarioConfig::builder()
        .name("scn10k")
        .tasks(5_000)
        .symbols(10, 28)
        .frames(8)
        .seed(0x10_000)
        .build()
        .expect("valid config")
}

fn main() {
    let socket = std::env::temp_dir().join(format!("vericomp-bench-{}.sock", std::process::id()));
    let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
    let handle = std::thread::spawn(move || server.run().expect("serves"));

    let suite = fleet::named_suite();
    let spec = normalize_spec(
        &SweepSpec::new().nodes(&suite).level(OptLevel::Verified),
        &MachineConfig::mpc755(),
    );
    let solo = Pipeline::in_memory().run_sweep(&spec).expect("solo sweep");

    // cold latency is a one-shot: the store is only empty once
    let mut client = Client::connect(&socket).expect("connects");
    let t = Instant::now();
    let cold = client.run_sweep(&spec).expect("cold request");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.digest, solo.digest(), "cold served digest != solo");

    let mut g = Bench::group("daemon");
    g.bench("fleet26/warm_client", || {
        let r = client.run_sweep(&spec).expect("warm request");
        assert_eq!(r.digest, solo.digest(), "warm served digest != solo");
        r.stats.jobs_cached
    });
    let warm_ns = g.results()[0].mean_ns;
    println!(
        "daemon: fleet26 cold {cold_ms:.1} ms, warm {:.1} ms over the socket",
        warm_ns / 1e6
    );

    // four overlapping specs; each iteration dirties one never-seen node
    // per client so every round carries 4 genuine compiles
    let batch_specs = |revision: u32| -> Vec<SweepSpec> {
        (0..4u32)
            .map(|i| {
                let lo = (i as usize) * 4;
                let mut nodes = suite[lo..lo + 4].to_vec();
                nodes.push(dirty_node(revision * 4 + i));
                normalize_spec(
                    &SweepSpec::new().nodes(&nodes).level(OptLevel::Verified),
                    &MachineConfig::mpc755(),
                )
            })
            .collect()
    };

    let mut revision = 0u32;
    let mut pool: Vec<Client> = (0..4)
        .map(|_| Client::connect(&socket).expect("connects"))
        .collect();
    g.bench("batch4/concurrent_clients", || {
        let specs = batch_specs(revision);
        revision += 1;
        std::thread::scope(|s| {
            let joins: Vec<_> = pool
                .iter_mut()
                .zip(&specs)
                .map(|(c, spec)| s.spawn(move || c.run_sweep(spec).expect("served").cells.len()))
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("client thread"))
                .sum::<usize>()
        })
    });
    g.bench("batch4/serial_client", || {
        let specs = batch_specs(revision);
        revision += 1;
        specs
            .iter()
            .map(|spec| client.run_sweep(spec).expect("served").cells.len())
            .sum::<usize>()
    });

    // the E10 soak: the 5k-task scenario (10k+ units) through the daemon,
    // bit-identical to a solo run of the same lowered spec
    let scenario = Scenario::generate(&soak_config()).expect("generates");
    let units = scenario.units().len();
    assert!(units >= 10_000, "soak workload shrank to {units} units");
    let soak_spec = normalize_spec(&scenario.to_sweep_spec(), &MachineConfig::mpc755());
    // jobs(8) matches the recorded run that produced V1_OLD_COMPILE_NS
    // (see the constant's doc comment) — the calibration ratio is only
    // meaningful under the recording's worker count
    let solo_soak = Pipeline::new(
        &PipelineOptions::builder()
            .jobs(8)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline")
    .run_sweep(&soak_spec)
    .expect("solo soak");
    let t = Instant::now();
    let served_soak = client.run_sweep(&soak_spec).expect("soak request");
    let soak_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        served_soak.digest,
        solo_soak.digest(),
        "soak served digest != solo"
    );
    let before_warm = client.server_stats().expect("stats");
    let t = Instant::now();
    let warm_soak = client.run_sweep(&soak_spec).expect("warm soak");
    let soak_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm_soak.stats.jobs_cached, units as u64, "soak not warm");
    assert_eq!(warm_soak.digest, solo_soak.digest(), "warm soak != solo");
    let after_warm = client.server_stats().expect("stats");
    assert_eq!(
        after_warm.units_uploaded, before_warm.units_uploaded,
        "warm soak uploaded unit bodies"
    );
    println!(
        "daemon: scenario soak {units} units cold {soak_ms:.0} ms, \
         warm {soak_warm_ms:.0} ms (0 bodies uploaded), digest {}",
        served_soak.digest
    );

    // a fresh connection knows nothing: it must negotiate, and the
    // negotiation must conclude every digest is already parse-cached
    let mut fresh = Client::connect(&socket).expect("connects");
    let t = Instant::now();
    let fresh_soak = fresh.run_sweep(&soak_spec).expect("fresh warm soak");
    let soak_fresh_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fresh_soak.digest, solo_soak.digest(), "fresh soak != solo");
    let after_fresh = fresh.server_stats().expect("stats");
    assert_eq!(
        after_fresh.units_uploaded, after_warm.units_uploaded,
        "fully-cached fresh client uploaded unit bodies"
    );
    assert!(
        after_fresh.units_offered > after_warm.units_offered,
        "fresh client skipped negotiation"
    );
    println!(
        "daemon: fresh-client warm soak {soak_fresh_ms:.0} ms (negotiated, 0 bodies uploaded)"
    );

    let server_stats = client.server_stats().expect("stats");
    println!(
        "daemon: request latency p50 {:.1} ms p99 {:.1} ms over {} requests \
         (proto 2.{})",
        server_stats.request_p50_ns as f64 / 1e6,
        server_stats.request_p99_ns as f64 / 1e6,
        server_stats.requests,
        server_stats.proto_minor,
    );
    // E12-style machine calibration: the recorded 5.4 s warm soak came
    // with a recorded solo compile span; the same compile code just ran
    // in this process, so the span ratio is this host's speed factor
    #[allow(clippy::cast_precision_loss)]
    let machine = solo_soak.stats.compile_ns as f64 / V1_OLD_COMPILE_NS as f64;
    #[allow(clippy::cast_precision_loss)]
    let raw_soak_speedup = V1_OLD_SOAK_WARM_NS as f64 / (soak_warm_ms * 1e6);
    let soak_speedup = raw_soak_speedup * machine;
    println!(
        "daemon: warm soak {soak_warm_ms:.0} ms vs recorded v1 {:.0} ms -> \
         {soak_speedup:.1}x at matched machine speed ({raw_soak_speedup:.1}x \
         raw, host {machine:.2}x the recording's compile throughput; bar: 3x)",
        V1_OLD_SOAK_WARM_NS as f64 / 1e6,
    );

    g.note(
        "latency",
        &format!(
            "{{\"fleet26_cold_ms\":{cold_ms:.2},\"fleet26_warm_ms\":{:.2},\
             \"soak_units\":{units},\"soak_cold_ms\":{soak_ms:.1},\
             \"soak_warm_ms\":{soak_warm_ms:.1},\
             \"soak_fresh_warm_ms\":{soak_fresh_ms:.1},\
             \"old_soak_warm_ns\":{V1_OLD_SOAK_WARM_NS},\
             \"old_compile_ns\":{V1_OLD_COMPILE_NS},\
             \"soak_speedup\":{soak_speedup:.2},\
             \"raw_soak_speedup\":{raw_soak_speedup:.2},\
             \"machine\":{machine:.3}}}",
            warm_ns / 1e6
        ),
    );
    g.note("server", &server_stats.to_json());
    g.note("stats", &warm_soak.stats.to_json());
    g.note("metrics", &client.server_metrics().expect("metrics"));

    // recorder overhead on the warm soak: best-of-3 against the main
    // daemon (recorder on, store already warm), then best-of-3 against a
    // fresh --no-recorder daemon warmed by one cold soak of the same spec
    let best_of_warm = |c: &mut Client, runs: u32| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..runs {
            let t = Instant::now();
            let r = c.run_sweep(&soak_spec).expect("warm soak");
            assert_eq!(r.digest, solo_soak.digest(), "warm soak != solo");
            best = best.min(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        best
    };
    let rec_on_ns = best_of_warm(&mut client, 3);

    let mut admin = Client::connect(&socket).expect("connects");
    admin.shutdown().expect("acknowledged");
    let final_stats = handle.join().expect("clean run");
    assert!(!socket.exists(), "socket must be removed on shutdown");
    assert!(final_stats.requests > 0);

    let off_socket =
        std::env::temp_dir().join(format!("vericomp-bench-norec-{}.sock", std::process::id()));
    let mut off_options = ServerOptions::new(&off_socket);
    off_options.recorder = false;
    let off_server = Server::new(&off_options).expect("binds");
    let off_handle = std::thread::spawn(move || off_server.run().expect("serves"));
    let mut off_client = Client::connect(&off_socket).expect("connects");
    let warmed = off_client.run_sweep(&soak_spec).expect("cold soak");
    assert_eq!(
        warmed.digest,
        solo_soak.digest(),
        "no-recorder soak != solo"
    );
    let rec_off_ns = best_of_warm(&mut off_client, 3);
    off_client.shutdown().expect("acknowledged");
    off_handle.join().expect("clean run");

    #[allow(clippy::cast_precision_loss)]
    let rec_overhead = rec_on_ns as f64 / rec_off_ns as f64 - 1.0;
    println!(
        "daemon: recorder overhead on warm soak {:+.2}% (on {:.0} ms, off {:.0} ms; bar < 3%)",
        rec_overhead * 100.0,
        rec_on_ns as f64 / 1e6,
        rec_off_ns as f64 / 1e6,
    );
    g.note(
        "recorder",
        &format!(
            "{{\"warm_on_ns\":{rec_on_ns},\"warm_off_ns\":{rec_off_ns},\
             \"overhead\":{rec_overhead:.4}}}"
        ),
    );
    // 25 ms absolute noise floor keeps sub-second denominators from
    // turning scheduler jitter into a spurious percentage failure
    assert!(
        rec_on_ns <= rec_off_ns + rec_off_ns * 3 / 100 + 25_000_000,
        "flight recorder costs more than 3% on the warm soak:          on {rec_on_ns} ns vs off {rec_off_ns} ns ({:+.2}%)",
        rec_overhead * 100.0,
    );

    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());

    let speedup = cold_ms * 1e6 / warm_ns;
    println!("warm served request speedup vs cold: {speedup:.1}x (bar: 5x)");
    assert!(
        speedup >= 5.0,
        "warm daemon replay regressed below 5x vs cold: {speedup:.2}x"
    );
    assert!(
        soak_speedup >= 3.0,
        "warm soak regressed below 3x vs the recorded v1 protocol: \
         {soak_speedup:.2}x ({raw_soak_speedup:.2}x raw, machine factor \
         {machine:.2})"
    );
}
