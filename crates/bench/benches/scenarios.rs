//! E10 — scenario-suite scale: 10k+-unit generated multi-rate scenarios
//! through `Pipeline::run_sweep`, with the schedulability verdict joined
//! on top. Emits `BENCH_scenarios.json`.
//!
//! The workload is one `Scenario` of 5 000 periodic tasks on an 8-frame
//! major cycle with the three default modes — after variant derivation
//! and structural dedup, 10k+ distinct compilation units. Regimes:
//!
//! * `generate/10k` — seed → scenario derivation (census draws, mode
//!   variants, budgets), no compilation;
//! * `lower/10k` — `Scenario::to_sweep_spec`, the front-door lowering;
//! * `sched_check/10k` — joining a finished sweep's WCET bounds against
//!   the frame budgets into the verdict report;
//! * `sweep_warm/10k` — full warm replay of the 10k-unit sweep from the
//!   content-addressed cache (asserted 100% hit rate).
//!
//! The cold 10k sweep is measured once per job count (it is far too slow
//! to sample repeatedly) and recorded in the `scale` note, together with
//! the acceptance-criterion check: the sweep digest **and** the
//! schedulability report digest at `jobs=8` equal `jobs=1` bit for bit.
//! A representative run's stats and span profile ride along in the
//! summary (the PR 5 schema shared by every `BENCH_*.json`).

use std::path::Path;
use std::time::Instant;

use vericomp_pipeline::{Pipeline, PipelineOptions, SweepResult, SweepSpec};
use vericomp_testkit::bench::Bench;
use vericomp_testkit::scenario::{Scenario, ScenarioConfig};

fn pipeline_with_jobs(jobs: usize) -> Pipeline {
    Pipeline::new(
        &PipelineOptions::builder()
            .jobs(jobs)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline")
}

fn scale_config() -> ScenarioConfig {
    ScenarioConfig::builder()
        .name("scn10k")
        .tasks(5_000)
        .symbols(10, 28)
        .frames(8)
        .seed(0x10_000)
        .build()
        .expect("valid config")
}

fn timed_cold_sweep(jobs: usize, spec: &SweepSpec) -> (f64, SweepResult) {
    let pipeline = pipeline_with_jobs(jobs);
    let t = Instant::now();
    let result = pipeline.run_sweep(spec).expect("cold sweep");
    (t.elapsed().as_secs_f64() * 1e3, result)
}

fn main() {
    let config = scale_config();
    let scenario = Scenario::generate(&config).expect("generates");
    let units = scenario.units().len();
    let symbols = scenario.total_symbols();
    println!(
        "scenarios: {} tasks -> {units} units, {symbols} symbols",
        scenario.tasks().len()
    );
    assert!(units >= 10_000, "scale workload shrank to {units} units");

    let mut g = Bench::group("scenarios");
    g.bench("generate/10k", || {
        let s = Scenario::generate(&config).expect("generates");
        assert_eq!(s.units().len(), units);
        s.units().len() as u64
    });
    g.bench("lower/10k", || {
        let spec = scenario.to_sweep_spec();
        assert_eq!(spec.units().len(), units);
        spec.units().len() as u64
    });

    // the acceptance criterion, measured rather than sampled: one cold
    // 10k-unit sweep per job count, digests compared bit for bit
    let spec = scenario.to_sweep_spec();
    let (cold8_ms, sweep8) = timed_cold_sweep(8, &spec);
    let (cold1_ms, sweep1) = timed_cold_sweep(1, &spec);
    assert_eq!(
        sweep8.digest(),
        sweep1.digest(),
        "10k sweep diverges across job counts"
    );
    let report8 = scenario.check(&sweep8);
    let report1 = scenario.check(&sweep1);
    assert_eq!(
        report8.digest(),
        report1.digest(),
        "10k schedulability report diverges across job counts"
    );
    assert!(report8.feasible(), "derived budgets must fit at scale");
    println!(
        "scenarios: cold sweep jobs=8 {cold8_ms:.0} ms, jobs=1 {cold1_ms:.0} ms, \
         sched digest {}",
        report8.digest()
    );
    drop(sweep1);

    g.bench("sched_check/10k", || {
        let report = scenario.check(&sweep8);
        assert_eq!(report.verdicts.len(), report8.verdicts.len());
        report.verdicts.len() as u64
    });

    let warm = pipeline_with_jobs(8);
    warm.run_sweep(&spec).expect("prewarm");
    g.bench("sweep_warm/10k", || {
        let r = warm.run_sweep(&spec).expect("warm sweep");
        assert_eq!(r.stats.jobs_cached, units as u64, "warm sweep missed");
        r.stats.jobs_cached
    });

    g.note(
        "scale",
        &format!(
            "{{\"tasks\":{},\"units\":{units},\"symbols\":{symbols},\
             \"cold_jobs8_ms\":{cold8_ms:.1},\"cold_jobs1_ms\":{cold1_ms:.1},\
             \"sweep_digest\":\"{}\",\"sched_digest\":\"{}\",\
             \"verdicts\":{},\"infeasible\":{}}}",
            scenario.tasks().len(),
            sweep8.digest(),
            report8.digest(),
            report8.verdicts.len(),
            report8.infeasible_count(),
        ),
    );
    g.note("stats", &sweep8.stats.to_json());
    g.note("profile", &sweep8.trace().profile().to_json());

    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
