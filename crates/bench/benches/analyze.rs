//! E12 — the session WCET analyzer: sparse worklist fixpoints,
//! hash-consed abstract states, and the per-function incremental fact
//! cache behind `Analyzer`. Emits `BENCH_analyze.json`.
//!
//! Regimes on the 26-node suite (compiled once, analysis isolated from
//! compilation):
//!
//! * `fleet26/cold` — a fresh `Analyzer` session per iteration, every
//!   function runs its fixpoint;
//! * `fleet26/warm` — a persistent session, every function replays from
//!   the fact cache (asserted: zero fixpoints run);
//! * `fleet26/one_dirty` — the incremental-study case: one node is
//!   re-linked against a never-seen machine latency each iteration, so
//!   exactly that node's functions re-analyze while the other 25
//!   programs replay.
//!
//! The E10-scale acceptance criterion is measured once rather than
//! sampled: the 12 692-unit scenario sweep from `BENCH_scenarios.json`
//! is re-run cold, its analyze-stage total compared against the
//! recorded pre-worklist number (bar: ≥5× faster), and its sweep and
//! schedulability digests compared bit for bit against the values the
//! dense-iteration analyzer produced. A warm `reanalyze_sweep` audit of
//! all unique artifacts then times pure fact-cache replay at scale.
//! Session counters (fixpoints run, cache replays, live facts, interned
//! arena nodes) ride along in the `analyzer` note.

use std::path::Path;
use std::time::Instant;

use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::fleet;
use vericomp_pipeline::{Pipeline, PipelineOptions};
use vericomp_testkit::bench::Bench;
use vericomp_testkit::scenario::{Scenario, ScenarioConfig};
use vericomp_wcet::{AnalysisRequest, Analyzer};

/// The pre-worklist analyzer's E10 analyze-stage total and output
/// digests, recorded by `BENCH_scenarios.json` at commit de4f9e9 (dense
/// per-block re-joins, no sharing, no fact cache). The rewrite must beat
/// the time by ≥5× while reproducing both digests bit for bit.
///
/// The compile stage is byte-identical code between that recording and
/// this bench, so its recorded span calibrates machine speed: the asserted
/// speedup is normalized by `measured_compile / recorded_compile`, making
/// the comparison meaningful on a host whose throughput has drifted since
/// the recording (the raw, uncalibrated ratio is printed alongside).
const E10_OLD_ANALYZE_NS: u64 = 111_084_392_785;
const E10_OLD_COMPILE_NS: u64 = 58_709_781_411;
const E10_SWEEP_DIGEST: &str = "d1154ee1b405f0868553bbaa2dd0946f";
const E10_SCHED_DIGEST: &str = "6915d79ae126aaf8a63818514ede155e";

fn scale_config() -> ScenarioConfig {
    ScenarioConfig::builder()
        .name("scn10k")
        .tasks(5_000)
        .symbols(10, 28)
        .frames(8)
        .seed(0x10_000)
        .build()
        .expect("valid config")
}

fn suite_programs() -> Vec<vericomp_arch::Program> {
    fleet::named_suite()
        .iter()
        .map(|n| {
            Compiler::new(OptLevel::Verified)
                .compile(&n.to_minic(), "step")
                .expect("suite node compiles")
        })
        .collect()
}

fn benches() -> Bench {
    let programs = suite_programs();
    let n = programs.len();
    let mut g = Bench::group("analyze");

    g.bench("fleet26/cold", || {
        let session = Analyzer::default();
        let mut total = 0u64;
        for p in &programs {
            total += session
                .analyze(&AnalysisRequest::new(p, "step"))
                .expect("bounded")
                .report
                .wcet;
        }
        total
    });

    let warm = Analyzer::default();
    for p in &programs {
        warm.analyze(&AnalysisRequest::new(p, "step"))
            .expect("prewarm");
    }
    g.bench("fleet26/warm", || {
        let mut reused = 0u64;
        for p in &programs {
            let a = warm
                .analyze(&AnalysisRequest::new(p, "step"))
                .expect("bounded");
            assert_eq!(a.functions_analyzed, 0, "warm replay ran a fixpoint");
            reused += a.functions_reused;
        }
        reused
    });

    // one dirty node out of 26: a never-seen memory latency re-keys every
    // function of program 0 (the machine fingerprint is part of the fact
    // digest), while the other 25 programs replay from the session cache
    let mut latency = 0u32;
    g.bench("fleet26/one_dirty", || {
        latency += 1;
        let mut dirty = programs[0].clone();
        dirty.config.mem_latency += latency;
        let a = warm
            .analyze(&AnalysisRequest::new(&dirty, "step"))
            .expect("bounded");
        assert!(a.functions_analyzed >= 1, "dirty node came from cache");
        for p in &programs[1..] {
            let a = warm
                .analyze(&AnalysisRequest::new(p, "step"))
                .expect("bounded");
            assert_eq!(a.functions_analyzed, 0, "clean node re-ran a fixpoint");
        }
        n as u64
    });

    let s = warm.stats();
    g.note(
        "analyzer",
        &format!(
            "{{\"functions_analyzed\":{},\"functions_reused\":{},\
             \"facts_cached\":{},\"arena_nodes\":{}}}",
            s.functions_analyzed, s.functions_reused, s.facts_cached, s.arena_nodes
        ),
    );
    g
}

fn main() {
    let mut g = benches();

    // E10 scale, measured once: the acceptance criterion for the sparse
    // worklist rewrite, against the recorded dense-analyzer numbers
    let scenario = Scenario::generate(&scale_config()).expect("generates");
    let spec = scenario.to_sweep_spec();
    let units = scenario.units().len();
    let pipeline = Pipeline::new(
        &PipelineOptions::builder()
            .jobs(8)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline");
    let t = Instant::now();
    let mut sweep = pipeline.run_sweep(&spec).expect("cold sweep");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sweep.digest().to_string(),
        E10_SWEEP_DIGEST,
        "sweep digest diverged from the pre-rewrite analyzer"
    );
    let report = scenario.check(&sweep);
    assert_eq!(
        report.digest().to_string(),
        E10_SCHED_DIGEST,
        "sched digest diverged from the pre-rewrite analyzer"
    );
    let analyze_ns = sweep.stats.analyze_ns;
    let compile_ns = sweep.stats.compile_ns;
    let raw_speedup = E10_OLD_ANALYZE_NS as f64 / analyze_ns as f64;
    let machine = compile_ns as f64 / E10_OLD_COMPILE_NS as f64;
    let speedup = raw_speedup * machine;
    println!(
        "analyze: E10 analyze stage {:.1} ms over {units} units \
         (dense analyzer: {:.1} ms) -> {speedup:.1}x at matched machine \
         speed ({raw_speedup:.1}x raw, host {machine:.2}x the recording's \
         compile throughput; bar: 5x)",
        analyze_ns as f64 / 1e6,
        E10_OLD_ANALYZE_NS as f64 / 1e6,
    );
    assert!(
        speedup >= 5.0,
        "analyze-stage speedup regressed below 5x: {speedup:.2}x \
         ({raw_speedup:.2}x raw, machine factor {machine:.2})"
    );

    // warm re-derivation of every unique artifact through the session
    // analyzer that just ran the sweep: pure fact-cache replay at scale
    let t = Instant::now();
    let audit = pipeline.reanalyze_sweep(&mut sweep).expect("reanalyzes");
    let reanalyze_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(audit.functions_analyzed, 0, "warm audit re-ran fixpoints");
    assert!(audit.mismatches.is_empty(), "{:?}", audit.mismatches);
    println!(
        "analyze: warm re-derivation of {} artifacts in {reanalyze_ms:.1} ms \
         ({} fact replays)",
        audit.artifacts, audit.functions_reused,
    );

    let s = pipeline.analyzer().stats();
    g.note(
        "scale",
        &format!(
            "{{\"units\":{units},\"cold_sweep_ms\":{cold_ms:.1},\
             \"analyze_ns\":{analyze_ns},\"old_analyze_ns\":{E10_OLD_ANALYZE_NS},\
             \"compile_ns\":{compile_ns},\"old_compile_ns\":{E10_OLD_COMPILE_NS},\
             \"speedup\":{speedup:.2},\"raw_speedup\":{raw_speedup:.2},\
             \"machine\":{machine:.3},\"reanalyze_ms\":{reanalyze_ms:.1},\
             \"reanalyze_artifacts\":{},\"fact_replays\":{},\
             \"facts_cached\":{},\"arena_nodes\":{},\
             \"sweep_digest\":\"{E10_SWEEP_DIGEST}\",\
             \"sched_digest\":\"{E10_SCHED_DIGEST}\"}}",
            audit.artifacts, audit.functions_reused, s.facts_cached, s.arena_nodes,
        ),
    );
    g.note("stats", &sweep.stats.to_json());
    g.note("profile", &sweep.trace().profile().to_json());

    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
