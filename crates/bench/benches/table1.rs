//! E1 — regenerates the §3.3 / Table 1 rows (code size, cache reads, cache
//! writes per compiler configuration) and benchmarks the measurement
//! pipeline itself. Emits `BENCH_table1.json`.

use std::path::Path;

use vericomp_bench::table1;
use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_testkit::bench::Bench;
use vericomp_testkit::fleet::{self, FleetConfig};

fn benches() -> Bench {
    let node = &fleet::random_fleet(&FleetConfig {
        nodes: 1,
        ..FleetConfig::default()
    })[0];
    let src = node.to_minic();

    let mut g = Bench::group("table1");
    for level in [OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull] {
        let compiler = Compiler::new(level);
        g.bench(&format!("compile/{level}"), || {
            compiler.compile(&src, "step").expect("compiles")
        });
    }
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&src, "step")
        .expect("compiles");
    let mut sim = Simulator::new(bin);
    sim.set_io_f64(0, 1.5);
    g.bench("simulate/one_activation", || {
        sim.run(10_000_000).expect("runs")
    });
    g
}

fn main() {
    // Regenerate the table first (the artifact), then time the pipeline.
    let t = table1::run_fleet(40, 4);
    println!("{}", table1::render(&t));
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
