//! E1 — regenerates the §3.3 / Table 1 rows (code size, cache reads, cache
//! writes per compiler configuration) and benchmarks the measurement
//! pipeline itself.

use criterion::{criterion_group, Criterion};
use vericomp_bench::table1;
use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::fleet::{self, FleetConfig};
use vericomp_mach::Simulator;

fn bench_compile_and_simulate(c: &mut Criterion) {
    let node = &fleet::random_fleet(&FleetConfig {
        nodes: 1,
        ..FleetConfig::default()
    })[0];
    let src = node.to_minic();

    let mut g = c.benchmark_group("table1");
    for level in [OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull] {
        g.bench_function(format!("compile/{level}"), |b| {
            let compiler = Compiler::new(level);
            b.iter(|| compiler.compile(&src, "step").expect("compiles"));
        });
    }
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&src, "step")
        .expect("compiles");
    g.bench_function("simulate/one_activation", |b| {
        let mut sim = Simulator::new(bin.clone());
        sim.set_io_f64(0, 1.5);
        b.iter(|| sim.run(10_000_000).expect("runs"));
    });
    g.finish();
}

criterion_group!(benches, bench_compile_and_simulate);

fn main() {
    // Regenerate the table first (the artifact), then time the pipeline.
    let t = table1::run_fleet(40, 4);
    println!("{}", table1::render(&t));
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
