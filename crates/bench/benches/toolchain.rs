//! E5 + component microbenchmarks: regenerates the ablation table of the
//! compiler's design choices and times the individual toolchain stages
//! (lowering, optimization, register allocation + validation, emission,
//! binary encode/decode, simulator throughput). Emits
//! `BENCH_toolchain.json`.

use std::path::Path;

use vericomp_bench::ablation;
use vericomp_core::{lower, opt, regalloc, validate, Compiler, OptLevel};
use vericomp_dataflow::fleet;
use vericomp_mach::Simulator;
use vericomp_testkit::bench::Bench;

fn pitch_src() -> vericomp_minic::ast::Program {
    fleet::named_suite()
        .into_iter()
        .find(|n| n.name() == "pitch_normal_law")
        .expect("suite contains the pitch law")
        .to_minic()
}

fn benches() -> Bench {
    let src = pitch_src();
    let func = &src.functions[0];
    let mut g = Bench::group("toolchain");

    g.bench("lower", || {
        lower::lower_function(&src, func).expect("lowers")
    });

    let lowered = lower::lower_function(&src, func).expect("lowers");
    g.bench("opt/mem2reg+cse+dce", || {
        let mut f = lowered.clone();
        opt::mem2reg::run(&mut f);
        opt::constprop::run(&mut f);
        opt::cse::run(&mut f);
        opt::dce::run(&mut f);
        f
    });

    let mut optimized = lowered.clone();
    opt::mem2reg::run(&mut optimized);
    opt::constprop::run(&mut optimized);
    opt::cse::run(&mut optimized);
    opt::dce::run(&mut optimized);
    g.bench("regalloc+validate", || {
        let mut f = optimized.clone();
        let alloc = regalloc::allocate(&mut f, &regalloc::Palette::full()).expect("colors");
        validate::check_allocation(&f, &alloc).expect("valid");
        alloc
    });

    let bin = Compiler::new(OptLevel::Verified)
        .compile(&src, "step")
        .expect("compiles");
    g.bench("binary/encode_text", || bin.encode_text());
    let words = bin.encode_text();
    g.bench("binary/decode_text", || {
        vericomp_arch::Program::decode_text(&bin.config, &words).expect("decodes")
    });

    let mut sim = Simulator::new(bin.clone());
    for p in 0..4 {
        sim.set_io_f64(p, 2.0);
    }
    g.bench("simulator/activation_throughput", || {
        sim.run(10_000_000).expect("runs")
    });
    g
}

fn main() {
    let a = ablation::run();
    println!("{}", ablation::render(&a));
    let g = benches();
    println!("{}", g.render());
    let path = g.write_json(Path::new(".")).expect("writes summary");
    println!("wrote {}", path.display());
}
