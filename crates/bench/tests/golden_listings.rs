//! Golden snapshot tests for the paper's Listing 1 / Listing 2 comparison
//! (§3.3): the exact assembly the two compilers produce for the ADD-symbol
//! experiment is pinned, so any codegen change shows up as a readable
//! diff against `tests/golden/listing{1,2}.txt`.
//!
//! To accept an intentional codegen change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p vericomp-bench --test golden_listings
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use vericomp_bench::listings;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        fs::write(&path, actual).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden snapshot; \
         re-run with UPDATE_GOLDEN=1 if the codegen change is intentional"
    );
}

#[test]
fn listing1_pattern_assembly_is_pinned() {
    let l = listings::run();
    check_golden("listing1.txt", &l.pattern);
}

#[test]
fn listing2_verified_assembly_is_pinned() {
    let l = listings::run();
    check_golden("listing2.txt", &l.verified);
}

/// The paper's qualitative claim, independent of exact register numbers:
/// the pattern compiler loads both operands, adds, and stores the result
/// (`lfd`/`lfd`/`fadd`/`stfd` in order), while the verified compiler's
/// statement region keeps values in registers — a bare `fadd` with no
/// surrounding reload/spill of the operands.
#[test]
fn listings_match_the_paper_shape() {
    let l = listings::run();

    // Listing 1: an lfd/lfd/fadd/stfd sequence appears in order.
    let lines: Vec<&str> = l.pattern.lines().collect();
    let mut want = ["lfd", "lfd", "fadd", "stfd"].iter();
    let mut next = want.next();
    for line in &lines {
        if let Some(op) = next {
            if line.contains(op) {
                next = want.next();
            }
        }
    }
    assert!(
        next.is_none(),
        "Listing 1 lacks the lfd/lfd/fadd/stfd pattern:\n{}",
        l.pattern
    );

    // Listing 2: the add survives, the memory traffic around it does not.
    assert!(l.verified.contains("fadd"), "{}", l.verified);
    let pattern_mem = l.mem_ops.0;
    let verified_mem = l.mem_ops.1;
    assert!(
        pattern_mem > 2 * verified_mem,
        "memory traffic must collapse: pattern {pattern_mem} vs verified {verified_mem}"
    );
}
