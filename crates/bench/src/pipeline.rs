//! E6 — throughput of the parallel compilation service.
//!
//! The paper's production setting compiles thousands of generated files
//! per release (§2.1: "about 2,500 files are compiled"); the pipeline
//! subsystem exists so that regenerating the evaluation — and, in the
//! modeled process, rebuilding the fleet after a control-law edit — is
//! bounded by the dirty cone, not the fleet size. This experiment
//! measures the four interesting regimes over the 26-node named suite:
//!
//! * **cold serial** — the pre-pipeline path: every node compiled and
//!   analyzed in a plain loop (the baseline every speedup is against);
//! * **cold parallel** — empty cache, all units overlap on the pool;
//! * **warm cached** — nothing changed, every unit replays its stored
//!   validator verdict and WCET report;
//! * **warm, one dirty node** — the incremental-rebuild case: one node's
//!   specification changed, 25 replay, 1 recompiles.

use std::time::Instant;

use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::{fleet, Node, NodeBuilder};
use vericomp_pipeline::{Pipeline, PipelineOptions, SweepSpec};

/// One measured regime.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Regime name.
    pub name: &'static str,
    /// End-to-end wall time in nanoseconds.
    pub wall_ns: u64,
    /// Cache hit rate of the run (0 for the serial baseline).
    pub hit_rate: f64,
    /// Speedup against the cold-serial baseline.
    pub speedup: f64,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct PipelineBench {
    /// Rows: cold serial, cold parallel, warm cached, warm one-dirty.
    pub rows: Vec<PipelineRow>,
    /// Worker threads the parallel regimes used.
    pub jobs: usize,
    /// Fleet size.
    pub nodes: usize,
}

/// A stand-in for "the engineer edited one control law": a small node
/// whose gain constant carries `revision`, so every revision has a
/// distinct generated source and therefore a distinct artifact key.
#[must_use]
pub fn dirty_node(revision: u32) -> Node {
    let mut b = NodeBuilder::new("dirty_probe");
    let x = b.acquisition(0);
    let g = b.gain(x, 1.0 + f64::from(revision) * 0.125);
    let f = b.first_order_filter(g, 0.25);
    let s = b.saturation(f, -10.0, 10.0);
    b.output("dirty_probe_out", s);
    b.build().expect("probe node is well-formed")
}

/// Runs the four regimes over the named suite at `verified`.
///
/// # Panics
///
/// Panics if the curated suite fails to compile or analyze.
#[must_use]
pub fn run(jobs: usize) -> PipelineBench {
    let nodes = fleet::named_suite();

    // cold serial: the pre-pipeline path
    let t0 = Instant::now();
    let compiler = Compiler::new(OptLevel::Verified);
    for node in &nodes {
        let bin = compiler
            .compile(&node.to_minic(), "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        vericomp_wcet::Analyzer::default()
            .analyze(&vericomp_wcet::AnalysisRequest::new(&bin, "step"))
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
    }
    let serial_ns = t0.elapsed().as_nanos() as u64;

    let pipeline = Pipeline::new(
        &PipelineOptions::builder()
            .jobs(jobs)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline");
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);

    // cold parallel: empty cache
    let cold = pipeline.run_sweep(&spec).expect("cold sweep");

    // warm: everything replays
    let warm = pipeline.run_sweep(&spec).expect("warm sweep");

    // warm + 1 dirty: one edited node misses, the rest replay
    let mut edited = nodes.clone();
    edited[0] = dirty_node(0);
    let dirty_spec = SweepSpec::new().nodes(&edited).level(OptLevel::Verified);
    let dirty = pipeline.run_sweep(&dirty_spec).expect("dirty sweep");

    let row = |name, wall_ns: u64, hit_rate| PipelineRow {
        name,
        wall_ns,
        hit_rate,
        speedup: serial_ns as f64 / wall_ns as f64,
    };
    PipelineBench {
        rows: vec![
            row("cold serial (pre-pipeline)", serial_ns, 0.0),
            row("cold parallel", cold.stats.wall_ns, cold.stats.hit_rate()),
            row("warm cached", warm.stats.wall_ns, warm.stats.hit_rate()),
            row(
                "warm, 1 dirty node",
                dirty.stats.wall_ns,
                dirty.stats.hit_rate(),
            ),
        ],
        jobs: pipeline.jobs(),
        nodes: nodes.len(),
    }
}

/// Renders the comparison table.
#[must_use]
pub fn render(b: &PipelineBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet compilation over {} nodes, {} workers (verified config):",
        b.nodes, b.jobs
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>10} {:>9}",
        "regime", "wall time", "hit rate", "speedup"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    for r in &b.rows {
        let _ = writeln!(
            out,
            "{:<28} {:>9.2} ms {:>9.1}% {:>8.2}x",
            r.name,
            r.wall_ns as f64 / 1e6,
            r.hit_rate * 100.0,
            r.speedup,
        );
    }
    out
}
