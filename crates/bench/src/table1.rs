//! E1 — §3.3 code size and Table 1 cache accesses.
//!
//! The paper compiled ~2500 files and reports, relative to the
//! non-optimized default compiler: CompCert code ≈ 26 % smaller, with ≈
//! 76 % fewer cache reads and ≈ 65 % fewer cache writes (locals stay in
//! registers instead of the cache-resident stack). The same axes are
//! reported for the default compiler's optimized configurations.
//!
//! We regenerate the table over a generated fleet: every node is compiled
//! under each configuration; code size is the text-section size, and cache
//! accesses are counted by the simulator over a fixed set of activations
//! with varied inputs.

use std::collections::BTreeMap;

use vericomp_core::OptLevel;
use vericomp_mach::Simulator;
use vericomp_pipeline::{Pipeline, SweepSpec};
use vericomp_testkit::fleet::{self, FleetConfig};

/// Aggregate measurements of one compiler configuration over the fleet.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfigTotals {
    /// Total text size in bytes.
    pub code_bytes: u64,
    /// Total data-cache read accesses.
    pub cache_reads: u64,
    /// Total data-cache write accesses.
    pub cache_writes: u64,
    /// Total executed instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Totals per configuration.
    pub totals: BTreeMap<OptLevel, ConfigTotals>,
    /// Number of nodes measured.
    pub nodes: usize,
}

impl Table1 {
    /// Ratio of a quantity against the pattern baseline.
    pub fn ratio(&self, level: OptLevel, f: impl Fn(&ConfigTotals) -> u64) -> f64 {
        f(&self.totals[&level]) as f64 / f(&self.totals[&OptLevel::PatternO0]) as f64
    }
}

/// Runs the experiment over a deterministic random fleet of `nodes` nodes,
/// `steps` activations each.
///
/// # Panics
///
/// Panics if a generated node fails to compile or run (generation is
/// correct by construction; a panic indicates a toolchain bug).
pub fn run_fleet(nodes: usize, steps: u32) -> Table1 {
    run_fleet_with(&Pipeline::in_memory(), nodes, steps)
}

/// [`run_fleet`] with compilation going through a caller-provided
/// pipeline: the node × configuration compile/analyze units overlap on the
/// pool, then the measurement activations run serially (the simulator is
/// stateful).
///
/// # Panics
///
/// Panics if a generated node fails to compile or run (generation is
/// correct by construction; a panic indicates a toolchain bug).
pub fn run_fleet_with(pipeline: &Pipeline, nodes: usize, steps: u32) -> Table1 {
    let fleet = fleet::random_fleet(&FleetConfig {
        nodes,
        ..FleetConfig::default()
    });
    let mut totals: BTreeMap<OptLevel, ConfigTotals> = crate::LEVELS
        .iter()
        .map(|&l| (l, ConfigTotals::default()))
        .collect();

    // the whole compile phase is one sweep: nodes × the four levels on
    // the pipeline's machine (the measurement below runs serially — the
    // simulator is stateful)
    let spec = SweepSpec::new().nodes(fleet.iter()).levels(crate::LEVELS);
    let sweep = pipeline
        .run_sweep(&spec)
        .unwrap_or_else(|e| panic!("table1 pipeline: {e}"));
    let machine = sweep.machine_labels()[0].clone();

    for node in &fleet {
        for &level in &crate::LEVELS {
            let bin = sweep[(node.name(), level.to_string().as_str(), machine.as_str())]
                .outcome
                .artifact
                .program
                .clone();
            let t = totals.get_mut(&level).expect("all levels present");
            t.code_bytes += u64::from(bin.text_size());
            let mut sim = Simulator::new(bin);
            for step in 0..steps {
                for port in 0..4 {
                    sim.set_io_f64(port, f64::from(step * 3 + port) * 0.71 - 2.0);
                }
                for g in sim.program().globals.clone() {
                    if g.name.contains("_in") {
                        let _ = sim.set_global_f64(&g.name, 0, f64::from(step) * 1.3 - 1.0);
                    }
                }
                let out = sim
                    .run(50_000_000)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
                t.cache_reads += out.stats.dcache_reads;
                t.cache_writes += out.stats.dcache_writes;
                t.instructions += out.stats.instructions;
                t.cycles += out.stats.cycles;
            }
        }
    }
    Table1 {
        totals,
        nodes: fleet.len(),
    }
}

/// Default-size run (100 nodes, 8 activations — a laptop-scale stand-in
/// for the paper's 2500 files).
pub fn run() -> Table1 {
    run_fleet(100, 8)
}

/// Renders the table.
pub fn render(t: &Table1) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 analog over {} generated nodes (relative to pattern-O0):",
        t.nodes
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>13} {:>13} {:>13} {:>10}",
        "configuration", "code size", "cache reads", "cache writes", "instructions", "cycles"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));
    for &level in &crate::LEVELS {
        let row = &t.totals[&level];
        if level == OptLevel::PatternO0 {
            let _ = writeln!(
                out,
                "{:<18} {:>10} B {:>13} {:>13} {:>13} {:>10}",
                level.to_string(),
                row.code_bytes,
                row.cache_reads,
                row.cache_writes,
                row.instructions,
                row.cycles
            );
        } else {
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>13} {:>13} {:>13} {:>10}",
                level.to_string(),
                crate::delta_pct(t.ratio(level, |x| x.code_bytes), 1.0),
                crate::delta_pct(t.ratio(level, |x| x.cache_reads), 1.0),
                crate::delta_pct(t.ratio(level, |x| x.cache_writes), 1.0),
                crate::delta_pct(t.ratio(level, |x| x.instructions), 1.0),
                crate::delta_pct(t.ratio(level, |x| x.cycles), 1.0),
            );
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(84));
    let _ = writeln!(
        out,
        "paper §3.3/Table 1 (CompCert vs default -O0): code -26%, cache reads -76%, cache writes -65%"
    );
    out
}
