//! Prints the §3.4 annotation-pipeline reproduction.
fn main() {
    let e = vericomp_bench::annotations::run();
    print!("{}", vericomp_bench::annotations::render(&e));
}
