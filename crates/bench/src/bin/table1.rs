//! Prints the Table 1 / §3.3 reproduction.
fn main() {
    let t = vericomp_bench::table1::run();
    print!("{}", vericomp_bench::table1::render(&t));
}
