//! Prints the Listings 1–2 reproduction.
fn main() {
    let l = vericomp_bench::listings::run();
    print!("{}", vericomp_bench::listings::render(&l));
}
