//! Prints the ablation study (E5).
fn main() {
    let a = vericomp_bench::ablation::run();
    print!("{}", vericomp_bench::ablation::render(&a));
}
