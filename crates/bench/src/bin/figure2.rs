//! Prints the Figure 2 reproduction.
fn main() {
    let fig = vericomp_bench::figure2::run();
    print!("{}", vericomp_bench::figure2::render(&fig));
}
