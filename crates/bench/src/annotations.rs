//! E4 — §3.4: the annotation pipeline.
//!
//! A node with a data-dependent scan loop (breakpoint-table interpolation
//! whose scan length comes from a configuration global) is compiled at
//! every level. The compiler transmits the source `__builtin_annotation`
//! to the binary and the annotation file is generated automatically; the
//! analyzer is then run twice:
//!
//! * **without** the annotation file — the loop cannot be bounded and the
//!   analysis fails (what the paper's process would face with a dumb
//!   toolchain);
//! * **with** it — the loop is bounded and a finite WCET results.

use std::collections::BTreeMap;

use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::NodeBuilder;
use vericomp_wcet::{
    annot::AnnotationFile, Analysis, AnalysisError, AnalysisOptions, AnalysisRequest, Analyzer,
    WcetReport,
};

fn analyze_with(
    program: &vericomp_arch::Program,
    func: &str,
    opts: &AnalysisOptions,
) -> Result<WcetReport, AnalysisError> {
    Analyzer::new(*opts)
        .analyze(&AnalysisRequest::new(program, func))
        .map(Analysis::into_report)
}

/// Outcome for one compiler configuration.
#[derive(Debug, Clone)]
pub struct AnnotationOutcome {
    /// The annotation comment as it appears in the assembly listing
    /// (`# annotation: 1 <= r5 <= 4` style — final locations substituted).
    pub resolved: String,
    /// Analysis error without annotations (expected: unbounded loop).
    pub without: Result<u64, String>,
    /// WCET with the generated annotation file.
    pub with: u64,
    /// The derived scan-loop bound.
    pub loop_bound: u64,
}

/// The experiment across configurations, plus the annotation file text.
#[derive(Debug, Clone)]
pub struct AnnotationsExperiment {
    /// Outcomes by configuration.
    pub outcomes: BTreeMap<OptLevel, AnnotationOutcome>,
    /// The generated annotation-file text (verified-compiler build).
    pub file_text: String,
}

/// Builds and runs the experiment.
///
/// # Panics
///
/// Panics if the with-annotations analysis fails (it must succeed).
pub fn run() -> AnnotationsExperiment {
    let mut b = NodeBuilder::new("annot");
    let x = b.global_input("annot_x");
    let y = b.lookup_search(
        x,
        vec![0.0, 10.0, 40.0, 90.0, 160.0, 250.0, 360.0],
        vec![1.0, 0.9, 0.7, 0.55, 0.4, 0.3, 0.25],
    );
    b.output("annot_y", y);
    let node = b.build().expect("fixed node is valid");
    let src = node.to_minic();

    let mut outcomes = BTreeMap::new();
    let mut file_text = String::new();
    for &level in &crate::LEVELS {
        let bin = Compiler::new(level)
            .compile(&src, "step")
            .expect("compiles");
        let resolved = bin
            .annotations
            .first()
            .map(|a| a.resolved_text())
            .unwrap_or_default();
        if level == OptLevel::Verified {
            file_text = AnnotationFile::from_program(&bin).to_text();
        }
        let without = match analyze_with(
            &bin,
            "step",
            &AnalysisOptions {
                use_annotations: false,
            },
        ) {
            Ok(r) => Ok(r.wcet),
            Err(AnalysisError::UnboundedLoop { header }) => {
                Err(format!("unbounded loop at {header:#x}"))
            }
            Err(e) => Err(e.to_string()),
        };
        let with = analyze_with(
            &bin,
            "step",
            &AnalysisOptions {
                use_annotations: true,
            },
        )
        .unwrap_or_else(|e| panic!("with-annotations analysis at {level}: {e}"));
        let loop_bound = with.loop_bounds.values().copied().max().unwrap_or(0);
        outcomes.insert(
            level,
            AnnotationOutcome {
                resolved,
                without,
                with: with.wcet,
                loop_bound,
            },
        );
    }
    AnnotationsExperiment {
        outcomes,
        file_text,
    }
}

/// Renders the experiment.
pub fn render(e: &AnnotationsExperiment) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "annotation pipeline (breakpoint-scan node, table of 7 entries):"
    );
    for (level, o) in &e.outcomes {
        let _ = writeln!(out, "  {level}:");
        let _ = writeln!(out, "    assembly comment : # annotation: {}", o.resolved);
        match &o.without {
            Ok(w) => {
                let _ = writeln!(out, "    without file     : WCET {w} (unexpected!)");
            }
            Err(msg) => {
                let _ = writeln!(out, "    without file     : FAILS — {msg}");
            }
        }
        let _ = writeln!(
            out,
            "    with file        : WCET {} (scan bound {})",
            o.with, o.loop_bound
        );
    }
    let _ = writeln!(out, "generated annotation file:\n{}", e.file_text);
    out
}
