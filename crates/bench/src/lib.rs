//! Experiment drivers regenerating the paper's evaluation artifacts.
//!
//! | id | artifact | entry point |
//! |---|---|---|
//! | E1 | §3.3 code size + Table 1 cache reads/writes | [`table1`] |
//! | E2 | Figure 2 per-node WCET, four compilers | [`figure2`] |
//! | E3 | Listings 1–2 code patterns | [`listings`] |
//! | E4 | §3.4 annotation pipeline | [`annotations`] |
//! | E5 | ablation of compiler design choices | [`ablation`] |
//! | E6 | parallel/cached fleet compilation throughput | [`pipeline`] |
//!
//! Each module computes structured results; the `bin` targets and criterion
//! benches print the same rows/series the paper reports.

pub mod ablation;
pub mod annotations;
pub mod figure2;
pub mod listings;
pub mod pipeline;
pub mod table1;

use vericomp_core::OptLevel;

/// The four configurations in the paper's presentation order, with the
/// baseline first.
pub const LEVELS: [OptLevel; 4] = [
    OptLevel::PatternO0,
    OptLevel::OptNoRegalloc,
    OptLevel::Verified,
    OptLevel::OptFull,
];

/// Formats a ratio as the paper's "-12.0%" style delta against a baseline.
pub fn delta_pct(value: f64, baseline: f64) -> String {
    let pct = (value / baseline - 1.0) * 100.0;
    format!("{pct:+.1}%")
}
