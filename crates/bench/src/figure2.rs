//! E2 — Figure 2: per-node WCET under the four compiler configurations.
//!
//! The paper computes the WCET of every node with a³ for the default
//! compiler (non-optimized, optimized-without-regalloc, fully optimized)
//! and CompCert, normalizes to the non-optimized default, and reports mean
//! WCET deltas of −0.5 %, −18.4 % and −12.0 % respectively, with the gains
//! non-uniform across nodes (acquisition-bound nodes barely improve).

use std::collections::BTreeMap;

use vericomp_core::OptLevel;
use vericomp_dataflow::fleet;
use vericomp_dataflow::Node;
use vericomp_pipeline::{Pipeline, SweepSpec};

/// WCET of one node under every configuration.
#[derive(Debug, Clone)]
pub struct NodeWcet {
    /// Node name.
    pub node: String,
    /// WCET bound in cycles, by configuration.
    pub wcet: BTreeMap<OptLevel, u64>,
}

impl NodeWcet {
    /// WCET relative to the pattern-compiler baseline.
    pub fn ratio(&self, level: OptLevel) -> f64 {
        self.wcet[&level] as f64 / self.wcet[&OptLevel::PatternO0] as f64
    }
}

/// The whole experiment: per-node WCETs plus means.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// Per-node results, in suite order.
    pub nodes: Vec<NodeWcet>,
}

impl Figure2 {
    /// Mean WCET ratio (vs. the pattern baseline) of a configuration.
    pub fn mean_ratio(&self, level: OptLevel) -> f64 {
        let s: f64 = self.nodes.iter().map(|n| n.ratio(level)).sum();
        s / self.nodes.len() as f64
    }
}

/// Computes WCETs of a node list under every configuration on an
/// in-memory pipeline (node × configuration units overlap on the pool).
///
/// # Panics
///
/// Panics if any node fails to compile or analyze (the suite is curated).
pub fn run_nodes(nodes: &[Node]) -> Figure2 {
    run_nodes_with(&Pipeline::in_memory(), nodes)
}

/// [`run_nodes`] on a caller-provided pipeline, so repeated runs hit its
/// artifact cache.
///
/// # Panics
///
/// Panics if any node fails to compile or analyze (the suite is curated).
pub fn run_nodes_with(pipeline: &Pipeline, nodes: &[Node]) -> Figure2 {
    let spec = SweepSpec::new().nodes(nodes).levels(crate::LEVELS);
    let sweep = pipeline
        .run_sweep(&spec)
        .unwrap_or_else(|e| panic!("figure2 pipeline: {e}"));
    let machine = &sweep.machine_labels()[0];
    let results = nodes
        .iter()
        .map(|node| NodeWcet {
            node: node.name().to_owned(),
            wcet: crate::LEVELS
                .iter()
                .map(|&level| (level, sweep.wcet(node.name(), &level.to_string(), machine)))
                .collect(),
        })
        .collect();
    Figure2 { nodes: results }
}

/// Runs the experiment on the paper-analog named suite.
pub fn run() -> Figure2 {
    run_nodes(&fleet::named_suite())
}

/// Renders the figure as the text table printed by the harness.
pub fn render(fig: &Figure2) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>16} {:>12} {:>12}",
        "node", "pattern-O0", "opt-no-regalloc", "verified", "opt-full"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    for n in &fig.nodes {
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>15.3}x {:>11.3}x {:>11.3}x",
            n.node,
            n.wcet[&OptLevel::PatternO0],
            n.ratio(OptLevel::OptNoRegalloc),
            n.ratio(OptLevel::Verified),
            n.ratio(OptLevel::OptFull),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(80));
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>15} {:>12} {:>12}",
        "mean WCET delta",
        "(baseline)",
        crate::delta_pct(fig.mean_ratio(OptLevel::OptNoRegalloc), 1.0),
        crate::delta_pct(fig.mean_ratio(OptLevel::Verified), 1.0),
        crate::delta_pct(fig.mean_ratio(OptLevel::OptFull), 1.0),
    );
    let _ = writeln!(
        out,
        "paper (Fig. 2):          (baseline)            -0.5%       -12.0%       -18.4%"
    );
    out
}
