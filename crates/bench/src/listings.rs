//! E3 — the paper's Listings 1 and 2: a single ADD symbol compiled by the
//! pattern compiler (`lfd`/`lfd`/`fadd`/`stfd`) versus the verified
//! optimizing compiler (the memory traffic vanishes, essentially one
//! `fadd` remains).

use vericomp_core::{Compiler, OptLevel};
use vericomp_dataflow::NodeBuilder;

/// The two listings: disassembly of the statement region under each
/// compiler.
#[derive(Debug, Clone)]
pub struct Listings {
    /// Pattern-compiler (Listing 1) disassembly.
    pub pattern: String,
    /// Verified-compiler (Listing 2) disassembly.
    pub verified: String,
    /// Instruction counts (pattern, verified).
    pub counts: (usize, usize),
    /// Memory-access counts (pattern, verified).
    pub mem_ops: (usize, usize),
}

/// Builds the experiment node and compiles it both ways.
///
/// # Panics
///
/// Panics on compile failure (the node is fixed and tiny).
pub fn run() -> Listings {
    // A sum symbol between two filter symbols: its inputs were just
    // computed and its output is consumed next — the paper's exact setting.
    let mut b = NodeBuilder::new("listing");
    let x = b.global_input("listing_in1");
    let y = b.global_input("listing_in2");
    let fx = b.first_order_filter(x, 0.5);
    let fy = b.first_order_filter(y, 0.5);
    let s = b.sum(fx, fy);
    let out = b.first_order_filter(s, 0.25);
    b.output("listing_out", out);
    let node = b.build().expect("fixed node is valid");
    let src = node.to_minic();

    let render = |level: OptLevel| -> (String, usize, usize) {
        let bin = Compiler::new(level)
            .compile(&src, "step")
            .expect("compiles");
        let text = bin.disassemble();
        let n = bin.code.len();
        let mem = bin.code.iter().filter(|i| i.mem_access().is_some()).count();
        (text, n, mem)
    };
    let (pattern, np, mp) = render(OptLevel::PatternO0);
    let (verified, nv, mv) = render(OptLevel::Verified);
    Listings {
        pattern,
        verified,
        counts: (np, nv),
        mem_ops: (mp, mv),
    }
}

/// Renders the comparison.
pub fn render(l: &Listings) -> String {
    format!(
        "Listing 1 — pattern compiler ({} instructions, {} memory accesses):\n{}\n\
         Listing 2 — verified compiler ({} instructions, {} memory accesses):\n{}\n",
        l.counts.0, l.mem_ops.0, l.pattern, l.counts.1, l.mem_ops.1, l.verified
    )
}
