//! E5 — ablation study of the compiler's design choices.
//!
//! The paper attributes most of CompCert's WCET gain to register allocation
//! ("the results of these WCET analyses emphasizes the importance of a good
//! register allocation and how other optimizations are hampered without
//! it", §3.3) and names the full optimizer's extras (scheduling, SDA) as
//! the source of the remaining gap. This experiment quantifies both claims
//! on our stack: starting from the `Verified` and `OptFull` presets, each
//! ingredient is removed in isolation and the mean WCET over the named
//! suite is recomputed.

use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::fleet;
use vericomp_pipeline::Pipeline;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable variant name.
    pub name: &'static str,
    /// Mean WCET over the suite, in cycles.
    pub mean_wcet: f64,
    /// Ratio against the pattern baseline.
    pub vs_baseline: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Rows, baseline first.
    pub rows: Vec<AblationRow>,
}

fn mean_wcet(
    pipeline: &Pipeline,
    passes: &PassConfig,
    label: &str,
    suite: &[vericomp_dataflow::Node],
) -> f64 {
    let result = pipeline
        .compile_fleet(suite, passes, label)
        .unwrap_or_else(|e| panic!("ablation pipeline: {e}"));
    let total: u64 = result.outcomes.iter().map(|o| o.artifact.report.wcet).sum();
    total as f64 / suite.len() as f64
}

/// Runs the ablation over the named suite.
///
/// # Panics
///
/// Panics if a variant fails to compile or analyze.
pub fn run() -> Ablation {
    let suite = fleet::named_suite();
    let variants: Vec<(&'static str, PassConfig)> = vec![
        (
            "pattern-O0 (baseline)",
            PassConfig::for_level(OptLevel::PatternO0),
        ),
        ("verified", PassConfig::for_level(OptLevel::Verified)),
        (
            "verified - mem2reg",
            PassConfig {
                mem2reg: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified - CSE",
            PassConfig {
                cse: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified - constprop",
            PassConfig {
                constprop: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified, scratch regs",
            PassConfig {
                full_palette: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        ("opt-full", PassConfig::for_level(OptLevel::OptFull)),
        (
            "opt-full - scheduling",
            PassConfig {
                schedule: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
        (
            "opt-full - SDA",
            PassConfig {
                sda: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
        (
            "opt-full - strength",
            PassConfig {
                strength: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
    ];

    // one pipeline across all variants: the baseline row is compiled once
    // here and replayed from the artifact cache inside the loop below
    let pipeline = Pipeline::in_memory();
    let baseline = mean_wcet(&pipeline, &variants[0].1, variants[0].0, &suite);
    let rows = variants
        .into_iter()
        .map(|(name, passes)| {
            let mean = mean_wcet(&pipeline, &passes, name, &suite);
            AblationRow {
                name,
                mean_wcet: mean,
                vs_baseline: mean / baseline,
            }
        })
        .collect();
    Ablation { rows }
}

/// Renders the table.
pub fn render(a: &Ablation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12}",
        "variant", "mean WCET", "vs baseline"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for r in &a.rows {
        let _ = writeln!(
            out,
            "{:<26} {:>12.1} {:>11.3}x",
            r.name, r.mean_wcet, r.vs_baseline
        );
    }
    out
}
