//! E5 — ablation study of the compiler's design choices.
//!
//! The paper attributes most of CompCert's WCET gain to register allocation
//! ("the results of these WCET analyses emphasizes the importance of a good
//! register allocation and how other optimizations are hampered without
//! it", §3.3) and names the full optimizer's extras (scheduling, SDA) as
//! the source of the remaining gap. This experiment quantifies both claims
//! on our stack: starting from the `Verified` and `OptFull` presets, each
//! ingredient is removed in isolation and the mean WCET over the named
//! suite is recomputed.

use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::fleet;
use vericomp_pipeline::{Pipeline, SweepSpec};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable variant name.
    pub name: &'static str,
    /// Mean WCET over the suite, in cycles.
    pub mean_wcet: f64,
    /// Ratio against the pattern baseline.
    pub vs_baseline: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Rows, baseline first.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation over the named suite.
///
/// # Panics
///
/// Panics if a variant fails to compile or analyze.
pub fn run() -> Ablation {
    let suite = fleet::named_suite();
    let variants: Vec<(&'static str, PassConfig)> = vec![
        (
            "pattern-O0 (baseline)",
            PassConfig::for_level(OptLevel::PatternO0),
        ),
        ("verified", PassConfig::for_level(OptLevel::Verified)),
        (
            "verified - mem2reg",
            PassConfig {
                mem2reg: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified - CSE",
            PassConfig {
                cse: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified - constprop",
            PassConfig {
                constprop: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        (
            "verified, scratch regs",
            PassConfig {
                full_palette: false,
                ..PassConfig::for_level(OptLevel::Verified)
            },
        ),
        ("opt-full", PassConfig::for_level(OptLevel::OptFull)),
        (
            "opt-full - scheduling",
            PassConfig {
                schedule: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
        (
            "opt-full - SDA",
            PassConfig {
                sda: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
        (
            "opt-full - strength",
            PassConfig {
                strength: false,
                ..PassConfig::for_level(OptLevel::OptFull)
            },
        ),
    ];

    // the whole study is one sweep: suite × every variant as the config
    // axis, sharded across the pool with cross-variant cache reuse
    let mut spec = SweepSpec::new().nodes(&suite);
    for (name, passes) in &variants {
        spec = spec.config(name, passes);
    }
    let sweep = Pipeline::in_memory()
        .run_sweep(&spec)
        .unwrap_or_else(|e| panic!("ablation pipeline: {e}"));
    let machine = &sweep.machine_labels()[0];
    let baseline = sweep.mean_wcet(variants[0].0, machine);
    let rows = variants
        .iter()
        .map(|&(name, _)| {
            let mean = sweep.mean_wcet(name, machine);
            AblationRow {
                name,
                mean_wcet: mean,
                vs_baseline: mean / baseline,
            }
        })
        .collect();
    Ablation { rows }
}

/// Renders the table.
pub fn render(a: &Ablation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12}",
        "variant", "mean WCET", "vs baseline"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for r in &a.rows {
        let _ = writeln!(
            out,
            "{:<26} {:>12.1} {:>11.3}x",
            r.name, r.mean_wcet, r.vs_baseline
        );
    }
    out
}
