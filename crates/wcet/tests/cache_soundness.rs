//! Property test: the must-cache abstraction is sound with respect to the
//! concrete LRU cache — whatever the access sequence, a line the
//! must-analysis claims resident is resident in the concrete cache.

use proptest::prelude::*;
use vericomp_arch::config::CacheConfig;
use vericomp_mach::Cache;
use vericomp_wcet::cache::MustCache;

fn tiny() -> CacheConfig {
    CacheConfig {
        size_bytes: 256,
        ways: 2,
        line_bytes: 32,
    } // 4 sets, 2 ways
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn must_cache_subset_of_concrete(accesses in proptest::collection::vec(0u32..64, 1..200)) {
        let cfg = tiny();
        let mut concrete = Cache::new(cfg);
        let mut must = MustCache::new(&cfg);
        for &line in &accesses {
            let addr = line * cfg.line_bytes;
            // claim before the access: resident in must ⇒ concrete hit
            if must.contains(line) {
                prop_assert!(
                    concrete.contains(addr),
                    "line {line} claimed resident but concretely absent"
                );
            }
            concrete.access(addr);
            must.access(line);
        }
    }

    #[test]
    fn join_is_sound_for_either_history(
        a in proptest::collection::vec(0u32..64, 1..100),
        b in proptest::collection::vec(0u32..64, 1..100),
        tail in proptest::collection::vec(0u32..64, 0..50),
    ) {
        // Two abstract histories joined, then a common tail: the joined
        // state's claims must hold for the concrete cache of BOTH histories.
        let cfg = tiny();
        let run = |seq: &[u32]| {
            let mut concrete = Cache::new(cfg);
            let mut must = MustCache::new(&cfg);
            for &line in seq {
                concrete.access(line * cfg.line_bytes);
                must.access(line);
            }
            (concrete, must)
        };
        let (mut ca, ma) = run(&a);
        let (mut cb, mb) = run(&b);
        let mut joined = ma.join(&mb);
        for &line in &tail {
            if joined.contains(line) {
                prop_assert!(ca.contains(line * cfg.line_bytes), "unsound vs history A");
                prop_assert!(cb.contains(line * cfg.line_bytes), "unsound vs history B");
            }
            ca.access(line * cfg.line_bytes);
            cb.access(line * cfg.line_bytes);
            joined.access(line);
        }
    }

    #[test]
    fn imprecise_aging_is_sound(
        known in proptest::collection::vec(0u32..64, 1..60),
        wild in proptest::collection::vec(0u32..64, 0..20),
    ) {
        // Interleave known accesses with wild (unknown-address) ones: the
        // abstraction ages conservatively, the concrete cache performs the
        // wild accesses literally.
        let cfg = tiny();
        let mut concrete = Cache::new(cfg);
        let mut must = MustCache::new(&cfg);
        let mut wi = wild.iter();
        for (i, &line) in known.iter().enumerate() {
            if i % 3 == 2 {
                if let Some(&w) = wi.next() {
                    concrete.access(w * cfg.line_bytes);
                    must.age_all(); // analyzer saw "unknown address"
                }
            }
            if must.contains(line) {
                prop_assert!(concrete.contains(line * cfg.line_bytes));
            }
            concrete.access(line * cfg.line_bytes);
            must.access(line);
        }
    }
}
