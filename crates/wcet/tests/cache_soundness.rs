//! Property test: the must-cache abstraction is sound with respect to the
//! concrete LRU cache — whatever the access sequence, a line the
//! must-analysis claims resident is resident in the concrete cache.

use vericomp_arch::config::CacheConfig;
use vericomp_mach::Cache;
use vericomp_testkit::prop::{check, gens, Config, Gen};
use vericomp_wcet::cache::MustCache;

fn tiny() -> CacheConfig {
    CacheConfig {
        size_bytes: 256,
        ways: 2,
        line_bytes: 32,
    } // 4 sets, 2 ways
}

/// A sequence of cache-line indices in `0..64`.
fn lines(len_lo: usize, len_hi: usize) -> Gen<Vec<u32>> {
    gens::vec_of(gens::u32_range(0, 64), len_lo, len_hi)
}

#[test]
fn must_cache_subset_of_concrete() {
    check(
        "must_cache_subset_of_concrete",
        &Config::with_cases(500),
        &lines(1, 200),
        |accesses| {
            let cfg = tiny();
            let mut concrete = Cache::new(cfg);
            let mut must = MustCache::new(&cfg);
            for &line in accesses {
                let addr = line * cfg.line_bytes;
                // claim before the access: resident in must ⇒ concrete hit
                if must.contains(line) && !concrete.contains(addr) {
                    return Err(format!(
                        "line {line} claimed resident but concretely absent"
                    ));
                }
                concrete.access(addr);
                must.access(line);
            }
            Ok(())
        },
    );
}

#[test]
fn join_is_sound_for_either_history() {
    let histories = gens::pair(gens::pair(lines(1, 100), lines(1, 100)), lines(0, 50));
    check(
        "join_is_sound_for_either_history",
        &Config::with_cases(500),
        &histories,
        |((a, b), tail)| {
            // Two abstract histories joined, then a common tail: the joined
            // state's claims must hold for the concrete cache of BOTH
            // histories.
            let cfg = tiny();
            let run = |seq: &[u32]| {
                let mut concrete = Cache::new(cfg);
                let mut must = MustCache::new(&cfg);
                for &line in seq {
                    concrete.access(line * cfg.line_bytes);
                    must.access(line);
                }
                (concrete, must)
            };
            let (mut ca, ma) = run(a);
            let (mut cb, mb) = run(b);
            let mut joined = ma.join(&mb);
            for &line in tail {
                if joined.contains(line) {
                    if !ca.contains(line * cfg.line_bytes) {
                        return Err(format!("line {line}: unsound vs history A"));
                    }
                    if !cb.contains(line * cfg.line_bytes) {
                        return Err(format!("line {line}: unsound vs history B"));
                    }
                }
                ca.access(line * cfg.line_bytes);
                cb.access(line * cfg.line_bytes);
                joined.access(line);
            }
            Ok(())
        },
    );
}

#[test]
fn imprecise_aging_is_sound() {
    let seqs = gens::pair(lines(1, 60), lines(0, 20));
    check(
        "imprecise_aging_is_sound",
        &Config::with_cases(500),
        &seqs,
        |(known, wild)| {
            // Interleave known accesses with wild (unknown-address) ones:
            // the abstraction ages conservatively, the concrete cache
            // performs the wild accesses literally.
            let cfg = tiny();
            let mut concrete = Cache::new(cfg);
            let mut must = MustCache::new(&cfg);
            let mut wi = wild.iter();
            for (i, &line) in known.iter().enumerate() {
                if i % 3 == 2 {
                    if let Some(&w) = wi.next() {
                        concrete.access(w * cfg.line_bytes);
                        must.age_all(); // analyzer saw "unknown address"
                    }
                }
                if must.contains(line) && !concrete.contains(line * cfg.line_bytes) {
                    return Err(format!("line {line} claimed resident after aging"));
                }
                concrete.access(line * cfg.line_bytes);
                must.access(line);
            }
            Ok(())
        },
    );
}
