//! Loop-bound analysis over the whole toolchain: hand-written MiniC sources
//! (via the parser) with different loop shapes, compiled at both the
//! pattern and the verified configuration — counters in *stack slots* and
//! in *registers* must both be bounded, and the bounds must be exact.

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::parse;
use vericomp_wcet::{Analysis, AnalysisError, AnalysisRequest, Analyzer, WcetReport};

fn analyze(bin: &vericomp_arch::program::Program, func: &str) -> Result<WcetReport, AnalysisError> {
    Analyzer::default()
        .analyze(&AnalysisRequest::new(bin, func))
        .map(Analysis::into_report)
}

fn wcet_and_bound(src: &str, level: OptLevel) -> (u64, Vec<u64>) {
    let prog = parse::parse(src).expect("parses");
    let bin = Compiler::new(level)
        .compile(&prog, "step")
        .expect("compiles");
    let report = analyze(&bin, "step").expect("bounded");
    // the bound must also be sound vs. a real run
    let mut sim = Simulator::new(bin);
    let out = sim.run(10_000_000).expect("runs");
    assert!(
        report.wcet >= out.stats.cycles,
        "WCET {} < {}",
        report.wcet,
        out.stats.cycles
    );
    (report.wcet, report.loop_bounds.values().copied().collect())
}

#[test]
fn up_counting_le_constant() {
    let src = r#"
        double acc;
        void step() {
            int k;
            k = 0;
            while (k <= 9) {
                acc = (acc + 1.0);
                k = (k + 1);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (_, bounds) = wcet_and_bound(src, level);
        assert_eq!(bounds, vec![10], "{level}");
    }
}

#[test]
fn up_counting_lt_constant() {
    let src = r#"
        double acc;
        void step() {
            int k;
            while (k < 7) {
                acc = (acc + 1.0);
                k = (k + 1);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (_, bounds) = wcet_and_bound(src, level);
        assert_eq!(bounds, vec![7], "{level}");
    }
}

#[test]
fn down_counting_loop() {
    let src = r#"
        double acc;
        void step() {
            int k;
            k = 12;
            while (k > 0) {
                acc = (acc + 1.0);
                k = (k - 1);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (_, bounds) = wcet_and_bound(src, level);
        assert_eq!(bounds, vec![12], "{level}");
    }
}

#[test]
fn stride_two_loop() {
    let src = r#"
        double acc;
        void step() {
            int k;
            while (k < 10) {
                acc = (acc + 1.0);
                k = (k + 2);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (_, bounds) = wcet_and_bound(src, level);
        assert_eq!(bounds, vec![5], "{level}");
    }
}

#[test]
fn nested_loops_bound_independently() {
    let src = r#"
        double acc;
        void step() {
            int i;
            int j;
            while (i < 4) {
                j = 0;
                while (j < 3) {
                    acc = (acc + 1.0);
                    j = (j + 1);
                }
                i = (i + 1);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (wcet, mut bounds) = wcet_and_bound(src, level);
        bounds.sort_unstable();
        assert_eq!(bounds, vec![3, 4], "{level}");
        // 12 inner-body executions of a few cycles each, plus fills
        assert!(wcet > 12, "{level}: {wcet}");
    }
}

#[test]
fn early_exit_only_tightens() {
    // a second (conditional, inner) exit cannot break the header witness
    let src = r#"
        double acc;
        int stop;
        void step() {
            int k;
            while (k < 100) {
                if (k == stop) {
                    k = 100;
                }
                acc = (acc + 1.0);
                k = (k + 1);
            }
        }
    "#;
    // `k = 100` inside the if is a second write to the induction cell, so
    // the witness must reject that candidate pairing... but the header
    // comparison still sees a single update site only if the analysis gives
    // up — in which case the loop is unbounded. Accept either an exact
    // bound or a clean UnboundedLoop error, but never an unsound bound.
    let prog = parse::parse(src).expect("parses");
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let bin = Compiler::new(level)
            .compile(&prog, "step")
            .expect("compiles");
        match analyze(&bin, "step") {
            Ok(report) => {
                let mut sim = Simulator::new(bin);
                sim.set_global_i32("stop", 0, 1000).expect("global");
                let out = sim.run(10_000_000).expect("runs");
                assert!(report.wcet >= out.stats.cycles, "{level}");
            }
            Err(vericomp_wcet::AnalysisError::UnboundedLoop { .. }) => {}
            Err(e) => panic!("{level}: unexpected {e}"),
        }
    }
}

#[test]
fn zero_iteration_loop() {
    let src = r#"
        double acc;
        void step() {
            int k;
            k = 50;
            while (k < 10) {
                acc = (acc + 1.0);
                k = (k + 1);
            }
        }
    "#;
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let (_, bounds) = wcet_and_bound(src, level);
        assert_eq!(bounds, vec![0], "{level}");
    }
}
