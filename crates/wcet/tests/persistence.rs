//! Persistence analysis effectiveness: accesses inside a loop that touch a
//! bounded set of lines must be charged one fill per line per loop entry,
//! not one miss per iteration — otherwise the analyzer's bounds on loopy
//! code would be uselessly pessimistic (the paper's precision story).

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::parse;
use vericomp_wcet::{Analysis, AnalysisRequest, Analyzer, WcetReport};

fn analyze(
    bin: &vericomp_arch::program::Program,
    func: &str,
) -> Result<WcetReport, vericomp_wcet::AnalysisError> {
    Analyzer::default()
        .analyze(&AnalysisRequest::new(bin, func))
        .map(Analysis::into_report)
}

#[test]
fn repeated_global_load_in_loop_charged_once() {
    let src = r#"
        double g;
        double acc;
        void step() {
            int k;
            while (k < 50) {
                acc = (acc + g);
                k = (k + 1);
            }
        }
    "#;
    let prog = parse::parse(src).expect("parses");
    for level in [OptLevel::PatternO0, OptLevel::Verified] {
        let bin = Compiler::new(level)
            .compile(&prog, "step")
            .expect("compiles");
        let mem_latency = u64::from(bin.config.mem_latency);
        let report = analyze(&bin, "step").expect("bounded");
        // soundness first
        let mut sim = Simulator::new(bin);
        let out = sim.run(10_000_000).expect("runs");
        assert!(report.wcet >= out.stats.cycles, "{level}");
        // precision: without persistence every iteration would pay the
        // fill for `g` (and at -O0 also for the stack slots):
        // 50 iterations x 30 cycles = 1500 on top of execution. The bound
        // must stay well below that.
        assert!(
            report.wcet < 50 * mem_latency + 600,
            "{level}: WCET {} suggests per-iteration miss charging",
            report.wcet
        );
        // and within 3x of the concrete run
        assert!(
            report.wcet <= out.stats.cycles * 3,
            "{level}: WCET {} vs measured {}",
            report.wcet,
            out.stats.cycles
        );
    }
}

#[test]
fn table_scan_loop_stays_tight() {
    // the breakpoint-style scan: per-iteration indexed loads over one small
    // table — the whole table fits two lines and must be charged as fills,
    // not 30-cycle misses each round
    let src = r#"
        double tab[8] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
        double acc;
        void step() {
            int k;
            while (k < 8) {
                acc = (acc + tab[k]);
                k = (k + 1);
            }
        }
    "#;
    let prog = parse::parse(src).expect("parses");
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let report = analyze(&bin, "step").expect("bounded");
    let mut sim = Simulator::new(bin);
    let out = sim.run(10_000_000).expect("runs");
    assert!(report.wcet >= out.stats.cycles);
    assert!(
        report.wcet <= out.stats.cycles * 3 + 120,
        "WCET {} vs measured {}",
        report.wcet,
        out.stats.cycles
    );
}

#[test]
fn io_in_loop_is_never_persistent() {
    // acquisitions are uncached: every iteration pays the full latency, in
    // the bound and in the simulation alike
    let src = r#"
        double acc;
        void step() {
            int k;
            while (k < 10) {
                acc = (acc + __io_read(0));
                k = (k + 1);
            }
        }
    "#;
    let prog = parse::parse(src).expect("parses");
    let bin = Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let io = u64::from(bin.config.io_latency);
    let report = analyze(&bin, "step").expect("bounded");
    let mut sim = Simulator::new(bin);
    let out = sim.run(10_000_000).expect("runs");
    assert!(report.wcet >= out.stats.cycles);
    assert!(
        report.wcet >= 10 * io,
        "all ten acquisitions must be charged"
    );
    assert!(out.stats.cycles >= 10 * io, "and concretely paid");
}
