//! Control-flow reconstruction from the binary, dominators and natural
//! loops — the analyzer's first phase ("decoding / CFG reconstruction" in
//! the aiT pipeline).
//!
//! The analyzer deliberately starts from the *encoded words*: the program's
//! text section is re-encoded and decoded here, so analysis results are
//! statements about the binary, not about compiler IR.

use std::collections::{BTreeMap, BTreeSet};

use vericomp_arch::inst::{ControlFlow, Inst};
use vericomp_arch::program::Program;

use crate::AnalysisError;

/// A reconstructed basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Decoded instructions (including the terminating branch, if any).
    pub insts: Vec<Inst>,
    /// Successor block start addresses (within the function).
    pub succs: Vec<u32>,
    /// Callees invoked by `bl` instructions in this block, in order.
    pub calls: Vec<String>,
    /// Whether the block ends the function (`blr`).
    pub is_return: bool,
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block address.
    pub header: u32,
    /// All blocks of the loop (header included).
    pub blocks: BTreeSet<u32>,
    /// Sources of back edges (latches).
    pub latches: BTreeSet<u32>,
    /// Blocks inside the loop with a successor outside it.
    pub exits: BTreeSet<u32>,
}

/// The reconstructed control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name.
    pub name: String,
    /// Entry address.
    pub entry: u32,
    /// Blocks by start address.
    pub blocks: BTreeMap<u32, Block>,
    /// Natural loops, innermost last (sorted by increasing block count).
    pub loops: Vec<NaturalLoop>,
}

impl Cfg {
    /// Predecessor map.
    pub fn predecessors(&self) -> BTreeMap<u32, Vec<u32>> {
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&a, b) in &self.blocks {
            for &s in &b.succs {
                preds.entry(s).or_default().push(a);
            }
        }
        preds
    }

    /// Reverse post-order of block addresses from the entry.
    pub fn rpo(&self) -> Vec<u32> {
        let mut visited = BTreeSet::new();
        let mut post = Vec::new();
        let mut stack = vec![(self.entry, 0usize)];
        visited.insert(self.entry);
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = &self.blocks[&b].succs;
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// The innermost loop containing `addr`, if any.
    pub fn innermost_loop_of(&self, addr: u32) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&addr))
            .min_by_key(|l| l.blocks.len())
    }
}

/// Reconstructs the CFG of the named function from the program's encoded
/// binary.
///
/// # Errors
///
/// [`AnalysisError`] on unknown functions, decode failures, control flow
/// leaving the function, or irreducible loops.
pub fn reconstruct(program: &Program, func: &str) -> Result<Cfg, AnalysisError> {
    let sym = program
        .function(func)
        .ok_or_else(|| AnalysisError::UnknownFunction(func.to_owned()))?;
    let lo = sym.entry;
    let hi = sym.entry + 4 * sym.len_words;

    // Decode from the binary words.
    let words = program.encode_text();
    let decode_at = |addr: u32| -> Result<Inst, AnalysisError> {
        let idx = ((addr - program.config.text_base) / 4) as usize;
        vericomp_arch::encode::decode(words[idx], addr).map_err(AnalysisError::Decode)
    };

    // Pass 1: leaders.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(lo);
    let mut addr = lo;
    while addr < hi {
        let inst = decode_at(addr)?;
        match inst.control_flow() {
            ControlFlow::Jump(t) => {
                in_range(t, lo, hi, addr)?;
                leaders.insert(t);
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::CondBranch(t) => {
                in_range(t, lo, hi, addr)?;
                leaders.insert(t);
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::Return => {
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::Call(_) | ControlFlow::Fallthrough => {}
        }
        addr += 4;
    }

    // Pass 2: blocks.
    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    let mut blocks = BTreeMap::new();
    for (i, &start) in leader_list.iter().enumerate() {
        let end = leader_list.get(i + 1).copied().unwrap_or(hi);
        let mut insts = Vec::with_capacity(((end - start) / 4) as usize);
        let mut calls = Vec::new();
        let mut succs = Vec::new();
        let mut is_return = false;
        let mut a = start;
        while a < end {
            let inst = decode_at(a)?;
            match inst.control_flow() {
                ControlFlow::Call(t) => {
                    let callee = program
                        .function_at(t)
                        .filter(|f| f.entry == t)
                        .ok_or(AnalysisError::CallOutsideText { at: a, target: t })?;
                    calls.push(callee.name.clone());
                }
                ControlFlow::Jump(t) => {
                    succs.push(t);
                }
                ControlFlow::CondBranch(t) => {
                    succs.push(t); // taken first
                    if a + 4 < hi {
                        succs.push(a + 4);
                    }
                }
                ControlFlow::Return => is_return = true,
                ControlFlow::Fallthrough => {}
            }
            insts.push(inst);
            a += 4;
        }
        let last_cf = insts.last().map(Inst::control_flow);
        if matches!(
            last_cf,
            Some(ControlFlow::Fallthrough) | Some(ControlFlow::Call(_)) | None
        ) && end < hi
        {
            succs.push(end);
        }
        blocks.insert(
            start,
            Block {
                start,
                insts,
                succs,
                calls,
                is_return,
            },
        );
    }

    let mut cfg = Cfg {
        name: func.to_owned(),
        entry: lo,
        blocks,
        loops: Vec::new(),
    };
    cfg.loops = find_loops(&cfg)?;
    Ok(cfg)
}

fn in_range(t: u32, lo: u32, hi: u32, at: u32) -> Result<(), AnalysisError> {
    if t < lo || t >= hi {
        return Err(AnalysisError::BranchOutsideFunction { at, target: t });
    }
    Ok(())
}

/// Computes immediate dominators (Cooper–Harvey–Kennedy).
pub fn dominators(cfg: &Cfg) -> BTreeMap<u32, u32> {
    let rpo = cfg.rpo();
    let index: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let preds = cfg.predecessors();
    let mut idom: BTreeMap<u32, u32> = BTreeMap::new();
    idom.insert(cfg.entry, cfg.entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<u32> = None;
            for &p in preds.get(&b).into_iter().flatten() {
                if !idom.contains_key(&p) {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(p, cur, &idom, &index),
                });
            }
            if let Some(ni) = new_idom {
                if idom.get(&b) != Some(&ni) {
                    idom.insert(b, ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    mut a: u32,
    mut b: u32,
    idom: &BTreeMap<u32, u32>,
    index: &BTreeMap<u32, usize>,
) -> u32 {
    while a != b {
        while index[&a] > index[&b] {
            a = idom[&a];
        }
        while index[&b] > index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Whether `a` dominates `b`.
fn dominates(a: u32, mut b: u32, idom: &BTreeMap<u32, u32>, entry: u32) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == entry {
            return false;
        }
        b = idom[&b];
    }
}

fn find_loops(cfg: &Cfg) -> Result<Vec<NaturalLoop>, AnalysisError> {
    let idom = dominators(cfg);
    let reachable: BTreeSet<u32> = cfg.rpo().into_iter().collect();
    let mut loops: BTreeMap<u32, NaturalLoop> = BTreeMap::new();

    for &b in &reachable {
        for &s in &cfg.blocks[&b].succs {
            if !reachable.contains(&s) {
                continue;
            }
            // back edge b -> s?
            if dominates(s, b, &idom, cfg.entry) {
                let entry_loop = loops.entry(s).or_insert_with(|| NaturalLoop {
                    header: s,
                    blocks: BTreeSet::from([s]),
                    latches: BTreeSet::new(),
                    exits: BTreeSet::new(),
                });
                entry_loop.latches.insert(b);
                // natural loop body: reverse reachability from latch to header
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if !loops.get_mut(&s).expect("just inserted").blocks.insert(x) {
                        continue;
                    }
                    for (&p, blk) in &cfg.blocks {
                        if blk.succs.contains(&x) && x != s {
                            let _ = p;
                            stack.push(p);
                        }
                    }
                }
            } else if retreats(s, b, cfg) {
                return Err(AnalysisError::IrreducibleLoop { at: s });
            }
        }
    }

    let mut result: Vec<NaturalLoop> = loops.into_values().collect();
    for l in &mut result {
        for &b in &l.blocks {
            if cfg.blocks[&b].succs.iter().any(|s| !l.blocks.contains(s)) {
                l.exits.insert(b);
            }
        }
    }
    // sort outermost (largest) first
    result.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
    Ok(result)
}

/// Detects a retreating edge that is not a back edge (irreducibility hint):
/// target appears before source in RPO but does not dominate it.
fn retreats(target: u32, source: u32, cfg: &Cfg) -> bool {
    let rpo = cfg.rpo();
    let pos: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    match (pos.get(&target), pos.get(&source)) {
        (Some(t), Some(s)) => t <= s,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use vericomp_arch::inst::{Cond, Inst as M};
    use vericomp_arch::program::FuncSym;
    use vericomp_arch::reg::{Cr, Gpr};
    use vericomp_arch::MachineConfig;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }

    fn program(code: Vec<M>) -> Program {
        let config = MachineConfig::mpc755();
        let len_words = code.len() as u32;
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "f".into(),
                entry: config.text_base,
                len_words,
            }],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        }
    }

    #[test]
    fn straight_line_single_block() {
        let p = program(vec![M::li(g(3), 1), M::li(g(4), 2), M::Blr]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[&cfg.entry].is_return);
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn diamond_reconstructed() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0 */
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            /* 4 */
            M::Bc {
                cond: Cond::Lt,
                cr: Cr::CR0,
                target: base + 16,
            },
            /* 8 */ M::li(g(4), 1),
            /* 12 */ M::B { target: base + 20 },
            /* 16 */ M::li(g(4), 2),
            /* 20 */ M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 4);
        let entry = &cfg.blocks[&base];
        assert_eq!(entry.succs, vec![base + 16, base + 8]);
        assert!(cfg.loops.is_empty());
        let idom = dominators(&cfg);
        assert_eq!(idom[&(base + 20)], base);
    }

    #[test]
    fn loop_detected_with_latch_and_exit() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0  */ M::li(g(4), 0),
            /* 4 head */
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(4),
                imm: 10,
            },
            /* 8  */
            M::Bc {
                cond: Cond::Ge,
                cr: Cr::CR0,
                target: base + 24,
            },
            /* 12 body */
            M::Addi {
                rd: g(4),
                ra: g(4),
                imm: 1,
            },
            /* 16 */ M::B { target: base + 4 },
            /* 20 dead */ M::Nop,
            /* 24 exit */ M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.header, base + 4);
        assert!(l.blocks.contains(&(base + 12)));
        assert!(!l.blocks.contains(&(base + 24)));
        assert_eq!(l.latches, BTreeSet::from([base + 12]));
        assert_eq!(l.exits, BTreeSet::from([base + 4]));
    }

    #[test]
    fn calls_recorded_not_block_ending() {
        let base = MachineConfig::mpc755().text_base;
        let config = MachineConfig::mpc755();
        let code = vec![
            /* 0 */ M::Bl { target: base + 12 },
            /* 4 */ M::li(g(3), 1),
            /* 8 */ M::Blr,
            /* 12 g */ M::Blr,
        ];
        let p = Program {
            entry: base,
            functions: vec![
                FuncSym {
                    name: "f".into(),
                    entry: base,
                    len_words: 3,
                },
                FuncSym {
                    name: "g".into(),
                    entry: base + 12,
                    len_words: 1,
                },
            ],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        };
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[&base].calls, vec!["g".to_owned()]);
    }

    #[test]
    fn branch_outside_function_rejected() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            M::B {
                target: base + 0x1000,
            },
            M::Blr,
        ]);
        assert!(matches!(
            reconstruct(&p, "f"),
            Err(AnalysisError::BranchOutsideFunction { .. })
        ));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            M::Bc {
                cond: Cond::Eq,
                cr: Cr::CR0,
                target: base + 12,
            },
            M::Blr,
            M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], base);
        assert_eq!(rpo.len(), 3);
    }
}
