//! Control-flow reconstruction from the binary, dominators and natural
//! loops — the analyzer's first phase ("decoding / CFG reconstruction" in
//! the aiT pipeline).
//!
//! The analyzer deliberately starts from the *encoded words*: the program's
//! text section is re-encoded and decoded here, so analysis results are
//! statements about the binary, not about compiler IR.

use std::collections::{BTreeMap, BTreeSet};

use vericomp_arch::inst::{ControlFlow, Inst};
use vericomp_arch::program::Program;

use crate::AnalysisError;

/// A reconstructed basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Decoded instructions (including the terminating branch, if any).
    pub insts: Vec<Inst>,
    /// Successor block start addresses (within the function).
    pub succs: Vec<u32>,
    /// Callees invoked by `bl` instructions in this block, in order.
    pub calls: Vec<String>,
    /// Whether the block ends the function (`blr`).
    pub is_return: bool,
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block address.
    pub header: u32,
    /// All blocks of the loop (header included).
    pub blocks: BTreeSet<u32>,
    /// Sources of back edges (latches).
    pub latches: BTreeSet<u32>,
    /// Blocks inside the loop with a successor outside it.
    pub exits: BTreeSet<u32>,
}

/// The reconstructed control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name.
    pub name: String,
    /// Entry address.
    pub entry: u32,
    /// Blocks by start address.
    pub blocks: BTreeMap<u32, Block>,
    /// Natural loops, innermost last (sorted by increasing block count).
    pub loops: Vec<NaturalLoop>,
    /// Reverse post-order from the entry, computed once at reconstruction
    /// (every analysis phase iterates it).
    rpo: Vec<u32>,
    /// RPO position of each reachable block address.
    index_of: BTreeMap<u32, u32>,
    /// Successor RPO positions of each block, indexed by RPO position.
    succ_idx: Vec<Vec<u32>>,
}

impl Cfg {
    /// Predecessor map.
    pub fn predecessors(&self) -> BTreeMap<u32, Vec<u32>> {
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&a, b) in &self.blocks {
            for &s in &b.succs {
                preds.entry(s).or_default().push(a);
            }
        }
        preds
    }

    /// Reverse post-order of block addresses from the entry.
    pub fn rpo(&self) -> &[u32] {
        &self.rpo
    }

    /// RPO position of each reachable block address.
    pub fn index_of(&self) -> &BTreeMap<u32, u32> {
        &self.index_of
    }

    /// Successor RPO positions of each block, indexed by RPO position.
    /// Shared by every fixpoint phase so the dense tables are built once.
    pub fn succ_idx(&self) -> &[Vec<u32>] {
        &self.succ_idx
    }

    /// The innermost loop containing `addr`, if any.
    pub fn innermost_loop_of(&self, addr: u32) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&addr))
            .min_by_key(|l| l.blocks.len())
    }
}

/// Reconstructs the CFG of the named function from the program's encoded
/// binary.
///
/// # Errors
///
/// [`AnalysisError`] on unknown functions, decode failures, control flow
/// leaving the function, or irreducible loops.
pub fn reconstruct(program: &Program, func: &str) -> Result<Cfg, AnalysisError> {
    let words = program.encode_text();
    reconstruct_with_words(program, func, &words)
}

/// Like [`reconstruct`], but decoding from a caller-provided encoding of the
/// program text. The session analyzer encodes once per request and
/// reconstructs every function from the same words, instead of re-encoding
/// the whole program per function.
pub fn reconstruct_with_words(
    program: &Program,
    func: &str,
    words: &[u32],
) -> Result<Cfg, AnalysisError> {
    let sym = program
        .function(func)
        .ok_or_else(|| AnalysisError::UnknownFunction(func.to_owned()))?;
    let lo = sym.entry;
    let hi = sym.entry + 4 * sym.len_words;

    // Decode each word of the function exactly once.
    let base = ((lo - program.config.text_base) / 4) as usize;
    let mut decoded = Vec::with_capacity(sym.len_words as usize);
    for i in 0..sym.len_words as usize {
        let addr = lo + 4 * i as u32;
        decoded.push(
            vericomp_arch::encode::decode(words[base + i], addr).map_err(AnalysisError::Decode)?,
        );
    }
    let decode_at = |addr: u32| -> &Inst { &decoded[((addr - lo) / 4) as usize] };

    // Pass 1: leaders.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(lo);
    let mut addr = lo;
    while addr < hi {
        let inst = decode_at(addr);
        match inst.control_flow() {
            ControlFlow::Jump(t) => {
                in_range(t, lo, hi, addr)?;
                leaders.insert(t);
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::CondBranch(t) => {
                in_range(t, lo, hi, addr)?;
                leaders.insert(t);
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::Return => {
                if addr + 4 < hi {
                    leaders.insert(addr + 4);
                }
            }
            ControlFlow::Call(_) | ControlFlow::Fallthrough => {}
        }
        addr += 4;
    }

    // Pass 2: blocks, built in ascending leader order so every later
    // table can address them by ordinal (binary search on the sorted
    // leader list) instead of through tree lookups.
    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    let nblocks = leader_list.len();
    let ord_of = |addr: u32| -> usize { leader_list.binary_search(&addr).expect("is a leader") };
    let mut blocks_vec: Vec<Block> = Vec::with_capacity(nblocks);
    for (i, &start) in leader_list.iter().enumerate() {
        let end = leader_list.get(i + 1).copied().unwrap_or(hi);
        let mut insts = Vec::with_capacity(((end - start) / 4) as usize);
        let mut calls = Vec::new();
        let mut succs = Vec::new();
        let mut is_return = false;
        let mut a = start;
        while a < end {
            let inst = decode_at(a).clone();
            match inst.control_flow() {
                ControlFlow::Call(t) => {
                    let callee = program
                        .function_at(t)
                        .filter(|f| f.entry == t)
                        .ok_or(AnalysisError::CallOutsideText { at: a, target: t })?;
                    calls.push(callee.name.clone());
                }
                ControlFlow::Jump(t) => {
                    succs.push(t);
                }
                ControlFlow::CondBranch(t) => {
                    succs.push(t); // taken first
                    if a + 4 < hi {
                        succs.push(a + 4);
                    }
                }
                ControlFlow::Return => is_return = true,
                ControlFlow::Fallthrough => {}
            }
            insts.push(inst);
            a += 4;
        }
        let last_cf = insts.last().map(Inst::control_flow);
        if matches!(
            last_cf,
            Some(ControlFlow::Fallthrough) | Some(ControlFlow::Call(_)) | None
        ) && end < hi
        {
            succs.push(end);
        }
        blocks_vec.push(Block {
            start,
            insts,
            succs,
            calls,
            is_return,
        });
    }

    // Depth-first post-order over block ordinals; identical traversal (and
    // so identical RPO) to a walk over the address-keyed map, since the
    // ordinal order is the ascending address order.
    let mut visited = vec![false; nblocks];
    let mut post: Vec<u32> = Vec::with_capacity(nblocks);
    let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
    visited[0] = true; // the entry is the lowest leader
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = &blocks_vec[b as usize].succs;
        if (*i as usize) < succs.len() {
            let so = ord_of(succs[*i as usize]) as u32;
            *i += 1;
            if !visited[so as usize] {
                visited[so as usize] = true;
                stack.push((so, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    let ord_rpo: Vec<u32> = post.into_iter().rev().collect();
    let rpo: Vec<u32> = ord_rpo.iter().map(|&o| leader_list[o as usize]).collect();
    let mut rpo_of_ord = vec![u32::MAX; nblocks];
    for (ri, &o) in ord_rpo.iter().enumerate() {
        rpo_of_ord[o as usize] = ri as u32;
    }
    let index_of: BTreeMap<u32, u32> = rpo
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, i as u32))
        .collect();
    let succ_idx: Vec<Vec<u32>> = ord_rpo
        .iter()
        .map(|&o| {
            blocks_vec[o as usize]
                .succs
                .iter()
                .map(|&s| rpo_of_ord[ord_of(s)])
                .collect()
        })
        .collect();
    let blocks: BTreeMap<u32, Block> = leader_list.iter().copied().zip(blocks_vec).collect();
    let mut cfg = Cfg {
        name: func.to_owned(),
        entry: lo,
        rpo,
        index_of,
        succ_idx,
        blocks,
        loops: Vec::new(),
    };
    cfg.loops = find_loops(&cfg)?;
    Ok(cfg)
}

fn in_range(t: u32, lo: u32, hi: u32, at: u32) -> Result<(), AnalysisError> {
    if t < lo || t >= hi {
        return Err(AnalysisError::BranchOutsideFunction { at, target: t });
    }
    Ok(())
}

/// Per-function index tables: RPO position per reachable block, and the
/// reachable predecessors of each reachable block (ascending address, the
/// order [`Cfg::predecessors`] produces).
struct Indexed {
    pred_off: Vec<u32>,
    pred_dat: Vec<u32>,
}

impl Indexed {
    fn preds(&self, b: usize) -> &[u32] {
        &self.pred_dat[self.pred_off[b] as usize..self.pred_off[b + 1] as usize]
    }
}

fn index_cfg(cfg: &Cfg) -> Indexed {
    let n = cfg.rpo().len();
    let mut pred_off = vec![0u32; n + 1];
    for succs in cfg.succ_idx() {
        for &si in succs {
            pred_off[si as usize + 1] += 1;
        }
    }
    for i in 0..n {
        pred_off[i + 1] += pred_off[i];
    }
    let mut cursor = pred_off.clone();
    let mut pred_dat = vec![0u32; pred_off[n] as usize];
    // iterate predecessors in ascending address order (unreachable blocks
    // never gain a dominator, so skipping them changes nothing)
    for &ai in cfg.index_of().values() {
        for &si in &cfg.succ_idx()[ai as usize] {
            let c = &mut cursor[si as usize];
            pred_dat[*c as usize] = ai;
            *c += 1;
        }
    }
    Indexed { pred_off, pred_dat }
}

/// Index-based immediate dominators (Cooper–Harvey–Kennedy); entry maps to
/// itself, unreachable blocks are absent.
fn dominators_idx(ix: &Indexed, n: usize) -> Vec<u32> {
    let mut idom: Vec<Option<u32>> = vec![None; n];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new_idom: Option<u32> = None;
            for &p in ix.preds(b) {
                if idom[p as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(p, cur, &idom),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom.into_iter().map(|d| d.unwrap_or(0)).collect()
}

/// Computes immediate dominators (Cooper–Harvey–Kennedy).
pub fn dominators(cfg: &Cfg) -> BTreeMap<u32, u32> {
    let rpo = cfg.rpo();
    let ix = index_cfg(cfg);
    let idom = dominators_idx(&ix, rpo.len());
    rpo.iter()
        .enumerate()
        .map(|(i, &b)| (b, rpo[idom[i] as usize]))
        .collect()
}

/// RPO indices make the walk-up comparison direct: a block's dominator
/// always precedes it in RPO.
fn intersect(mut a: u32, mut b: u32, idom: &[Option<u32>]) -> u32 {
    while a != b {
        while a > b {
            a = idom[a as usize].expect("processed earlier in RPO");
        }
        while b > a {
            b = idom[b as usize].expect("processed earlier in RPO");
        }
    }
    a
}

/// Whether RPO index `a` dominates index `b`.
fn dominates_idx(a: u32, mut b: u32, idom: &[u32]) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == 0 {
            return false;
        }
        b = idom[b as usize];
    }
}

fn find_loops(cfg: &Cfg) -> Result<Vec<NaturalLoop>, AnalysisError> {
    let rpo = cfg.rpo();
    let n = rpo.len();
    let ix = index_cfg(cfg);
    let idom = dominators_idx(&ix, n);
    // Loops keyed by header ordinal: body membership bitmap + latch ordinals.
    let mut found: Vec<(u32, Vec<bool>, Vec<u32>)> = Vec::new();
    let mut loop_of_header: BTreeMap<u32, usize> = BTreeMap::new();
    let mut stack: Vec<u32> = Vec::new();

    for bi in 0..n as u32 {
        for &si in &cfg.succ_idx()[bi as usize] {
            // back edge b -> s?
            if dominates_idx(si, bi, &idom) {
                let li = *loop_of_header.entry(si).or_insert_with(|| {
                    let mut body = vec![false; n];
                    body[si as usize] = true;
                    found.push((si, body, Vec::new()));
                    found.len() - 1
                });
                let (_, body, latches) = &mut found[li];
                latches.push(bi);
                // natural loop body: reverse reachability from latch to header
                stack.push(bi);
                while let Some(x) = stack.pop() {
                    if body[x as usize] {
                        continue;
                    }
                    body[x as usize] = true;
                    stack.extend_from_slice(ix.preds(x as usize));
                }
            } else if si <= bi {
                // a retreating edge whose target does not dominate the
                // source: irreducible region
                return Err(AnalysisError::IrreducibleLoop {
                    at: rpo[si as usize],
                });
            }
        }
    }

    // Header-address order first so the final size sort (stable) breaks ties
    // the same way the address-keyed map used to.
    found.sort_by_key(|&(hi, _, _)| rpo[hi as usize]);
    let mut result: Vec<NaturalLoop> = found
        .into_iter()
        .map(|(hi, body, latches)| {
            let mut exits = BTreeSet::new();
            for i in 0..n {
                if body[i] && cfg.succ_idx()[i].iter().any(|&s| !body[s as usize]) {
                    exits.insert(rpo[i]);
                }
            }
            NaturalLoop {
                header: rpo[hi as usize],
                blocks: (0..n).filter(|&i| body[i]).map(|i| rpo[i]).collect(),
                latches: latches.iter().map(|&l| rpo[l as usize]).collect(),
                exits,
            }
        })
        .collect();
    // sort outermost (largest) first
    result.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use vericomp_arch::inst::{Cond, Inst as M};
    use vericomp_arch::program::FuncSym;
    use vericomp_arch::reg::{Cr, Gpr};
    use vericomp_arch::MachineConfig;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }

    fn program(code: Vec<M>) -> Program {
        let config = MachineConfig::mpc755();
        let len_words = code.len() as u32;
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "f".into(),
                entry: config.text_base,
                len_words,
            }],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        }
    }

    #[test]
    fn straight_line_single_block() {
        let p = program(vec![M::li(g(3), 1), M::li(g(4), 2), M::Blr]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[&cfg.entry].is_return);
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn diamond_reconstructed() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0 */
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            /* 4 */
            M::Bc {
                cond: Cond::Lt,
                cr: Cr::CR0,
                target: base + 16,
            },
            /* 8 */ M::li(g(4), 1),
            /* 12 */ M::B { target: base + 20 },
            /* 16 */ M::li(g(4), 2),
            /* 20 */ M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 4);
        let entry = &cfg.blocks[&base];
        assert_eq!(entry.succs, vec![base + 16, base + 8]);
        assert!(cfg.loops.is_empty());
        let idom = dominators(&cfg);
        assert_eq!(idom[&(base + 20)], base);
    }

    #[test]
    fn loop_detected_with_latch_and_exit() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0  */ M::li(g(4), 0),
            /* 4 head */
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(4),
                imm: 10,
            },
            /* 8  */
            M::Bc {
                cond: Cond::Ge,
                cr: Cr::CR0,
                target: base + 24,
            },
            /* 12 body */
            M::Addi {
                rd: g(4),
                ra: g(4),
                imm: 1,
            },
            /* 16 */ M::B { target: base + 4 },
            /* 20 dead */ M::Nop,
            /* 24 exit */ M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.header, base + 4);
        assert!(l.blocks.contains(&(base + 12)));
        assert!(!l.blocks.contains(&(base + 24)));
        assert_eq!(l.latches, BTreeSet::from([base + 12]));
        assert_eq!(l.exits, BTreeSet::from([base + 4]));
    }

    #[test]
    fn calls_recorded_not_block_ending() {
        let base = MachineConfig::mpc755().text_base;
        let config = MachineConfig::mpc755();
        let code = vec![
            /* 0 */ M::Bl { target: base + 12 },
            /* 4 */ M::li(g(3), 1),
            /* 8 */ M::Blr,
            /* 12 g */ M::Blr,
        ];
        let p = Program {
            entry: base,
            functions: vec![
                FuncSym {
                    name: "f".into(),
                    entry: base,
                    len_words: 3,
                },
                FuncSym {
                    name: "g".into(),
                    entry: base + 12,
                    len_words: 1,
                },
            ],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        };
        let cfg = reconstruct(&p, "f").unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[&base].calls, vec!["g".to_owned()]);
    }

    #[test]
    fn branch_outside_function_rejected() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            M::B {
                target: base + 0x1000,
            },
            M::Blr,
        ]);
        assert!(matches!(
            reconstruct(&p, "f"),
            Err(AnalysisError::BranchOutsideFunction { .. })
        ));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            M::Cmpwi {
                cr: Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            M::Bc {
                cond: Cond::Eq,
                cr: Cr::CR0,
                target: base + 12,
            },
            M::Blr,
            M::Blr,
        ]);
        let cfg = reconstruct(&p, "f").unwrap();
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], base);
        assert_eq!(rpo.len(), 3);
    }
}
