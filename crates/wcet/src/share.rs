//! Sharing infrastructure for the sparse analyzer: persistent interval
//! maps, a hash-consing arena, and the deterministic worklist.
//!
//! Three cooperating pieces (the Monniaux 2024 pragmatics, *Pragmatics of
//! Formally Verified Yet Efficient Static Analysis*, adapted to this
//! repository's zero-dependency rules):
//!
//! * [`PMap`] — a **persistent, canonically shaped treap** from `u32` keys
//!   to [`Interval`]s. Node priorities are a pure hash of the key, so a
//!   given key *set* always produces one unique tree shape, independent of
//!   insertion order. Clones are `O(1)` (`Arc` bumps), and the sharing-aware
//!   [`PMap::merge_shared`] join touches only subtrees that actually differ
//!   — identical subtrees are recognized by pointer equality and returned
//!   as-is.
//! * [`Arena`] — a **hash-consing table** that interns tree nodes bottom-up.
//!   States stored at block boundaries are canonized, so equal states become
//!   the *same* `Arc` and the fixpoint's convergence test is a pointer
//!   comparison. Node ids are monotonically increasing and never reused
//!   (even across capacity clears), so an id match always proves equality;
//!   an id mismatch proves nothing and falls back to the structural walk.
//! * [`Worklist`] — a **round-based reverse-postorder worklist** that
//!   replays the dense analyzer's iteration order exactly (see
//!   `DESIGN.md` §11): within a round blocks are processed in ascending RPO
//!   index; a successor whose index is behind the cursor is deferred to the
//!   next round, precisely like a dense sweep would revisit it on the next
//!   pass. Only blocks whose inputs changed are ever revisited, which is
//!   what makes the fixpoint sparse without perturbing widening order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::value::Interval;

/// Deterministic per-key treap priority (splitmix64 finalizer). Pure and
/// process-independent, so tree shapes — and therefore every downstream
/// digest — are reproducible everywhere.
fn prio_of(key: u32) -> u64 {
    let mut z = u64::from(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One treap node. `id == 0` means "not interned"; interned ids start at 1
/// and are unique for the lifetime of the arena that issued them.
#[derive(Debug)]
struct Node {
    key: u32,
    val: Interval,
    prio: u64,
    size: u32,
    left: Link,
    right: Link,
    id: AtomicU64,
}

type Link = Option<Arc<Node>>;

fn size(l: &Link) -> u32 {
    l.as_ref().map_or(0, |n| n.size)
}

fn mk(key: u32, val: Interval, left: Link, right: Link) -> Arc<Node> {
    Arc::new(Node {
        key,
        val,
        prio: prio_of(key),
        size: 1 + size(&left) + size(&right),
        left,
        right,
        id: AtomicU64::new(0),
    })
}

/// Max-heap ordering on (priority, key); keys are unique, so this is a
/// total order and the treap shape is canonical.
fn higher(a: &Node, b: &Node) -> bool {
    (a.prio, a.key) > (b.prio, b.key)
}

/// Splits into keys `< k` and keys `>= k`.
fn split_at(t: &Link, k: u32) -> (Link, Link) {
    let Some(n) = t else {
        return (None, None);
    };
    if n.key < k {
        let (a, b) = split_at(&n.right, k);
        (Some(mk(n.key, n.val, n.left.clone(), a)), b)
    } else {
        let (a, b) = split_at(&n.left, k);
        (a, Some(mk(n.key, n.val, b, n.right.clone())))
    }
}

/// Joins two treaps where every key of `l` is smaller than every key of `r`.
fn merge2(l: &Link, r: &Link) -> Link {
    match (l, r) {
        (None, _) => r.clone(),
        (_, None) => l.clone(),
        (Some(a), Some(b)) => {
            if higher(a, b) {
                Some(mk(a.key, a.val, a.left.clone(), merge2(&a.right, r)))
            } else {
                Some(mk(b.key, b.val, merge2(l, &b.left), b.right.clone()))
            }
        }
    }
}

/// Joins `l`, a middle element, and `r` (keys of `l` < `key` < keys of `r`).
fn join3(l: Link, key: u32, val: Interval, r: Link) -> Link {
    let pk = (prio_of(key), key);
    match (&l, &r) {
        (Some(a), _) if (a.prio, a.key) > pk && r.as_ref().map_or(true, |b| higher(a, b)) => {
            Some(mk(
                a.key,
                a.val,
                a.left.clone(),
                join3(a.right.clone(), key, val, r),
            ))
        }
        (_, Some(b)) if (b.prio, b.key) > pk => Some(mk(
            b.key,
            b.val,
            join3(l, key, val, b.left.clone()),
            b.right.clone(),
        )),
        _ => Some(mk(key, val, l, r)),
    }
}

fn get(t: &Link, k: u32) -> Option<Interval> {
    let mut cur = t;
    while let Some(n) = cur {
        cur = match k.cmp(&n.key) {
            std::cmp::Ordering::Less => &n.left,
            std::cmp::Ordering::Greater => &n.right,
            std::cmp::Ordering::Equal => return Some(n.val),
        };
    }
    None
}

/// Structural equality with two fast paths: pointer equality, and equal
/// nonzero interned ids. Canonical shaping means equal contents always have
/// node-wise equal structure, so the walk never needs to re-sort.
fn link_eq(a: &Link, b: &Link) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            if Arc::ptr_eq(x, y) {
                return true;
            }
            let (ix, iy) = (x.id.load(Ordering::Relaxed), y.id.load(Ordering::Relaxed));
            if ix != 0 && ix == iy {
                return true;
            }
            x.key == y.key
                && x.val == y.val
                && link_eq(&x.left, &y.left)
                && link_eq(&x.right, &y.right)
        }
        _ => false,
    }
}

/// Whether any key in `[lo, hi)` is present.
fn any_in_range(t: &Link, lo: u32, hi: u32) -> bool {
    let Some(n) = t else {
        return false;
    };
    if n.key >= lo && n.key < hi {
        return true;
    }
    (n.key > lo && any_in_range(&n.left, lo, hi)) || (n.key < hi && any_in_range(&n.right, lo, hi))
}

/// Whether any key lies *outside* `[lo, hi)`.
fn any_outside_range(t: &Link, lo: u32, hi: u32) -> bool {
    let Some(n) = t else {
        return false;
    };
    if n.key < lo || n.key >= hi {
        return true;
    }
    any_outside_range(&n.left, lo, hi) || any_outside_range(&n.right, lo, hi)
}

/// A persistent canonical map from `u32` to [`Interval`].
///
/// Absent keys mean ⊤ (no information) throughout the value analysis, so
/// the map only ever stores informative intervals. Cloning is `O(1)`.
#[derive(Debug, Clone, Default)]
pub struct PMap {
    root: Link,
}

impl PMap {
    /// The empty map.
    #[must_use]
    pub fn new() -> PMap {
        PMap::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        size(&self.root) as usize
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, k: u32) -> Option<Interval> {
        get(&self.root, k)
    }

    /// Inserts (or replaces) a binding. Inserting the value already present
    /// is a no-op that preserves sharing.
    pub fn insert(&mut self, k: u32, v: Interval) {
        if self.get(k) == Some(v) {
            return;
        }
        let (l, r) = split_at(&self.root, k);
        let (_, r) = split_at(&r, k + 1);
        self.root = join3(l, k, v, r);
    }

    /// Removes a binding if present; absent keys preserve sharing.
    pub fn remove(&mut self, k: u32) {
        if self.get(k).is_none() {
            return;
        }
        let (l, r) = split_at(&self.root, k);
        let (_, r) = split_at(&r, k + 1);
        self.root = merge2(&l, &r);
    }

    /// Drops every binding.
    pub fn clear(&mut self) {
        self.root = None;
    }

    /// Keeps only keys in `[lo, hi)` (the call-clobber shape: only the live
    /// stack window survives). `O(log n)` when nothing is dropped.
    pub fn range_restrict(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            self.root = None;
            return;
        }
        if !any_outside_range(&self.root, lo, hi) {
            return;
        }
        let (_, r) = split_at(&self.root, lo);
        let (mid, _) = split_at(&r, hi);
        self.root = mid;
    }

    /// Removes every key in `[lo, hi)` (the ranged-store clobber shape).
    /// `O(log n)` when nothing is in the range.
    pub fn range_remove(&mut self, lo: u32, hi: u32) {
        if lo >= hi || !any_in_range(&self.root, lo, hi) {
            return;
        }
        let (l, r) = split_at(&self.root, lo);
        let (_, r) = split_at(&r, hi);
        self.root = merge2(&l, &r);
    }

    /// Key/value pairs in ascending key order.
    pub fn iter(&self) -> PMapIter<'_> {
        let mut stack = Vec::new();
        push_left(&self.root, &mut stack);
        PMapIter { stack }
    }

    /// Sharing-aware intersection merge: the result binds exactly the keys
    /// present in **both** maps, to `f(a, b)`, with ⊤ results dropped.
    /// Subtrees shared by pointer are returned unchanged, so the cost is
    /// proportional to the *difference* between the maps — this requires
    /// `f(v, v) == v` (true for both join and widen), which the caller
    /// guarantees.
    #[must_use]
    pub fn merge_shared(
        &self,
        other: &PMap,
        f: impl Fn(Interval, Interval) -> Interval + Copy,
    ) -> PMap {
        fn go(a: &Link, b: &Link, f: impl Fn(Interval, Interval) -> Interval + Copy) -> Link {
            match (a, b) {
                (None, _) | (_, None) => None,
                (Some(x), Some(y)) => {
                    if Arc::ptr_eq(x, y) {
                        return a.clone();
                    }
                    let (bl, br) = split_at(b, x.key);
                    let bv = get(&br, x.key);
                    let (_, br) = split_at(&br, x.key + 1);
                    let l = go(&x.left, &bl, f);
                    let r = go(&x.right, &br, f);
                    match bv {
                        Some(v) => {
                            let nv = f(x.val, v);
                            if nv.is_top() {
                                merge2(&l, &r)
                            } else {
                                join3(l, x.key, nv, r)
                            }
                        }
                        None => merge2(&l, &r),
                    }
                }
            }
        }
        PMap {
            root: go(&self.root, &other.root, f),
        }
    }
}

impl PartialEq for PMap {
    fn eq(&self, other: &PMap) -> bool {
        size(&self.root) == size(&other.root) && link_eq(&self.root, &other.root)
    }
}

impl Eq for PMap {}

fn push_left<'a>(mut t: &'a Link, stack: &mut Vec<&'a Node>) {
    while let Some(n) = t {
        stack.push(n);
        t = &n.left;
    }
}

/// In-order iterator over a [`PMap`].
#[derive(Debug)]
pub struct PMapIter<'a> {
    stack: Vec<&'a Node>,
}

impl Iterator for PMapIter<'_> {
    type Item = (u32, Interval);

    fn next(&mut self) -> Option<(u32, Interval)> {
        let n = self.stack.pop()?;
        push_left(&n.right, &mut self.stack);
        Some((n.key, n.val))
    }
}

/// Hash-consing arena: interns [`PMap`] nodes so structurally equal trees
/// become pointer-equal, making the fixpoint's state comparison `O(1)` on
/// everything previously seen.
///
/// The arena is single-threaded by design (the session [`Analyzer`]
/// (`crate::Analyzer`) keeps a pool and checks one out per call); node ids
/// are globally meaningful only as "equal ids ⇒ equal trees".
#[derive(Debug, Default)]
pub struct Arena {
    table: HashMap<(u32, i64, i64, u64, u64), Arc<Node>>,
    next_id: u64,
    interned: u64,
}

/// Arenas beyond this many live interned nodes are cleared wholesale; ids
/// keep increasing so stale ids can never alias fresh ones.
const ARENA_CAP: usize = 1 << 20;

impl Arena {
    /// A fresh arena.
    #[must_use]
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Total nodes interned over the arena's lifetime.
    #[must_use]
    pub fn interned(&self) -> u64 {
        self.interned
    }

    /// Live entries in the intern table.
    #[must_use]
    pub fn live(&self) -> usize {
        self.table.len()
    }

    fn canonize_link(&mut self, t: &Link) -> Link {
        let n = t.as_ref()?;
        if n.id.load(Ordering::Relaxed) != 0 {
            return t.clone();
        }
        let left = self.canonize_link(&n.left);
        let right = self.canonize_link(&n.right);
        let lid = left.as_ref().map_or(0, |c| c.id.load(Ordering::Relaxed));
        let rid = right.as_ref().map_or(0, |c| c.id.load(Ordering::Relaxed));
        let key = (n.key, n.val.lo, n.val.hi, lid, rid);
        if let Some(c) = self.table.get(&key) {
            return Some(Arc::clone(c));
        }
        if self.table.len() >= ARENA_CAP {
            // Deterministic pressure valve: sharing restarts, ids do not.
            self.table.clear();
        }
        self.next_id += 1;
        self.interned += 1;
        let fresh = Arc::new(Node {
            key: n.key,
            val: n.val,
            prio: n.prio,
            size: n.size,
            left,
            right,
            id: AtomicU64::new(self.next_id),
        });
        self.table.insert(key, Arc::clone(&fresh));
        Some(fresh)
    }

    /// Returns the canonical representative of `m`: equal maps canonized by
    /// the same arena share one root `Arc`.
    #[must_use]
    pub fn canonize(&mut self, m: &PMap) -> PMap {
        PMap {
            root: self.canonize_link(&m.root),
        }
    }
}

/// Round-based reverse-postorder worklist over block indices.
///
/// `pop` yields the smallest pending index at or after the cursor; when none
/// remains, the round wraps to the smallest pending index overall. This is
/// exactly the visit order of a dense RPO sweep restricted to blocks whose
/// inputs changed, so sparse iteration preserves the dense analyzer's
/// widening decisions bit for bit.
#[derive(Debug, Default)]
pub struct Worklist {
    pending: std::collections::BTreeSet<u32>,
    cursor: u32,
}

impl Worklist {
    /// A worklist seeded with one index.
    #[must_use]
    pub fn seeded(i: u32) -> Worklist {
        let mut w = Worklist::default();
        w.push(i);
        w
    }

    /// Enqueues an index (idempotent).
    pub fn push(&mut self, i: u32) {
        self.pending.insert(i);
    }

    /// Dequeues the next index in round order.
    pub fn pop(&mut self) -> Option<u32> {
        let i = self
            .pending
            .range(self.cursor..)
            .next()
            .copied()
            .or_else(|| self.pending.iter().next().copied())?;
        self.pending.remove(&i);
        self.cursor = i + 1;
        Some(i)
    }
}

/// 128-bit FNV-1a — the same construction (and constants) as the pipeline's
/// artifact hasher, mirrored here because `vericomp-wcet` sits below
/// `vericomp-pipeline` in the crate graph. Used for the per-function
/// incremental-analysis keys.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }
}

impl Fingerprint {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a bool.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[u8::from(v)])
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// The digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PMap::new();
        assert!(m.is_empty());
        for k in [5u32, 1, 9, 3, 7] {
            m.insert(k, iv(i64::from(k), i64::from(k) + 1));
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(3), Some(iv(3, 4)));
        assert_eq!(m.get(4), None);
        m.remove(3);
        assert_eq!(m.get(3), None);
        assert_eq!(m.len(), 4);
        let keys: Vec<u32> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 5, 7, 9]);
    }

    #[test]
    fn shape_is_canonical_regardless_of_insertion_order() {
        let mut a = PMap::new();
        let mut b = PMap::new();
        for k in 0..64u32 {
            a.insert(k, iv(0, i64::from(k)));
        }
        for k in (0..64u32).rev() {
            b.insert(k, iv(0, i64::from(k)));
        }
        assert_eq!(a, b);
        // canonization maps both to the same root pointer
        let mut arena = Arena::new();
        let ca = arena.canonize(&a);
        let cb = arena.canonize(&b);
        assert!(match (&ca.root, &cb.root) {
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        });
    }

    #[test]
    fn merge_shared_intersects_and_drops_top() {
        let mut a = PMap::new();
        let mut b = PMap::new();
        a.insert(1, iv(0, 10));
        a.insert(2, iv(5, 6));
        b.insert(2, iv(7, 9));
        b.insert(3, iv(0, 0));
        let j = a.merge_shared(&b, Interval::join);
        assert_eq!(j.get(1), None, "only-in-a is dropped (⊤ join)");
        assert_eq!(j.get(2), Some(iv(5, 9)));
        assert_eq!(j.get(3), None);
        // joining to the full range drops the key entirely
        let mut c = PMap::new();
        c.insert(
            2,
            Interval {
                lo: i64::from(i32::MIN),
                hi: 0,
            },
        );
        let mut d = PMap::new();
        d.insert(
            2,
            Interval {
                lo: 0,
                hi: i64::from(i32::MAX),
            },
        );
        assert!(c.merge_shared(&d, Interval::join).is_empty());
    }

    #[test]
    fn merge_shared_preserves_sharing_on_identical_maps() {
        let mut a = PMap::new();
        for k in 0..32u32 {
            a.insert(k * 4, iv(0, 1));
        }
        let b = a.clone();
        let j = a.merge_shared(&b, Interval::join);
        assert!(match (&a.root, &j.root) {
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        });
    }

    #[test]
    fn range_ops_match_filtering() {
        let mut m = PMap::new();
        for k in (0..40u32).step_by(4) {
            m.insert(k, iv(1, 2));
        }
        let mut r = m.clone();
        r.range_restrict(8, 24);
        let keys: Vec<u32> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![8, 12, 16, 20]);
        let mut d = m.clone();
        d.range_remove(8, 24);
        let keys: Vec<u32> = d.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 4, 24, 28, 32, 36]);
        // no-op range ops preserve the root pointer (sharing)
        let mut n = m.clone();
        n.range_remove(100, 200);
        assert!(match (&m.root, &n.root) {
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        });
    }

    #[test]
    fn worklist_replays_round_order() {
        let mut w = Worklist::seeded(0);
        assert_eq!(w.pop(), Some(0));
        // forward target runs this round; backward target waits for the next
        w.push(2);
        w.push(1);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        w.push(1); // behind the cursor: next round
        w.push(3);
        assert_eq!(w.pop(), Some(3), "finish the round first");
        assert_eq!(w.pop(), Some(1), "then wrap");
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fingerprint_matches_pipeline_constants() {
        // pinned: the empty digest is the FNV offset basis, as in
        // crates/pipeline/src/hash.rs
        assert_eq!(Fingerprint::new().finish(), FNV_OFFSET);
        let mut h = Fingerprint::new();
        h.str("abc").u32(7);
        let mut h2 = Fingerprint::new();
        h2.str("abc").u32(7);
        assert_eq!(h.finish(), h2.finish());
        let mut h3 = Fingerprint::new();
        h3.str("ab").str("c");
        assert_ne!(h.finish(), h3.finish(), "length prefix framing");
    }
}
