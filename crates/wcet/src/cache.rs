//! Abstract cache analysis: LRU must-analysis for guaranteed hits, plus a
//! per-loop persistence analysis for first-miss accounting.
//!
//! The must-cache maps resident lines to an upper bound on their LRU age;
//! joins intersect the domains and take the maximum age, so a line present
//! in the must-cache is present in every concrete cache reachable at that
//! point — classifying its access **always-hit**. Everything else is
//! treated as a miss (*not-classified* accesses are misses for timing,
//! which is safe in our anomaly-free pipeline model).
//!
//! Inside loops the must-analysis alone classifies most accesses as misses
//! (the join with the cold entry state loses them), so a **persistence**
//! refinement runs per innermost loop: if every line a set receives during
//! the loop is known and they all fit the associativity, none can be
//! evicted, so each such line misses at most once per loop entry. The loop
//! is then charged one flat line-fill penalty per persistent line, and the
//! per-iteration cost treats those accesses as hits — a sound accounting
//! because one miss delays the in-order pipeline by at most the fill
//! latency.

use std::collections::{BTreeMap, BTreeSet};

use vericomp_arch::config::CacheConfig;
use vericomp_arch::inst::Inst;
use vericomp_arch::MachineConfig;

use crate::annot::AnnotationFile;
use crate::cfg::{Cfg, NaturalLoop};
use crate::value::{access_addr, transfer, AccessAddr, ValueAnalysis};

/// Abstract must-cache: resident lines with maximal LRU age, in one flat
/// list sorted by line number (a line's set is `line % nsets`, computed on
/// demand). A function touches a handful of lines, so every operation is
/// proportional to the resident population instead of the configured set
/// count — the dense `Vec<BTreeMap>`-per-set layout cloned and joined 128
/// mostly-empty sets per block visit and dominated the analyzer profile.
/// The sorted-vec backing makes the fixpoint's dominant operations (clone
/// at every block visit, join at every merge point) flat memcpys and
/// two-pointer merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MustCache {
    ways: u8,
    nsets: u32,
    /// `(line, max LRU age)`, strictly ascending by line.
    lines: Vec<(u32, u8)>,
}

impl MustCache {
    /// An empty (no guaranteed content) must-cache.
    pub fn new(config: &CacheConfig) -> MustCache {
        MustCache {
            ways: config.ways as u8,
            nsets: config.sets(),
            lines: Vec::new(),
        }
    }

    fn set_of(&self, line: u32) -> u32 {
        line % self.nsets
    }

    /// Whether an access to `line` is a guaranteed hit.
    pub fn contains(&self, line: u32) -> bool {
        self.lines.binary_search_by_key(&line, |&(l, _)| l).is_ok()
    }

    /// LRU update for a definite access to `line`; returns whether the
    /// access was a guaranteed hit (the line was present beforehand).
    pub fn access(&mut self, line: u32) -> bool {
        let ways = self.ways;
        let si = self.set_of(line);
        let (hit, old_age) = match self.lines.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => {
                if self.lines[i].1 == 0 {
                    // most recently used already: the update is a no-op
                    return true;
                }
                (true, self.lines[i].1)
            }
            Err(_) => (false, ways),
        };
        let nsets = self.nsets;
        self.lines.retain_mut(|(l, age)| {
            if *l % nsets == si {
                if *age < old_age {
                    *age += 1;
                }
                *age < ways
            } else {
                true
            }
        });
        match self.lines.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => self.lines[i].1 = 0,
            Err(i) => self.lines.insert(i, (line, 0)),
        }
        hit
    }

    /// Conservative update for an access that may touch any line of set
    /// `si`.
    pub fn age_set(&mut self, si: u32) {
        let ways = self.ways;
        let nsets = self.nsets;
        self.lines.retain_mut(|(l, age)| {
            if *l % nsets == si {
                *age += 1;
                *age < ways
            } else {
                true
            }
        });
    }

    /// Conservative update for an access with a completely unknown address.
    pub fn age_all(&mut self) {
        let ways = self.ways;
        self.lines.retain_mut(|(_, age)| {
            *age += 1;
            *age < ways
        });
    }

    /// Applies a possibly-imprecise data access.
    pub fn apply(&mut self, config: &CacheConfig, addr: AccessAddr, bytes: u32) {
        match addr {
            AccessAddr::Exact(a) => {
                // aligned accesses never straddle a line
                self.access(config.line_of(a));
            }
            AccessAddr::Range { lo, hi } => {
                let first = config.line_of(lo);
                let last = config.line_of(hi + bytes - 1);
                if last - first + 1 >= self.nsets {
                    self.age_all();
                } else {
                    let nsets = self.nsets;
                    let affected: BTreeSet<u32> = (first..=last).map(|l| l % nsets).collect();
                    for si in affected {
                        self.age_set(si);
                    }
                }
            }
            AccessAddr::Unknown => self.age_all(),
        }
    }

    /// Join: intersect domains, take the maximum age (two-pointer merge
    /// over the sorted backings).
    pub fn join(&self, other: &MustCache) -> MustCache {
        let mut lines = Vec::with_capacity(self.lines.len().min(other.lines.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.lines.len() && j < other.lines.len() {
            let (la, aa) = self.lines[i];
            let (lb, ab) = other.lines[j];
            match la.cmp(&lb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    lines.push((la, aa.max(ab)));
                    i += 1;
                    j += 1;
                }
            }
        }
        MustCache {
            ways: self.ways,
            nsets: self.nsets,
            lines,
        }
    }

    /// Copies `src` into `self`, reusing the backing allocation.
    fn copy_from(&mut self, src: &MustCache) {
        self.ways = src.ways;
        self.nsets = src.nsets;
        self.lines.clear();
        self.lines.extend_from_slice(&src.lines);
    }

    /// [`MustCache::join`] into a reused buffer; returns whether the result
    /// differs from `self` (the fixpoint's change test).
    fn join_changes(&self, other: &MustCache, buf: &mut Vec<(u32, u8)>) -> bool {
        buf.clear();
        let (mut i, mut j) = (0, 0);
        let mut changed = false;
        while i < self.lines.len() && j < other.lines.len() {
            let (la, aa) = self.lines[i];
            let (lb, ab) = other.lines[j];
            match la.cmp(&lb) {
                std::cmp::Ordering::Less => {
                    // a line of `self` left the intersection
                    changed = true;
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let age = aa.max(ab);
                    changed |= age != aa;
                    buf.push((la, age));
                    i += 1;
                    j += 1;
                }
            }
        }
        changed |= i < self.lines.len();
        changed
    }
}

/// Classification of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Guaranteed cache hit.
    Hit,
    /// Possible miss (charged the line fill every execution, unless
    /// rescued by persistence).
    Miss,
    /// Uncached I/O access (fixed long latency).
    Io,
}

/// Result of the combined I/D cache analysis.
#[derive(Debug, Clone)]
pub struct CacheClassification {
    /// Per-block classification, indexed by RPO position; one entry per
    /// instruction, in order: `(address, guaranteed fetch hit, data class)`.
    pub per_block: Vec<Vec<(u32, bool, Option<DataClass>)>>,
    /// Instruction addresses whose access (fetch and/or data) is persistent
    /// in its innermost loop.
    pub persistent_fetch: BTreeSet<u32>,
    /// Data accesses persistent in their innermost loop.
    pub persistent_data: BTreeSet<u32>,
    /// Flat per-entry fill penalty (cycles) of each innermost loop, by
    /// header address.
    pub loop_fill_penalty: BTreeMap<u32, u64>,
}

fn data_bytes(inst: &Inst) -> u32 {
    match inst.mem_access() {
        Some(vericomp_arch::inst::MemAccess::Load { bytes })
        | Some(vericomp_arch::inst::MemAccess::Store { bytes }) => u32::from(bytes),
        None => 0,
    }
}

/// One instruction's cache-relevant facts, precomputed per block: the
/// access addresses depend only on the (already fixed) value state at
/// block entry, so the value transfer is replayed exactly once per block
/// instead of on every fixpoint revisit.
struct Site {
    addr: u32,
    iline: u32,
    /// `(address, bytes)` of a data access, if the instruction makes one.
    access: Option<(AccessAddr, u32)>,
    is_call: bool,
}

fn block_sites(
    cfg: &Cfg,
    machine: &MachineConfig,
    va: &ValueAnalysis,
    annots: Option<&AnnotationFile>,
    block: u32,
) -> Vec<Site> {
    let blk = &cfg.blocks[&block];
    let mut vs = va.at(cfg, block).cloned().unwrap_or_default();
    let mut addr = blk.start;
    let mut sites = Vec::with_capacity(blk.insts.len());
    for inst in &blk.insts {
        let access = inst.mem_access().map(|_| {
            let a = access_addr(&vs, inst).expect("mem instruction has an address");
            (a, data_bytes(inst))
        });
        sites.push(Site {
            addr,
            iline: machine.icache.line_of(addr),
            access,
            is_call: matches!(inst, Inst::Bl { .. }),
        });
        transfer(&mut vs, inst, machine, annots);
        addr += 4;
    }
    sites
}

/// Runs the cache analyses over one function.
pub fn analyze(
    cfg: &Cfg,
    machine: &MachineConfig,
    va: &ValueAnalysis,
    annots: Option<&AnnotationFile>,
) -> CacheClassification {
    // Dense indexing by RPO position: every per-block table is a Vec, so
    // the fixpoint's inner loop does no tree lookups at all. The index
    // tables are computed once at CFG reconstruction and shared here.
    let rpo = cfg.rpo();
    let index_of = cfg.index_of();
    let sites: Vec<Vec<Site>> = rpo
        .iter()
        .map(|&b| block_sites(cfg, machine, va, annots, b))
        .collect();
    let succ_idx = cfg.succ_idx();

    // ---- must-analysis fixpoint ----
    let mut at_entry: Vec<Option<(MustCache, MustCache)>> = vec![None; rpo.len()];
    at_entry[0] = Some((
        MustCache::new(&machine.icache),
        MustCache::new(&machine.dcache),
    ));
    // Sparse round-based RPO worklist; the must-cache join is a monotone
    // idempotent intersection, so revisiting only changed-input blocks
    // reaches the same (unique) least fixpoint as the dense sweep.
    // classifications are recorded during the fixpoint itself: every
    // input change re-queues the block, so the vector written at its last
    // visit is exactly what a post-fixpoint re-walk would produce
    let mut classified: Vec<Vec<(u32, bool, Option<DataClass>)>> = vec![Vec::new(); rpo.len()];
    let mut work = crate::share::Worklist::seeded(0);
    // scratch states reused across visits: the walk works on copies of the
    // entry pair, and joins land in reused buffers, so the steady-state
    // loop does not allocate at all
    let mut ic = MustCache::new(&machine.icache);
    let mut dc = MustCache::new(&machine.dcache);
    let mut buf_i: Vec<(u32, u8)> = Vec::new();
    let mut buf_d: Vec<(u32, u8)> = Vec::new();
    while let Some(i) = work.pop() {
        {
            let Some((eic, edc)) = &at_entry[i as usize] else {
                continue;
            };
            ic.copy_from(eic);
            dc.copy_from(edc);
        }
        let cls = &mut classified[i as usize];
        cls.clear();
        walk_block(
            machine,
            &sites[i as usize],
            &mut ic,
            &mut dc,
            |addr, fetch, dclass| {
                cls.push((addr, fetch, dclass));
            },
        );
        for &si in &succ_idx[i as usize] {
            match &mut at_entry[si as usize] {
                None => {
                    at_entry[si as usize] = Some((ic.clone(), dc.clone()));
                    work.push(si);
                }
                Some((oi, od)) => {
                    let ci = oi.join_changes(&ic, &mut buf_i);
                    let cd = od.join_changes(&dc, &mut buf_d);
                    if ci || cd {
                        if ci {
                            std::mem::swap(&mut oi.lines, &mut buf_i);
                        }
                        if cd {
                            std::mem::swap(&mut od.lines, &mut buf_d);
                        }
                        work.push(si);
                    }
                }
            }
        }
    }

    // ---- persistence per innermost loop ----
    let mut persistent_fetch = BTreeSet::new();
    let mut persistent_data = BTreeSet::new();
    let mut loop_fill_penalty = BTreeMap::new();
    for l in &cfg.loops {
        let is_innermost = !cfg
            .loops
            .iter()
            .any(|o| o.header != l.header && o.blocks.is_subset(&l.blocks));
        if !is_innermost {
            continue;
        }
        let (pf, pd, penalty) = loop_persistence(machine, &sites, &index_of, l);
        persistent_fetch.extend(pf);
        persistent_data.extend(pd);
        loop_fill_penalty.insert(l.header, penalty);
    }

    CacheClassification {
        per_block: classified,
        persistent_fetch,
        persistent_data,
        loop_fill_penalty,
    }
}

/// Walks one block's precomputed sites, updating cache states and
/// reporting per-instruction classifications through `report(addr,
/// fetch_hit, data_class)`.
fn walk_block(
    machine: &MachineConfig,
    sites: &[Site],
    ic: &mut MustCache,
    dc: &mut MustCache,
    mut report: impl FnMut(u32, bool, Option<DataClass>),
) {
    for site in sites {
        // fetch
        let f_hit = ic.access(site.iline);
        // data
        let mut dclass = None;
        if let Some((a, bytes)) = site.access {
            let io = match a {
                AccessAddr::Exact(x) => machine.is_io(x),
                AccessAddr::Range { lo, hi } => {
                    // a range overlapping I/O is treated as I/O-or-miss:
                    // classify Io only when fully inside
                    machine.is_io(lo) && machine.is_io(hi)
                }
                AccessAddr::Unknown => false,
            };
            if io {
                dclass = Some(DataClass::Io);
            } else {
                let hit = match a {
                    // aligned accesses never straddle a line
                    AccessAddr::Exact(x) => dc.access(machine.dcache.line_of(x)),
                    _ => {
                        dc.apply(&machine.dcache, a, bytes);
                        false
                    }
                };
                dclass = Some(if hit { DataClass::Hit } else { DataClass::Miss });
            }
        }
        report(site.addr, f_hit, dclass);
        if site.is_call {
            // the callee may touch anything: caches are unknown afterwards
            *ic = MustCache::new(&machine.icache);
            *dc = MustCache::new(&machine.dcache);
        }
    }
}

/// Persistence for one innermost loop: returns the persistent fetch
/// addresses, persistent data-access addresses, and the flat per-entry fill
/// penalty.
fn loop_persistence(
    machine: &MachineConfig,
    sites: &[Vec<Site>],
    index_of: &BTreeMap<u32, u32>,
    l: &NaturalLoop,
) -> (BTreeSet<u32>, BTreeSet<u32>, u64) {
    let insets = machine.icache.sets();
    let dsets = machine.dcache.sets();
    // per set: known lines; bool = overflowed by imprecise access
    let mut ilines: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut dlines: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut d_overflow: BTreeSet<u32> = BTreeSet::new();
    let mut all_overflow = false;

    // access sites
    let mut fetch_sites: Vec<(u32, u32)> = Vec::new(); // (inst addr, line)
    let mut data_sites: Vec<(u32, Vec<u32>)> = Vec::new(); // (inst addr, lines)

    for &baddr in &l.blocks {
        for site in &sites[index_of[&baddr] as usize] {
            if site.is_call {
                all_overflow = true; // callee pollutes both caches
            }
            let line = site.iline;
            ilines.entry(line % insets).or_default().insert(line);
            fetch_sites.push((site.addr, line));
            if let Some((a, bytes)) = site.access {
                match a {
                    AccessAddr::Exact(x) if !machine.is_io(x) => {
                        let line = machine.dcache.line_of(x);
                        dlines.entry(line % dsets).or_default().insert(line);
                        data_sites.push((site.addr, vec![line]));
                    }
                    AccessAddr::Exact(_) => {}
                    AccessAddr::Range { lo, hi } if !machine.is_io(lo) => {
                        let first = machine.dcache.line_of(lo);
                        let last = machine.dcache.line_of(hi + bytes - 1);
                        if last - first < 2 * machine.dcache.ways {
                            let lines: Vec<u32> = (first..=last).collect();
                            for &li in &lines {
                                dlines.entry(li % dsets).or_default().insert(li);
                            }
                            data_sites.push((site.addr, lines));
                        } else {
                            for li in first..=last.min(first + dsets) {
                                d_overflow.insert(li % dsets);
                            }
                        }
                    }
                    _ => {
                        all_overflow = true;
                    }
                }
            }
        }
    }

    if all_overflow {
        return (BTreeSet::new(), BTreeSet::new(), 0);
    }

    let iways = machine.icache.ways as usize;
    let dways = machine.dcache.ways as usize;
    let safe_iset = |s: u32| ilines.get(&s).map(|v| v.len() <= iways).unwrap_or(true);
    let safe_dset = |s: u32| {
        !d_overflow.contains(&s) && dlines.get(&s).map(|v| v.len() <= dways).unwrap_or(true)
    };

    let mut persistent_fetch = BTreeSet::new();
    let mut pers_ilines = BTreeSet::new();
    for (site, line) in fetch_sites {
        if safe_iset(line % insets) {
            persistent_fetch.insert(site);
            pers_ilines.insert(line);
        }
    }
    let mut persistent_data = BTreeSet::new();
    let mut pers_dlines = BTreeSet::new();
    for (site, lines) in data_sites {
        if lines.iter().all(|&li| safe_dset(li % dsets)) {
            persistent_data.insert(site);
            pers_dlines.extend(lines);
        }
    }
    let penalty = pers_ilines.len() as u64 * u64::from(machine.fetch_latency)
        + pers_dlines.len() as u64 * u64::from(machine.mem_latency);
    (persistent_fetch, persistent_data, penalty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        } // 4 sets
    }

    #[test]
    fn must_cache_hits_after_access() {
        let mut m = MustCache::new(&tiny());
        assert!(!m.contains(3));
        m.access(3);
        assert!(m.contains(3));
    }

    #[test]
    fn must_cache_eviction_by_age() {
        let mut m = MustCache::new(&tiny());
        // lines 0, 4, 8 map to set 0 (4 sets)
        m.access(0);
        m.access(4);
        assert!(m.contains(0) && m.contains(4));
        m.access(8); // 2 ways: line 0 (age 1 → 2) leaves the must set
        assert!(!m.contains(0));
        assert!(m.contains(4) && m.contains(8));
    }

    #[test]
    fn repeated_access_refreshes_age() {
        let mut m = MustCache::new(&tiny());
        m.access(0);
        m.access(4);
        m.access(0); // 0 young again
        m.access(8); // evicts 4
        assert!(m.contains(0));
        assert!(!m.contains(4));
    }

    #[test]
    fn join_is_intersection_with_max_age() {
        let c = tiny();
        let mut a = MustCache::new(&c);
        a.access(0);
        a.access(4); // 0 has age 1 in a
        let mut b = MustCache::new(&c);
        b.access(0); // 0 has age 0 in b
        let j = a.join(&b);
        assert!(j.contains(0));
        assert!(!j.contains(4));
        // age must be the max: one more conflicting access evicts 0 in j
        let mut j2 = j.clone();
        j2.access(8);
        assert!(!j2.contains(0), "join must keep the pessimistic age");
    }

    #[test]
    fn unknown_access_ages_everything() {
        let mut m = MustCache::new(&tiny());
        m.access(0);
        m.access(1);
        m.age_all();
        m.age_all();
        assert!(!m.contains(0));
        assert!(!m.contains(1));
    }

    #[test]
    fn range_access_only_affects_its_sets() {
        let c = tiny();
        let mut m = MustCache::new(&c);
        m.access(0); // set 0
        m.access(1); // set 1
                     // a range covering lines 1..=2 (sets 1 and 2)
        m.apply(&c, AccessAddr::Range { lo: 32, hi: 64 }, 4);
        m.apply(&c, AccessAddr::Range { lo: 32, hi: 64 }, 4);
        assert!(m.contains(0), "set 0 untouched");
        assert!(!m.contains(1), "set 1 aged out");
    }
}
