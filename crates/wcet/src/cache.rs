//! Abstract cache analysis: LRU must-analysis for guaranteed hits, plus a
//! per-loop persistence analysis for first-miss accounting.
//!
//! The must-cache maps resident lines to an upper bound on their LRU age;
//! joins intersect the domains and take the maximum age, so a line present
//! in the must-cache is present in every concrete cache reachable at that
//! point — classifying its access **always-hit**. Everything else is
//! treated as a miss (*not-classified* accesses are misses for timing,
//! which is safe in our anomaly-free pipeline model).
//!
//! Inside loops the must-analysis alone classifies most accesses as misses
//! (the join with the cold entry state loses them), so a **persistence**
//! refinement runs per innermost loop: if every line a set receives during
//! the loop is known and they all fit the associativity, none can be
//! evicted, so each such line misses at most once per loop entry. The loop
//! is then charged one flat line-fill penalty per persistent line, and the
//! per-iteration cost treats those accesses as hits — a sound accounting
//! because one miss delays the in-order pipeline by at most the fill
//! latency.

use std::collections::{BTreeMap, BTreeSet};

use vericomp_arch::config::CacheConfig;
use vericomp_arch::inst::Inst;
use vericomp_arch::MachineConfig;

use crate::annot::AnnotationFile;
use crate::cfg::{Cfg, NaturalLoop};
use crate::value::{access_addr, transfer, AbsState, AccessAddr, ValueAnalysis};

/// Abstract must-cache: per set, resident lines with maximal LRU age.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MustCache {
    ways: u8,
    sets: Vec<BTreeMap<u32, u8>>,
}

impl MustCache {
    /// An empty (no guaranteed content) must-cache.
    pub fn new(config: &CacheConfig) -> MustCache {
        MustCache {
            ways: config.ways as u8,
            sets: vec![BTreeMap::new(); config.sets() as usize],
        }
    }

    fn set_of(&self, line: u32) -> usize {
        (line as usize) % self.sets.len()
    }

    /// Whether an access to `line` is a guaranteed hit.
    pub fn contains(&self, line: u32) -> bool {
        self.sets[self.set_of(line)].contains_key(&line)
    }

    /// LRU update for a definite access to `line`.
    pub fn access(&mut self, line: u32) {
        let ways = self.ways;
        let si = self.set_of(line);
        let set = &mut self.sets[si];
        let old_age = set.get(&line).copied().unwrap_or(ways);
        set.retain(|_, age| {
            if *age < old_age {
                *age += 1;
            }
            *age < ways
        });
        set.insert(line, 0);
    }

    /// Conservative update for an access that may touch any line of `set`.
    pub fn age_set(&mut self, si: usize) {
        let ways = self.ways;
        let set = &mut self.sets[si];
        set.retain(|_, age| {
            *age += 1;
            *age < ways
        });
    }

    /// Conservative update for an access with a completely unknown address.
    pub fn age_all(&mut self) {
        for si in 0..self.sets.len() {
            self.age_set(si);
        }
    }

    /// Applies a possibly-imprecise data access.
    pub fn apply(&mut self, config: &CacheConfig, addr: AccessAddr, bytes: u32) {
        match addr {
            AccessAddr::Exact(a) => {
                // aligned accesses never straddle a line
                self.access(config.line_of(a));
            }
            AccessAddr::Range { lo, hi } => {
                let first = config.line_of(lo);
                let last = config.line_of(hi + bytes - 1);
                let nsets = self.sets.len() as u32;
                if last - first + 1 >= nsets {
                    self.age_all();
                } else {
                    let affected: BTreeSet<usize> =
                        (first..=last).map(|l| (l % nsets) as usize).collect();
                    for si in affected {
                        self.age_set(si);
                    }
                }
            }
            AccessAddr::Unknown => self.age_all(),
        }
    }

    /// Join: intersect domains, take the maximum age.
    pub fn join(&self, other: &MustCache) -> MustCache {
        let sets = self
            .sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| {
                a.iter()
                    .filter_map(|(&l, &age)| b.get(&l).map(|&bg| (l, age.max(bg))))
                    .collect()
            })
            .collect();
        MustCache {
            ways: self.ways,
            sets,
        }
    }
}

/// Classification of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Guaranteed cache hit.
    Hit,
    /// Possible miss (charged the line fill every execution, unless
    /// rescued by persistence).
    Miss,
    /// Uncached I/O access (fixed long latency).
    Io,
}

/// Result of the combined I/D cache analysis.
#[derive(Debug, Clone)]
pub struct CacheClassification {
    /// Guaranteed-hit instruction fetches, by instruction address.
    pub fetch_hit: BTreeSet<u32>,
    /// Data-access classification by instruction address.
    pub data: BTreeMap<u32, DataClass>,
    /// Instruction addresses whose access (fetch and/or data) is persistent
    /// in its innermost loop.
    pub persistent_fetch: BTreeSet<u32>,
    /// Data accesses persistent in their innermost loop.
    pub persistent_data: BTreeSet<u32>,
    /// Flat per-entry fill penalty (cycles) of each innermost loop, by
    /// header address.
    pub loop_fill_penalty: BTreeMap<u32, u64>,
}

fn data_bytes(inst: &Inst) -> u32 {
    match inst.mem_access() {
        Some(vericomp_arch::inst::MemAccess::Load { bytes })
        | Some(vericomp_arch::inst::MemAccess::Store { bytes }) => u32::from(bytes),
        None => 0,
    }
}

/// Runs the cache analyses over one function.
pub fn analyze(
    cfg: &Cfg,
    machine: &MachineConfig,
    va: &ValueAnalysis,
    annots: Option<&AnnotationFile>,
) -> CacheClassification {
    // ---- must-analysis fixpoint ----
    let mut at_entry: BTreeMap<u32, (MustCache, MustCache)> = BTreeMap::new();
    at_entry.insert(
        cfg.entry,
        (
            MustCache::new(&machine.icache),
            MustCache::new(&machine.dcache),
        ),
    );
    let rpo = cfg.rpo();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let Some((mut ic, mut dc)) = at_entry.get(&b).cloned() else {
                continue;
            };
            let mut vs = va.at_entry.get(&b).cloned().unwrap_or_default();
            walk_block(
                cfg,
                machine,
                b,
                &mut ic,
                &mut dc,
                &mut vs,
                annots,
                |_, _, _| {},
            );
            for &succ in &cfg.blocks[&b].succs {
                let merged = match at_entry.get(&succ) {
                    None => (ic.clone(), dc.clone()),
                    Some((oi, od)) => (oi.join(&ic), od.join(&dc)),
                };
                if at_entry.get(&succ) != Some(&merged) {
                    at_entry.insert(succ, merged);
                    changed = true;
                }
            }
        }
    }

    // ---- classification pass ----
    let mut fetch_hit = BTreeSet::new();
    let mut data = BTreeMap::new();
    for &b in &rpo {
        let Some((mut ic, mut dc)) = at_entry.get(&b).cloned() else {
            continue;
        };
        let mut vs = va.at_entry.get(&b).cloned().unwrap_or_default();
        walk_block(
            cfg,
            machine,
            b,
            &mut ic,
            &mut dc,
            &mut vs,
            annots,
            |addr, fetch, dclass| {
                if fetch {
                    fetch_hit.insert(addr);
                }
                if let Some(d) = dclass {
                    data.insert(addr, d);
                }
            },
        );
    }

    // ---- persistence per innermost loop ----
    let mut persistent_fetch = BTreeSet::new();
    let mut persistent_data = BTreeSet::new();
    let mut loop_fill_penalty = BTreeMap::new();
    for l in &cfg.loops {
        let is_innermost = !cfg
            .loops
            .iter()
            .any(|o| o.header != l.header && o.blocks.is_subset(&l.blocks));
        if !is_innermost {
            continue;
        }
        let (pf, pd, penalty) = loop_persistence(cfg, machine, va, annots, l);
        persistent_fetch.extend(pf);
        persistent_data.extend(pd);
        loop_fill_penalty.insert(l.header, penalty);
    }

    CacheClassification {
        fetch_hit,
        data,
        persistent_fetch,
        persistent_data,
        loop_fill_penalty,
    }
}

/// Walks one block, updating cache and value states and reporting
/// per-instruction classifications through `report(addr, fetch_hit,
/// data_class)`.
#[allow(clippy::too_many_arguments)]
fn walk_block(
    cfg: &Cfg,
    machine: &MachineConfig,
    block: u32,
    ic: &mut MustCache,
    dc: &mut MustCache,
    vs: &mut AbsState,
    annots: Option<&AnnotationFile>,
    mut report: impl FnMut(u32, bool, Option<DataClass>),
) {
    let blk = &cfg.blocks[&block];
    let mut addr = blk.start;
    for inst in &blk.insts {
        // fetch
        let line = machine.icache.line_of(addr);
        let f_hit = ic.contains(line);
        ic.access(line);
        // data
        let mut dclass = None;
        if inst.mem_access().is_some() {
            let a = access_addr(vs, inst).expect("mem instruction has an address");
            let io = match a {
                AccessAddr::Exact(x) => machine.is_io(x),
                AccessAddr::Range { lo, hi } => {
                    // a range overlapping I/O is treated as I/O-or-miss:
                    // classify Io only when fully inside
                    machine.is_io(lo) && machine.is_io(hi)
                }
                AccessAddr::Unknown => false,
            };
            if io {
                dclass = Some(DataClass::Io);
            } else {
                let hit = match a {
                    AccessAddr::Exact(x) => dc.contains(machine.dcache.line_of(x)),
                    _ => false,
                };
                dc.apply(&machine.dcache, a, data_bytes(inst));
                dclass = Some(if hit { DataClass::Hit } else { DataClass::Miss });
            }
        }
        report(addr, f_hit, dclass);
        // value state last (so the access used the pre-state)
        transfer(vs, inst, machine, annots);
        if matches!(inst, Inst::Bl { .. }) {
            // the callee may touch anything: caches are unknown afterwards
            *ic = MustCache::new(&machine.icache);
            *dc = MustCache::new(&machine.dcache);
        }
        addr += 4;
    }
}

/// Persistence for one innermost loop: returns the persistent fetch
/// addresses, persistent data-access addresses, and the flat per-entry fill
/// penalty.
fn loop_persistence(
    cfg: &Cfg,
    machine: &MachineConfig,
    va: &ValueAnalysis,
    annots: Option<&AnnotationFile>,
    l: &NaturalLoop,
) -> (BTreeSet<u32>, BTreeSet<u32>, u64) {
    let insets = machine.icache.sets();
    let dsets = machine.dcache.sets();
    // per set: known lines; bool = overflowed by imprecise access
    let mut ilines: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut dlines: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut d_overflow: BTreeSet<u32> = BTreeSet::new();
    let mut all_overflow = false;

    // access sites
    let mut fetch_sites: Vec<(u32, u32)> = Vec::new(); // (inst addr, line)
    let mut data_sites: Vec<(u32, Vec<u32>)> = Vec::new(); // (inst addr, lines)

    for &baddr in &l.blocks {
        let blk = &cfg.blocks[&baddr];
        let mut vs = va.at_entry.get(&baddr).cloned().unwrap_or_default();
        let mut addr = baddr;
        for inst in &blk.insts {
            if matches!(inst, Inst::Bl { .. }) {
                all_overflow = true; // callee pollutes both caches
            }
            let line = machine.icache.line_of(addr);
            ilines.entry(line % insets).or_default().insert(line);
            fetch_sites.push((addr, line));
            if inst.mem_access().is_some() {
                match access_addr(&vs, inst).expect("mem instruction has an address") {
                    AccessAddr::Exact(x) if !machine.is_io(x) => {
                        let line = machine.dcache.line_of(x);
                        dlines.entry(line % dsets).or_default().insert(line);
                        data_sites.push((addr, vec![line]));
                    }
                    AccessAddr::Exact(_) => {}
                    AccessAddr::Range { lo, hi } if !machine.is_io(lo) => {
                        let first = machine.dcache.line_of(lo);
                        let last = machine.dcache.line_of(hi + data_bytes(inst) - 1);
                        if last - first < 2 * machine.dcache.ways {
                            let lines: Vec<u32> = (first..=last).collect();
                            for &li in &lines {
                                dlines.entry(li % dsets).or_default().insert(li);
                            }
                            data_sites.push((addr, lines));
                        } else {
                            for li in first..=last.min(first + dsets) {
                                d_overflow.insert(li % dsets);
                            }
                        }
                    }
                    _ => {
                        all_overflow = true;
                    }
                }
            }
            transfer(&mut vs, inst, machine, annots);
            addr += 4;
        }
    }

    if all_overflow {
        return (BTreeSet::new(), BTreeSet::new(), 0);
    }

    let iways = machine.icache.ways as usize;
    let dways = machine.dcache.ways as usize;
    let safe_iset = |s: u32| ilines.get(&s).map(|v| v.len() <= iways).unwrap_or(true);
    let safe_dset = |s: u32| {
        !d_overflow.contains(&s) && dlines.get(&s).map(|v| v.len() <= dways).unwrap_or(true)
    };

    let mut persistent_fetch = BTreeSet::new();
    let mut pers_ilines = BTreeSet::new();
    for (site, line) in fetch_sites {
        if safe_iset(line % insets) {
            persistent_fetch.insert(site);
            pers_ilines.insert(line);
        }
    }
    let mut persistent_data = BTreeSet::new();
    let mut pers_dlines = BTreeSet::new();
    for (site, lines) in data_sites {
        if lines.iter().all(|&li| safe_dset(li % dsets)) {
            persistent_data.insert(site);
            pers_dlines.extend(lines);
        }
    }
    let penalty = pers_ilines.len() as u64 * u64::from(machine.fetch_latency)
        + pers_dlines.len() as u64 * u64::from(machine.mem_latency);
    (persistent_fetch, persistent_data, penalty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        } // 4 sets
    }

    #[test]
    fn must_cache_hits_after_access() {
        let mut m = MustCache::new(&tiny());
        assert!(!m.contains(3));
        m.access(3);
        assert!(m.contains(3));
    }

    #[test]
    fn must_cache_eviction_by_age() {
        let mut m = MustCache::new(&tiny());
        // lines 0, 4, 8 map to set 0 (4 sets)
        m.access(0);
        m.access(4);
        assert!(m.contains(0) && m.contains(4));
        m.access(8); // 2 ways: line 0 (age 1 → 2) leaves the must set
        assert!(!m.contains(0));
        assert!(m.contains(4) && m.contains(8));
    }

    #[test]
    fn repeated_access_refreshes_age() {
        let mut m = MustCache::new(&tiny());
        m.access(0);
        m.access(4);
        m.access(0); // 0 young again
        m.access(8); // evicts 4
        assert!(m.contains(0));
        assert!(!m.contains(4));
    }

    #[test]
    fn join_is_intersection_with_max_age() {
        let c = tiny();
        let mut a = MustCache::new(&c);
        a.access(0);
        a.access(4); // 0 has age 1 in a
        let mut b = MustCache::new(&c);
        b.access(0); // 0 has age 0 in b
        let j = a.join(&b);
        assert!(j.contains(0));
        assert!(!j.contains(4));
        // age must be the max: one more conflicting access evicts 0 in j
        let mut j2 = j.clone();
        j2.access(8);
        assert!(!j2.contains(0), "join must keep the pessimistic age");
    }

    #[test]
    fn unknown_access_ages_everything() {
        let mut m = MustCache::new(&tiny());
        m.access(0);
        m.access(1);
        m.age_all();
        m.age_all();
        assert!(!m.contains(0));
        assert!(!m.contains(1));
    }

    #[test]
    fn range_access_only_affects_its_sets() {
        let c = tiny();
        let mut m = MustCache::new(&c);
        m.access(0); // set 0
        m.access(1); // set 1
                     // a range covering lines 1..=2 (sets 1 and 2)
        m.apply(&c, AccessAddr::Range { lo: 32, hi: 64 }, 4);
        m.apply(&c, AccessAddr::Range { lo: 32, hi: 64 }, 4);
        assert!(m.contains(0), "set 0 untouched");
        assert!(!m.contains(1), "set 1 aged out");
    }
}
