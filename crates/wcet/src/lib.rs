//! Static worst-case execution-time analysis in the style of AbsInt aiT
//! (the measurement instrument of the paper's evaluation).
//!
//! The analyzer follows the classic phase structure:
//!
//! 1. **decoding & CFG reconstruction** from the binary ([`mod@cfg`]),
//! 2. **value analysis** — intervals over registers and memory cells,
//!    sharpened by the annotation file generated from the compiler's
//!    `__builtin_annotation` table ([`value`], [`annot`]),
//! 3. **loop-bound analysis** ([`bounds`]),
//! 4. **cache analysis** — LRU must-analysis plus per-loop persistence
//!    ([`cache`]),
//! 5. **pipeline analysis** — the shared anomaly-free dual-issue timing
//!    core, run abstractly with max-joined residual states,
//! 6. **path analysis** — longest path with loops collapsed by their
//!    bounds.
//!
//! The produced bound is safe with respect to the machine model of
//! `vericomp-mach`: for every input, the reported `wcet ≥` the cycle
//! count the simulator reports for `f` (a tested property).
//!
//! The entry point is the session-style [`Analyzer`]: it owns a
//! hash-consing arena and a per-function fact cache that persist across
//! calls, so re-analyzing a fleet after editing one function re-runs the
//! fixpoint only for the functions whose content digest changed.
//!
//! # Example
//!
//! ```
//! use vericomp_core::{Compiler, OptLevel};
//! use vericomp_minic::ast::*;
//! use vericomp_wcet::{Analyzer, AnalysisRequest};
//!
//! let prog = Program {
//!     globals: vec![Global { name: "x".into(), def: GlobalDef::ScalarF64(None) }],
//!     functions: vec![Function {
//!         name: "step".into(),
//!         params: vec![],
//!         ret: None,
//!         locals: vec![],
//!         body: vec![Stmt::Assign(
//!             "x".into(),
//!             Expr::binop(Binop::MulF, Expr::var("x"), Expr::FloatLit(2.0)),
//!         )],
//!     }],
//! };
//! let binary = Compiler::new(OptLevel::Verified).compile(&prog, "step")?;
//! let analyzer = Analyzer::default();
//! let request = AnalysisRequest::builder().program(&binary).function("step").build();
//! let analysis = analyzer.analyze(&request)?;
//! assert!(analysis.report.wcet > 0);
//! assert_eq!(analysis.functions_analyzed, 1);
//! // a second call over the same binary is served from the fact cache
//! assert_eq!(analyzer.analyze(&request)?.functions_reused, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annot;
pub mod bounds;
pub mod cache;
pub mod cfg;
pub mod share;
pub mod value;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vericomp_arch::encode::DecodeError;
use vericomp_arch::inst::Inst;
use vericomp_arch::program::Program;
use vericomp_arch::reg::Gpr;
use vericomp_arch::timing::{MicroOp, PipeResiduals, PipeState};

use annot::AnnotationFile;
use cache::DataClass;
use cfg::Cfg;
use share::{Arena, Fingerprint, Worklist};

/// Analysis options.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Whether to use the program's annotation table (§3.4). Disabling it
    /// reproduces the "analysis without annotations" scenario, where
    /// data-dependent loops cannot be bounded.
    pub use_annotations: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            use_annotations: true,
        }
    }
}

/// The computed WCET bound and its supporting facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetReport {
    /// The bound, in machine cycles.
    pub wcet: u64,
    /// Loop bounds by loop-header address (entry function only).
    pub loop_bounds: BTreeMap<u32, u64>,
    /// Number of reconstructed basic blocks (entry function only).
    pub block_count: usize,
    /// WCET bounds of callees, by name.
    pub callees: BTreeMap<String, u64>,
    /// Per-block cycle bounds (entry function only), by block address —
    /// diagnostic output for precision studies.
    pub block_costs: BTreeMap<u32, u64>,
}

/// Analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The requested function is not in the symbol table.
    UnknownFunction(String),
    /// A word of the text section could not be decoded.
    Decode(DecodeError),
    /// A branch targets an address outside its function.
    BranchOutsideFunction {
        /// Branch address.
        at: u32,
        /// Branch target.
        target: u32,
    },
    /// A call targets something that is not a function entry.
    CallOutsideText {
        /// Call address.
        at: u32,
        /// Call target.
        target: u32,
    },
    /// The control flow is irreducible (cannot bound such loops —
    /// the MISRA-C discussion in the same proceedings, rules 14.4/20.7).
    IrreducibleLoop {
        /// Address in the offending region.
        at: u32,
    },
    /// No witness bounds the loop with the given header: the paper's
    /// "annotation required" situation.
    UnboundedLoop {
        /// Loop-header address.
        header: u32,
    },
    /// The stack pointer is not statically known at a call site.
    UnknownStackPointer {
        /// Call address.
        at: u32,
    },
    /// Recursion detected (forbidden upstream, double-checked here).
    CallCycle(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            AnalysisError::Decode(e) => write!(f, "decode failure: {e}"),
            AnalysisError::BranchOutsideFunction { at, target } => {
                write!(
                    f,
                    "branch at {at:#x} leaves its function (target {target:#x})"
                )
            }
            AnalysisError::CallOutsideText { at, target } => {
                write!(f, "call at {at:#x} targets no function entry ({target:#x})")
            }
            AnalysisError::IrreducibleLoop { at } => {
                write!(f, "irreducible control flow near {at:#x}")
            }
            AnalysisError::UnboundedLoop { header } => write!(
                f,
                "cannot bound loop with header {header:#x} (an annotation may be required)"
            ),
            AnalysisError::UnknownStackPointer { at } => {
                write!(f, "stack pointer unknown at call site {at:#x}")
            }
            AnalysisError::CallCycle(n) => write!(f, "recursion through `{n}`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// One analysis request: which function of which program to bound.
/// Mirrors the pipeline's `CompileUnit::builder()` shape.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisRequest<'a> {
    program: &'a Program,
    function: &'a str,
}

impl<'a> AnalysisRequest<'a> {
    /// A request for `function` of `program`.
    #[must_use]
    pub fn new(program: &'a Program, function: &'a str) -> AnalysisRequest<'a> {
        AnalysisRequest { program, function }
    }

    /// Starts building a request: select the program with
    /// [`program`](AnalysisRequestBuilder::program) and the function with
    /// [`function`](AnalysisRequestBuilder::function).
    #[must_use]
    pub fn builder() -> AnalysisRequestBuilder<'a> {
        AnalysisRequestBuilder {
            program: None,
            function: None,
        }
    }

    /// The program under analysis.
    #[must_use]
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The function to bound.
    #[must_use]
    pub fn function(&self) -> &'a str {
        self.function
    }
}

/// Builder for [`AnalysisRequest`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisRequestBuilder<'a> {
    program: Option<&'a Program>,
    function: Option<&'a str>,
}

impl<'a> AnalysisRequestBuilder<'a> {
    /// The program under analysis.
    #[must_use]
    pub fn program(mut self, program: &'a Program) -> Self {
        self.program = Some(program);
        self
    }

    /// The function to bound.
    #[must_use]
    pub fn function(mut self, function: &'a str) -> Self {
        self.function = Some(function);
        self
    }

    /// Finishes the request.
    ///
    /// # Panics
    ///
    /// Panics when the program or function was not selected — that is a
    /// driver bug, not input-dependent.
    #[must_use]
    pub fn build(self) -> AnalysisRequest<'a> {
        AnalysisRequest {
            program: self
                .program
                .expect("AnalysisRequest::builder(): select a program with .program()"),
            function: self
                .function
                .expect("AnalysisRequest::builder(): select a function with .function()"),
        }
    }
}

/// Result of one [`Analyzer::analyze`] call: the report plus how much of
/// the work was served from the session's incremental fact cache.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The WCET report for the requested function.
    pub report: WcetReport,
    /// Functions whose fixpoint actually ran during this call (the
    /// requested function and any callees not found in the cache).
    pub functions_analyzed: u64,
    /// Functions served from the session fact cache during this call.
    pub functions_reused: u64,
}

impl Analysis {
    /// Unwraps the report, discarding the cache counters.
    #[must_use]
    pub fn into_report(self) -> WcetReport {
        self.report
    }
}

/// Cumulative counters of an [`Analyzer`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzerStats {
    /// Functions fresh-analyzed over the session lifetime.
    pub functions_analyzed: u64,
    /// Functions served from the fact cache over the session lifetime.
    pub functions_reused: u64,
    /// Live entries in the per-function fact cache.
    pub facts_cached: usize,
    /// Abstract-state tree nodes interned by the session's hash-consing
    /// arenas over their lifetime.
    pub arena_nodes: u64,
}

/// Incremental-cache entry: everything one function's analysis produced,
/// plus the callee bounds it consumed (`deps`) so a hit can be validated
/// against the callees' *current* bounds before being replayed.
#[derive(Debug)]
struct FuncFacts {
    wcet: u64,
    loop_bounds: BTreeMap<u32, u64>,
    block_count: usize,
    block_costs: BTreeMap<u32, u64>,
    /// `(callee, callee_sp, wcet_used)` for every call this function's
    /// bound depends on.
    deps: Vec<(String, u32, u64)>,
}

/// Per-call analysis context. Owns the checked-out arena and the per-call
/// memo table; shared inputs are `Arc`s so borrows never pin the whole
/// context while the arena is threaded mutably through the fixpoints.
struct Cx<'a> {
    program: &'a Program,
    file: Option<Arc<AnnotationFile>>,
    words: Arc<Vec<u32>>,
    machine_fp: u128,
    arena: Arena,
    memo: BTreeMap<(String, u32), Arc<FuncFacts>>,
    call_stack: Vec<String>,
    analyzed: u64,
    reused: u64,
}

/// Fact-cache capacity; on overflow the whole cache is cleared (a
/// deterministic pressure valve, like the arena's). Sized above the
/// function count of the largest scenario sweep (E10: ~300k symbols):
/// mid-sweep clears forfeit the cross-mode-variant fact reuse that the
/// sweep depends on, at ~300 bytes per entry this stays under ~300 MiB.
const FACTS_CAP: usize = 1 << 20;

/// A WCET analysis session.
///
/// The analyzer holds two cross-call structures:
///
/// * a pool of hash-consing [`Arena`]s (one checked out per in-flight
///   call, so concurrent calls never contend on the intern table), and
/// * a per-function **fact cache** keyed by a content digest of everything
///   a function's bound depends on — its machine configuration, encoded
///   words, stack pointer, referenced annotation entries and callee
///   symbols. A dirty program re-analyzes only the functions whose digest
///   changed; unchanged functions replay their cached facts after their
///   callee bounds re-validate.
///
/// Results are bit-identical to a fresh analysis in every case: a cache
/// hit replays facts computed from byte-identical inputs, and the sparse
/// worklist fixpoints reproduce the dense iteration order exactly (see
/// `DESIGN.md` §11).
#[derive(Debug)]
pub struct Analyzer {
    options: AnalysisOptions,
    arenas: Mutex<Vec<Arena>>,
    facts: Mutex<HashMap<u128, Arc<FuncFacts>>>,
    analyzed: AtomicU64,
    reused: AtomicU64,
    arena_nodes: AtomicU64,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new(AnalysisOptions::default())
    }
}

impl Analyzer {
    /// A fresh session with the given options.
    #[must_use]
    pub fn new(options: AnalysisOptions) -> Analyzer {
        Analyzer {
            options,
            arenas: Mutex::new(Vec::new()),
            facts: Mutex::new(HashMap::new()),
            analyzed: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            arena_nodes: AtomicU64::new(0),
        }
    }

    /// The session's options.
    #[must_use]
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Cumulative session counters.
    #[must_use]
    pub fn stats(&self) -> AnalyzerStats {
        AnalyzerStats {
            functions_analyzed: self.analyzed.load(Ordering::Relaxed),
            functions_reused: self.reused.load(Ordering::Relaxed),
            facts_cached: self.facts.lock().expect("facts lock").len(),
            arena_nodes: self.arena_nodes.load(Ordering::Relaxed),
        }
    }

    /// Analyzes one request.
    ///
    /// # Errors
    ///
    /// Any [`AnalysisError`].
    ///
    /// # Panics
    ///
    /// Re-raises panics from analyzer internals via poisoned locks.
    pub fn analyze(&self, request: &AnalysisRequest<'_>) -> Result<Analysis, AnalysisError> {
        let program = request.program;
        let func = request.function;
        let file = self
            .options
            .use_annotations
            .then(|| Arc::new(AnnotationFile::from_program(program)));
        let words = Arc::new(program.encode_text());
        let mut fp = Fingerprint::new();
        fp.str(&format!("{:?}", program.config));
        fp.bool(self.options.use_annotations);
        fp.u32(program.const_pool_base);
        fp.u32(program.sda_base);
        let machine_fp = fp.finish();

        let arena = self
            .arenas
            .lock()
            .expect("arena pool lock")
            .pop()
            .unwrap_or_default();
        let interned_before = arena.interned();
        let mut cx = Cx {
            program,
            file,
            words,
            machine_fp,
            arena,
            memo: BTreeMap::new(),
            call_stack: Vec::new(),
            analyzed: 0,
            reused: 0,
        };
        let sp = program.config.stack_top - 64;
        let result = self.facts_for(&mut cx, func, sp, true);
        let Cx {
            arena,
            memo,
            analyzed,
            reused,
            ..
        } = cx;
        self.arena_nodes
            .fetch_add(arena.interned() - interned_before, Ordering::Relaxed);
        self.arenas.lock().expect("arena pool lock").push(arena);
        let top = result?;
        // The per-call memo also holds the entry function; callees are
        // everything else, collapsed by name exactly like the historical
        // flat memo (ascending (name, sp), later sp wins).
        let callees = memo
            .iter()
            .filter(|((n, s), _)| !(n.as_str() == func && *s == sp))
            .map(|((n, _), f)| (n.clone(), f.wcet))
            .collect();
        Ok(Analysis {
            report: WcetReport {
                wcet: top.wcet,
                loop_bounds: top.loop_bounds.clone(),
                block_count: top.block_count,
                callees,
                block_costs: top.block_costs.clone(),
            },
            functions_analyzed: analyzed,
            functions_reused: reused,
        })
    }

    /// Content digest of everything `func`'s analysis depends on, except
    /// the callee *bounds* (those are re-validated through `deps` on every
    /// hit, so a changed callee body transparently invalidates its
    /// callers).
    fn fn_digest(
        &self,
        cx: &Cx<'_>,
        func: &str,
        sp: u32,
        top_level: bool,
    ) -> Result<u128, AnalysisError> {
        let sym = cx
            .program
            .function(func)
            .ok_or_else(|| AnalysisError::UnknownFunction(func.to_owned()))?;
        let mut h = Fingerprint::new();
        h.bytes(&cx.machine_fp.to_le_bytes());
        h.str(func);
        h.u32(sym.entry);
        h.u32(sym.len_words);
        h.u32(sp);
        h.bool(top_level);
        let start = ((sym.entry - cx.program.config.text_base) / 4) as usize;
        for i in 0..sym.len_words as usize {
            let word = cx.words[start + i];
            h.u32(word);
            let addr = sym.entry + 4 * i as u32;
            // cross-function inputs referenced from instructions: the
            // annotation entries this code consults and the identity of
            // every call target
            if let Ok(inst) = vericomp_arch::encode::decode(word, addr) {
                match inst {
                    Inst::Annot { id } => {
                        h.u64(u64::from(id));
                        let entry = cx.file.as_ref().and_then(|f| f.entries.get(&id));
                        h.str(&format!("{entry:?}"));
                    }
                    Inst::Bl { target } => {
                        h.u32(target);
                        match cx.program.function_at(target).filter(|f| f.entry == target) {
                            Some(f) => {
                                h.bool(true);
                                h.str(&f.name);
                                h.u32(f.entry);
                                h.u32(f.len_words);
                            }
                            None => {
                                h.bool(false);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(h.finish())
    }

    /// Resolves one function's facts: per-call memo, then the cross-call
    /// cache (with dep re-validation), then a fresh analysis.
    fn facts_for(
        &self,
        cx: &mut Cx<'_>,
        func: &str,
        sp: u32,
        top_level: bool,
    ) -> Result<Arc<FuncFacts>, AnalysisError> {
        if let Some(f) = cx.memo.get(&(func.to_owned(), sp)) {
            return Ok(Arc::clone(f));
        }
        if cx.call_stack.iter().any(|f| f == func) {
            return Err(AnalysisError::CallCycle(func.to_owned()));
        }
        let digest = self.fn_digest(cx, func, sp, top_level)?;
        let hit = self.facts.lock().expect("facts lock").get(&digest).cloned();
        if let Some(hit) = hit {
            // replay only if every callee bound this entry consumed still
            // holds under the current program
            cx.call_stack.push(func.to_owned());
            let verdict = (|| -> Result<bool, AnalysisError> {
                for (callee, callee_sp, used) in &hit.deps {
                    if self.facts_for(cx, callee, *callee_sp, false)?.wcet != *used {
                        return Ok(false);
                    }
                }
                Ok(true)
            })();
            cx.call_stack.pop();
            if verdict? {
                cx.reused += 1;
                self.reused.fetch_add(1, Ordering::Relaxed);
                cx.memo.insert((func.to_owned(), sp), Arc::clone(&hit));
                return Ok(hit);
            }
        }
        cx.call_stack.push(func.to_owned());
        let result = self.analyze_function_inner(cx, func, sp, top_level);
        cx.call_stack.pop();
        let facts = Arc::new(result?);
        cx.analyzed += 1;
        self.analyzed.fetch_add(1, Ordering::Relaxed);
        {
            let mut cache = self.facts.lock().expect("facts lock");
            if cache.len() >= FACTS_CAP {
                cache.clear();
            }
            cache.insert(digest, Arc::clone(&facts));
        }
        cx.memo.insert((func.to_owned(), sp), Arc::clone(&facts));
        Ok(facts)
    }
}

/// Residual assumed for every register at a non-top-level function entry:
/// larger than any single-instruction completion latency of the machine, so
/// values still in flight in the caller are covered.
const ENTRY_RESIDUAL: u64 = 64;

fn conservative_entry_residuals() -> PipeResiduals {
    PipeResiduals {
        regs: vericomp_arch::timing::RegResiduals::uniform(ENTRY_RESIDUAL),
        ..PipeResiduals::default()
    }
}

impl Analyzer {
    fn analyze_function_inner(
        &self,
        cx: &mut Cx<'_>,
        func: &str,
        sp: u32,
        top_level: bool,
    ) -> Result<FuncFacts, AnalysisError> {
        // Copy the shared handles out of `cx` so the arena can still be
        // borrowed mutably while they are in scope.
        let program = cx.program;
        let machine = &program.config;
        let annot_file = cx.file.clone();
        let file = annot_file.as_deref();
        let words = Arc::clone(&cx.words);

        let graph = cfg::reconstruct_with_words(program, func, &words)?;
        let va0 =
            value::analyze_with_facts_in(&mut cx.arena, &graph, machine, program, sp, file, &[]);
        let (loop_bounds, facts) = bounds::compute_with_facts(&graph, &va0, machine, file)?;
        // Feed the derived induction windows back: the refined value analysis
        // keeps indexed table accesses bounded for the cache analysis.
        let va = if facts.is_empty() {
            va0
        } else {
            value::analyze_with_facts_in(&mut cx.arena, &graph, machine, program, sp, file, &facts)
        };
        let cls = cache::analyze(&graph, machine, &va, file);

        // ---- callee costs per block ----
        let rpo = graph.rpo();
        let mut callee_cost: BTreeMap<u32, u64> = BTreeMap::new();
        let mut deps: BTreeSet<(String, u32, u64)> = BTreeSet::new();
        for &b in rpo {
            let blk = &graph.blocks[&b];
            if blk.calls.is_empty() {
                continue;
            }
            // replay the value state to each call to learn the callee's sp
            let mut vs = va.at(&graph, b).cloned().unwrap_or_default();
            let mut addr = b;
            let mut total = 0u64;
            for inst in &blk.insts {
                if let Inst::Bl { target } = inst {
                    let callee = program
                        .function_at(*target)
                        .expect("validated during reconstruction")
                        .name
                        .clone();
                    let callee_sp = vs
                        .reg(Gpr::SP)
                        .as_exact()
                        .ok_or(AnalysisError::UnknownStackPointer { at: addr })?
                        as u32;
                    let f = self.facts_for(cx, &callee, callee_sp, false)?;
                    deps.insert((callee, callee_sp, f.wcet));
                    total += f.wcet;
                }
                value::transfer(&mut vs, inst, machine, file);
                addr += 4;
            }
            callee_cost.insert(b, total);
        }

        // ---- pipeline residual fixpoint ----
        // Dense indexing by RPO position: every per-block table is a Vec,
        // so the fixpoint's inner loop does no tree lookups at all.
        let entry_res = if top_level {
            PipeResiduals::default()
        } else {
            conservative_entry_residuals()
        };
        let blocks: Vec<&cfg::Block> = rpo.iter().map(|&b| &graph.blocks[&b]).collect();
        let succ_idx = graph.succ_idx();
        let block_callee_cost: Vec<u64> = rpo
            .iter()
            .map(|b| callee_cost.get(b).copied().unwrap_or(0))
            .collect();
        let mut in_res: Vec<Option<PipeResiduals>> = vec![None; rpo.len()];
        in_res[0] = Some(entry_res);
        // the classification is fixed before this fixpoint starts, so each
        // instruction's timing inputs are resolved once per block here
        // rather than on every worklist revisit; the classification is
        // per-block in the same RPO indexing as `blocks`
        let ops: Vec<Vec<MicroOp>> = cls
            .per_block
            .iter()
            .enumerate()
            .map(|(i, entries)| {
                blocks[i]
                    .insts
                    .iter()
                    .zip(entries)
                    .filter_map(|(inst, &(addr, f_hit, dclass))| {
                        let fetch_extra = if f_hit || cls.persistent_fetch.contains(&addr) {
                            0
                        } else {
                            machine.fetch_latency
                        };
                        let mem_extra = match dclass {
                            Some(DataClass::Hit) => 0,
                            Some(DataClass::Io) => machine.io_latency,
                            Some(DataClass::Miss) => {
                                if cls.persistent_data.contains(&addr) {
                                    0
                                } else {
                                    machine.mem_latency
                                }
                            }
                            None => 0,
                        };
                        MicroOp::new(machine, inst, fetch_extra, mem_extra, inst.is_terminator())
                    })
                    .collect()
            })
            .collect();
        let block_time = |i: usize, res: &PipeResiduals| -> (u64, PipeResiduals) {
            let blk = blocks[i];
            let mut st = PipeState::from_residuals(res);
            for op in &ops[i] {
                st.advance_op(op);
            }
            let cost = if blk.is_return {
                st.drain_time() + 1
            } else {
                st.dispatch_time() + 1
            };
            (cost + block_callee_cost[i], st.residuals())
        };

        // Sparse worklist: the residual join is a pointwise max (monotone,
        // idempotent), so revisiting only changed-input blocks reaches the
        // same unique least fixpoint as the dense sweep.
        // Every input change re-queues the block, so the cost recorded at
        // its last visit is the cost under the fixpoint input state — no
        // final re-walk needed.
        let mut block_cost: Vec<Option<u64>> = vec![None; rpo.len()];
        let mut work = Worklist::seeded(0);
        while let Some(i) = work.pop() {
            let Some(res) = in_res[i as usize].clone() else {
                continue;
            };
            let (cost, out) = block_time(i as usize, &res);
            block_cost[i as usize] = Some(cost);
            for &si in &succ_idx[i as usize] {
                let merged = match &in_res[si as usize] {
                    None => out.clone(),
                    Some(old) => old.join(&out),
                };
                if in_res[si as usize].as_ref() != Some(&merged) {
                    in_res[si as usize] = Some(merged);
                    work.push(si);
                }
            }
        }
        let costs: BTreeMap<u32, u64> = rpo
            .iter()
            .zip(&block_cost)
            .filter_map(|(&b, c)| c.map(|c| (b, c)))
            .collect();

        // ---- path analysis with loop collapsing ----
        let wcet = longest_path(&graph, &costs, &loop_bounds, &cls.loop_fill_penalty)?;

        Ok(FuncFacts {
            wcet,
            loop_bounds,
            block_count: graph.blocks.len(),
            block_costs: costs,
            deps: deps.into_iter().collect(),
        })
    }
}

/// Longest-path computation over the loop-collapsed DAG.
fn longest_path(
    graph: &Cfg,
    costs: &BTreeMap<u32, u64>,
    bounds: &BTreeMap<u32, u64>,
    fill_penalty: &BTreeMap<u32, u64>,
) -> Result<u64, AnalysisError> {
    // loops sorted innermost-first (fewest blocks)
    let mut loops: Vec<&cfg::NaturalLoop> = graph.loops.iter().collect();
    loops.sort_by_key(|l| l.blocks.len());

    // total cost of each loop, computed innermost-first
    let mut loop_total: BTreeMap<u32, u64> = BTreeMap::new();
    for l in &loops {
        // children: maximal proper sub-loops
        let children: Vec<&cfg::NaturalLoop> = loops
            .iter()
            .filter(|c| c.header != l.header && c.blocks.is_subset(&l.blocks))
            .filter(|c| {
                !loops.iter().any(|m| {
                    m.header != c.header
                        && m.header != l.header
                        && c.blocks.is_subset(&m.blocks)
                        && m.blocks.is_subset(&l.blocks)
                })
            })
            .copied()
            .collect();
        let iter = region_longest(
            graph,
            costs,
            &loop_total,
            &l.blocks,
            &children,
            Some(l.header),
        )?;
        let b = bounds.get(&l.header).copied().unwrap_or(0);
        let total = (b + 1) * iter + fill_penalty.get(&l.header).copied().unwrap_or(0);
        loop_total.insert(l.header, total);
    }

    // function level: all reachable blocks, outermost loops as children
    let all: BTreeSet<u32> = graph.rpo().iter().copied().collect();
    let outermost: Vec<&cfg::NaturalLoop> = loops
        .iter()
        .filter(|l| {
            !loops
                .iter()
                .any(|m| m.header != l.header && l.blocks.is_subset(&m.blocks))
        })
        .copied()
        .collect();
    region_longest(graph, costs, &loop_total, &all, &outermost, None)
}

/// Longest path over a region's DAG with child loops collapsed to single
/// nodes. `skip_header` removes the region's own back edges.
///
/// All tables are dense vectors indexed by RPO position; a node is named
/// by the RPO index of its representative (a child loop's header for
/// blocks inside that child, the block itself otherwise). The relaxation
/// is a pointwise max over a DAG, so the processing order cannot affect
/// the result.
fn region_longest(
    graph: &Cfg,
    costs: &BTreeMap<u32, u64>,
    loop_total: &BTreeMap<u32, u64>,
    blocks: &BTreeSet<u32>,
    children: &[&cfg::NaturalLoop],
    skip_header: Option<u32>,
) -> Result<u64, AnalysisError> {
    let rpo = graph.rpo();
    let index_of = graph.index_of();
    let n = rpo.len();

    // representative of each region block; u32::MAX marks "not in region"
    const OUT: u32 = u32::MAX;
    let mut rep = vec![OUT; n];
    for &b in blocks {
        let i = index_of[&b];
        rep[i as usize] = i;
    }
    // earlier children win on (impossible) overlap, as in the scan order
    // of the original representative lookup
    for c in children.iter().rev() {
        let hi = index_of[&c.header];
        for &b in &c.blocks {
            let i = index_of[&b] as usize;
            if rep[i] != OUT {
                rep[i] = hi;
            }
        }
    }
    let mut is_loop_node = vec![false; n];
    for c in children {
        is_loop_node[index_of[&c.header] as usize] = true;
    }

    // node set and deduplicated edges
    let mut is_node = vec![false; n];
    let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &b in blocks {
        let bi = index_of[&b] as usize;
        let ru = rep[bi];
        is_node[ru as usize] = true;
        for s in &graph.blocks[&b].succs {
            if Some(*s) == skip_header {
                continue; // region back edge
            }
            let Some(&sj) = index_of.get(s) else {
                continue;
            };
            let rv = rep[sj as usize];
            if rv != OUT && ru != rv {
                edges[ru as usize].push(rv);
            }
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    // Kahn topological order with cycle detection.
    let mut indeg = vec![0u32; n];
    for e in &edges {
        for &v in e {
            indeg[v as usize] += 1;
        }
    }
    let node_count = is_node.iter().filter(|&&x| x).count();
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&i| is_node[i as usize] && indeg[i as usize] == 0)
        .collect();
    let node_cost = |i: u32| -> u64 {
        let addr = rpo[i as usize];
        if is_loop_node[i as usize] {
            loop_total.get(&addr).copied().unwrap_or(0)
        } else {
            costs.get(&addr).copied().unwrap_or(0)
        }
    };
    let mut dist = vec![0u64; n];
    let mut seen = 0usize;
    let mut best = 0u64;
    while let Some(u) = queue.pop() {
        seen += 1;
        let d = dist[u as usize] + node_cost(u);
        best = best.max(d);
        for &v in &edges[u as usize] {
            dist[v as usize] = dist[v as usize].max(d);
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    if seen != node_count {
        let at = (0..n)
            .filter(|&i| is_node[i])
            .map(|i| rpo[i])
            .min()
            .expect("non-empty region");
        return Err(AnalysisError::IrreducibleLoop { at });
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use vericomp_arch::inst::{Cond, Inst as M};
    use vericomp_arch::program::FuncSym;
    use vericomp_arch::MachineConfig;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }

    /// One-shot convenience over the `Analyzer` session API — the only
    /// entry point since the deprecated free wrappers were removed.
    fn analyze(program: &Program, func: &str) -> Result<WcetReport, AnalysisError> {
        Analyzer::default()
            .analyze(&AnalysisRequest::new(program, func))
            .map(Analysis::into_report)
    }

    fn program(code: Vec<M>) -> Program {
        let config = MachineConfig::mpc755();
        let len_words = code.len() as u32;
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "f".into(),
                entry: config.text_base,
                len_words,
            }],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        }
    }

    #[test]
    fn straight_line_has_positive_wcet() {
        let p = program(vec![M::li(g(3), 1), M::li(g(4), 2), M::Blr]);
        let r = analyze(&p, "f").unwrap();
        assert!(r.wcet >= 3, "{}", r.wcet);
        assert_eq!(r.block_count, 1);
        assert!(r.loop_bounds.is_empty());
    }

    #[test]
    fn counted_loop_bounded_and_charged() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0  */ M::li(g(4), 0),
            /* 4 head */
            M::Cmpwi {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(4),
                imm: 10,
            },
            /* 8  */
            M::Bc {
                cond: Cond::Ge,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 20,
            },
            /* 12 */
            M::Addi {
                rd: g(4),
                ra: g(4),
                imm: 1,
            },
            /* 16 */ M::B { target: base + 4 },
            /* 20 */ M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        assert_eq!(r.loop_bounds.get(&(base + 4)), Some(&10));
        // at least ten iterations of ≥ 3 cycles each
        assert!(r.wcet >= 30, "{}", r.wcet);
        // and not absurdly above (12 bounded iterations of a tiny body with
        // one cold fetch line)
        assert!(r.wcet < 40 + 11 * 20, "{}", r.wcet);
    }

    #[test]
    fn unbounded_loop_is_an_error() {
        let base = MachineConfig::mpc755().text_base;
        // while (r4 != r5) — no recognizable witness
        let p = program(vec![
            /* 0 head */
            M::Cmpw {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(4),
                rb: g(5),
            },
            /* 4 */
            M::Bc {
                cond: Cond::Eq,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 16,
            },
            /* 8 */
            M::Addi {
                rd: g(4),
                ra: g(6),
                imm: 1,
            }, // not an induction update
            /* 12 */ M::B { target: base },
            /* 16 */ M::Blr,
        ]);
        assert!(matches!(
            analyze(&p, "f"),
            Err(AnalysisError::UnboundedLoop { .. })
        ));
    }

    #[test]
    fn io_latency_dominates_acquisition_blocks() {
        // lfd from the I/O region must cost at least io_latency
        let cfgm = MachineConfig::mpc755();
        let io_hi = ((cfgm.io_base.wrapping_add(0x8000)) >> 16) as u16 as i16;
        let p = program(vec![
            M::Addis {
                rd: g(12),
                ra: Gpr::R0,
                imm: io_hi,
            },
            M::Lfd {
                fd: Fpr::new(1),
                d: 0,
                ra: g(12),
            },
            M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        assert!(r.wcet >= u64::from(cfgm.io_latency), "{}", r.wcet);
    }

    #[test]
    fn call_cost_included_and_memoized() {
        let base = MachineConfig::mpc755().text_base;
        let config = MachineConfig::mpc755();
        let code = vec![
            /* 0 f */ M::Mflr { rd: g(0) },
            /* 4 */
            M::Stwu {
                rs: Gpr::SP,
                d: -16,
                ra: Gpr::SP,
            },
            /* 8 */
            M::Stw {
                rs: g(0),
                d: 12,
                ra: Gpr::SP,
            },
            /* 12 */ M::Bl { target: base + 40 },
            /* 16 */ M::Bl { target: base + 40 },
            /* 20 */
            M::Lwz {
                rd: g(0),
                d: 12,
                ra: Gpr::SP,
            },
            /* 24 */ M::Mtlr { rs: g(0) },
            /* 28 */
            M::Addi {
                rd: Gpr::SP,
                ra: Gpr::SP,
                imm: 16,
            },
            /* 32 */ M::Blr,
            /* 36 pad */ M::Nop,
            /* 40 leaf */ M::li(g(3), 1),
            /* 44 */ M::Blr,
        ];
        let p = Program {
            entry: base,
            functions: vec![
                FuncSym {
                    name: "f".into(),
                    entry: base,
                    len_words: 10,
                },
                FuncSym {
                    name: "leaf".into(),
                    entry: base + 40,
                    len_words: 2,
                },
            ],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        };
        let r = analyze(&p, "f").unwrap();
        let leaf_w = r.callees.get("leaf").copied().unwrap();
        assert!(leaf_w > 0);
        assert!(r.wcet >= 2 * leaf_w, "wcet {} leaf {}", r.wcet, leaf_w);
    }

    use vericomp_arch::reg::Fpr;

    #[test]
    fn diamond_takes_the_longer_arm() {
        let base = MachineConfig::mpc755().text_base;
        // one arm has a divide (19 cycles), the other a single li
        let p = program(vec![
            /* 0 */
            M::Cmpwi {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            /* 4 */
            M::Bc {
                cond: Cond::Lt,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 20,
            },
            /* 8 */
            M::Divw {
                rd: g(4),
                ra: g(5),
                rb: g(6),
            },
            /* 12 */
            M::Divw {
                rd: g(7),
                ra: g(4),
                rb: g(6),
            },
            /* 16 */ M::B { target: base + 24 },
            /* 20 */ M::li(g(4), 1),
            /* 24 */ M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        // two dependent divides alone take ≥ 38 cycles
        assert!(r.wcet >= 38, "{}", r.wcet);
    }
}
