//! Static worst-case execution-time analysis in the style of AbsInt aiT
//! (the measurement instrument of the paper's evaluation).
//!
//! The analyzer follows the classic phase structure:
//!
//! 1. **decoding & CFG reconstruction** from the binary ([`mod@cfg`]),
//! 2. **value analysis** — intervals over registers and memory cells,
//!    sharpened by the annotation file generated from the compiler's
//!    `__builtin_annotation` table ([`value`], [`annot`]),
//! 3. **loop-bound analysis** ([`bounds`]),
//! 4. **cache analysis** — LRU must-analysis plus per-loop persistence
//!    ([`cache`]),
//! 5. **pipeline analysis** — the shared anomaly-free dual-issue timing
//!    core, run abstractly with max-joined residual states,
//! 6. **path analysis** — longest path with loops collapsed by their
//!    bounds.
//!
//! The produced bound is safe with respect to the machine model of
//! `vericomp-mach`: for every input, `analyze(p, f)?.wcet ≥` the cycle
//! count the simulator reports for `f` (a tested property).
//!
//! # Example
//!
//! ```
//! use vericomp_core::{Compiler, OptLevel};
//! use vericomp_minic::ast::*;
//!
//! let prog = Program {
//!     globals: vec![Global { name: "x".into(), def: GlobalDef::ScalarF64(None) }],
//!     functions: vec![Function {
//!         name: "step".into(),
//!         params: vec![],
//!         ret: None,
//!         locals: vec![],
//!         body: vec![Stmt::Assign(
//!             "x".into(),
//!             Expr::binop(Binop::MulF, Expr::var("x"), Expr::FloatLit(2.0)),
//!         )],
//!     }],
//! };
//! let binary = Compiler::new(OptLevel::Verified).compile(&prog, "step")?;
//! let report = vericomp_wcet::analyze(&binary, "step")?;
//! assert!(report.wcet > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annot;
pub mod bounds;
pub mod cache;
pub mod cfg;
pub mod value;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use vericomp_arch::encode::DecodeError;
use vericomp_arch::inst::{Inst, Reg};
use vericomp_arch::program::Program;
use vericomp_arch::reg::{Cr, Fpr, Gpr};
use vericomp_arch::timing::{PipeResiduals, PipeState};

use annot::AnnotationFile;
use cache::DataClass;
use cfg::Cfg;

/// Analysis options.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Whether to use the program's annotation table (§3.4). Disabling it
    /// reproduces the "analysis without annotations" scenario, where
    /// data-dependent loops cannot be bounded.
    pub use_annotations: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            use_annotations: true,
        }
    }
}

/// The computed WCET bound and its supporting facts.
#[derive(Debug, Clone)]
pub struct WcetReport {
    /// The bound, in machine cycles.
    pub wcet: u64,
    /// Loop bounds by loop-header address (entry function only).
    pub loop_bounds: BTreeMap<u32, u64>,
    /// Number of reconstructed basic blocks (entry function only).
    pub block_count: usize,
    /// WCET bounds of callees, by name.
    pub callees: BTreeMap<String, u64>,
    /// Per-block cycle bounds (entry function only), by block address —
    /// diagnostic output for precision studies.
    pub block_costs: BTreeMap<u32, u64>,
}

/// Analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The requested function is not in the symbol table.
    UnknownFunction(String),
    /// A word of the text section could not be decoded.
    Decode(DecodeError),
    /// A branch targets an address outside its function.
    BranchOutsideFunction {
        /// Branch address.
        at: u32,
        /// Branch target.
        target: u32,
    },
    /// A call targets something that is not a function entry.
    CallOutsideText {
        /// Call address.
        at: u32,
        /// Call target.
        target: u32,
    },
    /// The control flow is irreducible (cannot bound such loops —
    /// the MISRA-C discussion in the same proceedings, rules 14.4/20.7).
    IrreducibleLoop {
        /// Address in the offending region.
        at: u32,
    },
    /// No witness bounds the loop with the given header: the paper's
    /// "annotation required" situation.
    UnboundedLoop {
        /// Loop-header address.
        header: u32,
    },
    /// The stack pointer is not statically known at a call site.
    UnknownStackPointer {
        /// Call address.
        at: u32,
    },
    /// Recursion detected (forbidden upstream, double-checked here).
    CallCycle(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            AnalysisError::Decode(e) => write!(f, "decode failure: {e}"),
            AnalysisError::BranchOutsideFunction { at, target } => {
                write!(
                    f,
                    "branch at {at:#x} leaves its function (target {target:#x})"
                )
            }
            AnalysisError::CallOutsideText { at, target } => {
                write!(f, "call at {at:#x} targets no function entry ({target:#x})")
            }
            AnalysisError::IrreducibleLoop { at } => {
                write!(f, "irreducible control flow near {at:#x}")
            }
            AnalysisError::UnboundedLoop { header } => write!(
                f,
                "cannot bound loop with header {header:#x} (an annotation may be required)"
            ),
            AnalysisError::UnknownStackPointer { at } => {
                write!(f, "stack pointer unknown at call site {at:#x}")
            }
            AnalysisError::CallCycle(n) => write!(f, "recursion through `{n}`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Analyzes a function with default options (annotations enabled).
///
/// # Errors
///
/// Any [`AnalysisError`].
pub fn analyze(program: &Program, func: &str) -> Result<WcetReport, AnalysisError> {
    analyze_with(program, func, &AnalysisOptions::default())
}

/// Analyzes a function with explicit options.
///
/// # Errors
///
/// Any [`AnalysisError`].
pub fn analyze_with(
    program: &Program,
    func: &str,
    opts: &AnalysisOptions,
) -> Result<WcetReport, AnalysisError> {
    let file = opts
        .use_annotations
        .then(|| AnnotationFile::from_program(program));
    let sp = program.config.stack_top - 64;
    let mut memo = BTreeMap::new();
    let mut stack = Vec::new();
    let fr = analyze_function(
        program,
        func,
        sp,
        true,
        file.as_ref(),
        &mut memo,
        &mut stack,
    )?;
    Ok(WcetReport {
        wcet: fr.wcet,
        loop_bounds: fr.loop_bounds,
        block_count: fr.block_count,
        callees: memo.into_iter().map(|((name, _), w)| (name, w)).collect(),
        block_costs: fr.block_costs,
    })
}

struct FuncResult {
    wcet: u64,
    loop_bounds: BTreeMap<u32, u64>,
    block_count: usize,
    block_costs: BTreeMap<u32, u64>,
}

/// Residual assumed for every register at a non-top-level function entry:
/// larger than any single-instruction completion latency of the machine, so
/// values still in flight in the caller are covered.
const ENTRY_RESIDUAL: u64 = 64;

fn conservative_entry_residuals() -> PipeResiduals {
    let mut regs = BTreeMap::new();
    for i in 0..32 {
        regs.insert(Reg::G(Gpr::new(i)), ENTRY_RESIDUAL);
        regs.insert(Reg::F(Fpr::new(i)), ENTRY_RESIDUAL);
    }
    for i in 0..8 {
        regs.insert(Reg::C(Cr::new(i)), ENTRY_RESIDUAL);
    }
    regs.insert(Reg::Lr, ENTRY_RESIDUAL);
    PipeResiduals {
        regs,
        ..PipeResiduals::default()
    }
}

fn analyze_function(
    program: &Program,
    func: &str,
    sp: u32,
    top_level: bool,
    file: Option<&AnnotationFile>,
    memo: &mut BTreeMap<(String, u32), u64>,
    call_stack: &mut Vec<String>,
) -> Result<FuncResult, AnalysisError> {
    if call_stack.iter().any(|f| f == func) {
        return Err(AnalysisError::CallCycle(func.to_owned()));
    }
    call_stack.push(func.to_owned());
    let result = analyze_function_inner(program, func, sp, top_level, file, memo, call_stack);
    call_stack.pop();
    result
}

#[allow(clippy::too_many_arguments)]
fn analyze_function_inner(
    program: &Program,
    func: &str,
    sp: u32,
    top_level: bool,
    file: Option<&AnnotationFile>,
    memo: &mut BTreeMap<(String, u32), u64>,
    call_stack: &mut Vec<String>,
) -> Result<FuncResult, AnalysisError> {
    let machine = &program.config;
    let graph = cfg::reconstruct(program, func)?;
    let va0 = value::analyze(&graph, machine, program, sp, file);
    let (loop_bounds, facts) = bounds::loop_bounds_with_facts(&graph, &va0, machine, file)?;
    // Feed the derived induction windows back: the refined value analysis
    // keeps indexed table accesses bounded for the cache analysis.
    let va = if facts.is_empty() {
        va0
    } else {
        value::analyze_with_facts(&graph, machine, program, sp, file, &facts)
    };
    let cls = cache::analyze(&graph, machine, &va, file);

    // ---- callee costs per block ----
    let rpo = graph.rpo();
    let mut callee_cost: BTreeMap<u32, u64> = BTreeMap::new();
    for &b in &rpo {
        let blk = &graph.blocks[&b];
        if blk.calls.is_empty() {
            continue;
        }
        // replay the value state to each call to learn the callee's sp
        let mut vs = va.at_entry.get(&b).cloned().unwrap_or_default();
        let mut addr = b;
        let mut total = 0u64;
        for inst in &blk.insts {
            if let Inst::Bl { target } = inst {
                let callee = program
                    .function_at(*target)
                    .expect("validated during reconstruction")
                    .name
                    .clone();
                let callee_sp = vs
                    .reg(Gpr::SP)
                    .as_exact()
                    .ok_or(AnalysisError::UnknownStackPointer { at: addr })?
                    as u32;
                let key = (callee.clone(), callee_sp);
                let w = match memo.get(&key) {
                    Some(&w) => w,
                    None => {
                        let fr = analyze_function(
                            program, &callee, callee_sp, false, file, memo, call_stack,
                        )?;
                        memo.insert(key, fr.wcet);
                        fr.wcet
                    }
                };
                total += w;
            }
            value::transfer(&mut vs, inst, machine, file);
            addr += 4;
        }
        callee_cost.insert(b, total);
    }

    // ---- pipeline residual fixpoint ----
    let entry_res = if top_level {
        PipeResiduals::default()
    } else {
        conservative_entry_residuals()
    };
    let mut in_res: BTreeMap<u32, PipeResiduals> = BTreeMap::new();
    in_res.insert(graph.entry, entry_res);
    let block_time = |b: u32, res: &PipeResiduals| -> (u64, PipeResiduals) {
        let blk = &graph.blocks[&b];
        let mut st = PipeState::from_residuals(res);
        let mut addr = b;
        for inst in &blk.insts {
            let fetch_extra =
                if cls.fetch_hit.contains(&addr) || cls.persistent_fetch.contains(&addr) {
                    0
                } else {
                    machine.fetch_latency
                };
            let mem_extra = match cls.data.get(&addr) {
                Some(DataClass::Hit) => 0,
                Some(DataClass::Io) => machine.io_latency,
                Some(DataClass::Miss) => {
                    if cls.persistent_data.contains(&addr) {
                        0
                    } else {
                        machine.mem_latency
                    }
                }
                None => 0,
            };
            st.advance(machine, inst, fetch_extra, mem_extra, inst.is_terminator());
            addr += 4;
        }
        let cost = if blk.is_return {
            st.drain_time() + 1
        } else {
            st.dispatch_time() + 1
        };
        (
            cost + callee_cost.get(&b).copied().unwrap_or(0),
            st.residuals(),
        )
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let Some(res) = in_res.get(&b).cloned() else {
                continue;
            };
            let (_, out) = block_time(b, &res);
            for &succ in &graph.blocks[&b].succs {
                let merged = match in_res.get(&succ) {
                    None => out.clone(),
                    Some(old) => old.join(&out),
                };
                if in_res.get(&succ) != Some(&merged) {
                    in_res.insert(succ, merged);
                    changed = true;
                }
            }
        }
    }
    let costs: BTreeMap<u32, u64> = rpo
        .iter()
        .filter_map(|&b| in_res.get(&b).map(|r| (b, block_time(b, r).0)))
        .collect();

    // ---- path analysis with loop collapsing ----
    let wcet = longest_path(&graph, &costs, &loop_bounds, &cls.loop_fill_penalty)?;

    Ok(FuncResult {
        wcet,
        loop_bounds,
        block_count: graph.blocks.len(),
        block_costs: costs,
    })
}

/// Longest-path computation over the loop-collapsed DAG.
fn longest_path(
    graph: &Cfg,
    costs: &BTreeMap<u32, u64>,
    bounds: &BTreeMap<u32, u64>,
    fill_penalty: &BTreeMap<u32, u64>,
) -> Result<u64, AnalysisError> {
    // loops sorted innermost-first (fewest blocks)
    let mut loops: Vec<&cfg::NaturalLoop> = graph.loops.iter().collect();
    loops.sort_by_key(|l| l.blocks.len());

    // total cost of each loop, computed innermost-first
    let mut loop_total: BTreeMap<u32, u64> = BTreeMap::new();
    for l in &loops {
        // children: maximal proper sub-loops
        let children: Vec<&cfg::NaturalLoop> = loops
            .iter()
            .filter(|c| c.header != l.header && c.blocks.is_subset(&l.blocks))
            .filter(|c| {
                !loops.iter().any(|m| {
                    m.header != c.header
                        && m.header != l.header
                        && c.blocks.is_subset(&m.blocks)
                        && m.blocks.is_subset(&l.blocks)
                })
            })
            .copied()
            .collect();
        let iter = region_longest(
            graph,
            costs,
            &loop_total,
            &l.blocks,
            &children,
            Some(l.header),
        )?;
        let b = bounds.get(&l.header).copied().unwrap_or(0);
        let total = (b + 1) * iter + fill_penalty.get(&l.header).copied().unwrap_or(0);
        loop_total.insert(l.header, total);
    }

    // function level: all reachable blocks, outermost loops as children
    let all: BTreeSet<u32> = graph.rpo().into_iter().collect();
    let outermost: Vec<&cfg::NaturalLoop> = loops
        .iter()
        .filter(|l| {
            !loops
                .iter()
                .any(|m| m.header != l.header && l.blocks.is_subset(&m.blocks))
        })
        .copied()
        .collect();
    region_longest(graph, costs, &loop_total, &all, &outermost, None)
}

/// Longest path over a region's DAG with child loops collapsed to single
/// nodes. `skip_header` removes the region's own back edges.
fn region_longest(
    graph: &Cfg,
    costs: &BTreeMap<u32, u64>,
    loop_total: &BTreeMap<u32, u64>,
    blocks: &BTreeSet<u32>,
    children: &[&cfg::NaturalLoop],
    skip_header: Option<u32>,
) -> Result<u64, AnalysisError> {
    // representative of a block: the child loop containing it, else itself
    let rep = |b: u32| -> u32 {
        for c in children {
            if c.blocks.contains(&b) {
                return c.header; // loop node named by its header
            }
        }
        b
    };
    let is_loop_node = |r: u32| children.iter().any(|c| c.header == r);

    // node set and edges
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    let mut edges: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &b in blocks {
        nodes.insert(rep(b));
        for &s in &graph.blocks[&b].succs {
            if !blocks.contains(&s) {
                continue;
            }
            if Some(s) == skip_header {
                continue; // region back edge
            }
            let (ru, rv) = (rep(b), rep(s));
            if ru != rv {
                edges.entry(ru).or_default().insert(rv);
            }
        }
    }

    // Kahn topological order with cycle detection.
    let mut indeg: BTreeMap<u32, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for tos in edges.values() {
        for &t in tos {
            *indeg.get_mut(&t).expect("edge targets are nodes") += 1;
        }
    }
    let mut queue: Vec<u32> = indeg
        .iter()
        .filter_map(|(&n, &d)| (d == 0).then_some(n))
        .collect();
    let node_cost = |n: u32| -> u64 {
        if is_loop_node(n) {
            loop_total.get(&n).copied().unwrap_or(0)
        } else {
            costs.get(&n).copied().unwrap_or(0)
        }
    };
    let mut dist: BTreeMap<u32, u64> = BTreeMap::new();
    let mut seen = 0usize;
    let mut best = 0u64;
    while let Some(n) = queue.pop() {
        seen += 1;
        let d = dist.get(&n).copied().unwrap_or(0) + node_cost(n);
        best = best.max(d);
        for &t in edges.get(&n).into_iter().flatten() {
            let e = dist.entry(t).or_insert(0);
            *e = (*e).max(d);
            let deg = indeg.get_mut(&t).expect("edge targets are nodes");
            *deg -= 1;
            if *deg == 0 {
                queue.push(t);
            }
        }
    }
    if seen != nodes.len() {
        return Err(AnalysisError::IrreducibleLoop {
            at: *nodes.iter().next().expect("non-empty region"),
        });
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use vericomp_arch::inst::{Cond, Inst as M};
    use vericomp_arch::program::FuncSym;
    use vericomp_arch::MachineConfig;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }

    fn program(code: Vec<M>) -> Program {
        let config = MachineConfig::mpc755();
        let len_words = code.len() as u32;
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "f".into(),
                entry: config.text_base,
                len_words,
            }],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        }
    }

    #[test]
    fn straight_line_has_positive_wcet() {
        let p = program(vec![M::li(g(3), 1), M::li(g(4), 2), M::Blr]);
        let r = analyze(&p, "f").unwrap();
        assert!(r.wcet >= 3, "{}", r.wcet);
        assert_eq!(r.block_count, 1);
        assert!(r.loop_bounds.is_empty());
    }

    #[test]
    fn counted_loop_bounded_and_charged() {
        let base = MachineConfig::mpc755().text_base;
        let p = program(vec![
            /* 0  */ M::li(g(4), 0),
            /* 4 head */
            M::Cmpwi {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(4),
                imm: 10,
            },
            /* 8  */
            M::Bc {
                cond: Cond::Ge,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 20,
            },
            /* 12 */
            M::Addi {
                rd: g(4),
                ra: g(4),
                imm: 1,
            },
            /* 16 */ M::B { target: base + 4 },
            /* 20 */ M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        assert_eq!(r.loop_bounds.get(&(base + 4)), Some(&10));
        // at least ten iterations of ≥ 3 cycles each
        assert!(r.wcet >= 30, "{}", r.wcet);
        // and not absurdly above (12 bounded iterations of a tiny body with
        // one cold fetch line)
        assert!(r.wcet < 40 + 11 * 20, "{}", r.wcet);
    }

    #[test]
    fn unbounded_loop_is_an_error() {
        let base = MachineConfig::mpc755().text_base;
        // while (r4 != r5) — no recognizable witness
        let p = program(vec![
            /* 0 head */
            M::Cmpw {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(4),
                rb: g(5),
            },
            /* 4 */
            M::Bc {
                cond: Cond::Eq,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 16,
            },
            /* 8 */
            M::Addi {
                rd: g(4),
                ra: g(6),
                imm: 1,
            }, // not an induction update
            /* 12 */ M::B { target: base },
            /* 16 */ M::Blr,
        ]);
        assert!(matches!(
            analyze(&p, "f"),
            Err(AnalysisError::UnboundedLoop { .. })
        ));
    }

    #[test]
    fn io_latency_dominates_acquisition_blocks() {
        // lfd from the I/O region must cost at least io_latency
        let cfgm = MachineConfig::mpc755();
        let io_hi = ((cfgm.io_base.wrapping_add(0x8000)) >> 16) as u16 as i16;
        let p = program(vec![
            M::Addis {
                rd: g(12),
                ra: Gpr::R0,
                imm: io_hi,
            },
            M::Lfd {
                fd: Fpr::new(1),
                d: 0,
                ra: g(12),
            },
            M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        assert!(r.wcet >= u64::from(cfgm.io_latency), "{}", r.wcet);
    }

    #[test]
    fn call_cost_included_and_memoized() {
        let base = MachineConfig::mpc755().text_base;
        let config = MachineConfig::mpc755();
        let code = vec![
            /* 0 f */ M::Mflr { rd: g(0) },
            /* 4 */
            M::Stwu {
                rs: Gpr::SP,
                d: -16,
                ra: Gpr::SP,
            },
            /* 8 */
            M::Stw {
                rs: g(0),
                d: 12,
                ra: Gpr::SP,
            },
            /* 12 */ M::Bl { target: base + 40 },
            /* 16 */ M::Bl { target: base + 40 },
            /* 20 */
            M::Lwz {
                rd: g(0),
                d: 12,
                ra: Gpr::SP,
            },
            /* 24 */ M::Mtlr { rs: g(0) },
            /* 28 */
            M::Addi {
                rd: Gpr::SP,
                ra: Gpr::SP,
                imm: 16,
            },
            /* 32 */ M::Blr,
            /* 36 pad */ M::Nop,
            /* 40 leaf */ M::li(g(3), 1),
            /* 44 */ M::Blr,
        ];
        let p = Program {
            entry: base,
            functions: vec![
                FuncSym {
                    name: "f".into(),
                    entry: base,
                    len_words: 10,
                },
                FuncSym {
                    name: "leaf".into(),
                    entry: base + 40,
                    len_words: 2,
                },
            ],
            globals: vec![],
            data: Map::new(),
            const_pool_base: config.data_base,
            sda_base: config.data_base,
            annotations: vec![],
            code,
            config,
        };
        let r = analyze(&p, "f").unwrap();
        let leaf_w = r.callees.get("leaf").copied().unwrap();
        assert!(leaf_w > 0);
        assert!(r.wcet >= 2 * leaf_w, "wcet {} leaf {}", r.wcet, leaf_w);
    }

    use vericomp_arch::reg::Fpr;

    #[test]
    fn diamond_takes_the_longer_arm() {
        let base = MachineConfig::mpc755().text_base;
        // one arm has a divide (19 cycles), the other a single li
        let p = program(vec![
            /* 0 */
            M::Cmpwi {
                cr: vericomp_arch::reg::Cr::CR0,
                ra: g(3),
                imm: 0,
            },
            /* 4 */
            M::Bc {
                cond: Cond::Lt,
                cr: vericomp_arch::reg::Cr::CR0,
                target: base + 20,
            },
            /* 8 */
            M::Divw {
                rd: g(4),
                ra: g(5),
                rb: g(6),
            },
            /* 12 */
            M::Divw {
                rd: g(7),
                ra: g(4),
                rb: g(6),
            },
            /* 16 */ M::B { target: base + 24 },
            /* 20 */ M::li(g(4), 1),
            /* 24 */ M::Blr,
        ]);
        let r = analyze(&p, "f").unwrap();
        // two dependent divides alone take ≥ 38 cycles
        assert!(r.wcet >= 38, "{}", r.wcet);
    }
}
