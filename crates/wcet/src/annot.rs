//! Annotation handling: the analyzer-side half of the paper's §3.4 scheme.
//!
//! The compiler transmits `__builtin_annotation` facts down to the binary as
//! marker instructions plus a table mapping marker ids to format strings and
//! final argument locations. From that table a textual **annotation file**
//! is generated (the artifact aiT consumes); the analyzer parses the file
//! and applies the interval constraints during value analysis.
//!
//! Recognized constraint grammar (other formats are carried but ignored):
//!
//! ```text
//! <int> <= %k <= <int>      two-sided bound
//! <int> <= %k               lower bound
//! %k <= <int>               upper bound
//! %k == <int>               exact value
//! ```

use std::collections::BTreeMap;
use std::fmt;

use vericomp_arch::program::{ArgLoc, ElemTy, Program};
use vericomp_arch::reg::{Fpr, Gpr};

/// One interval constraint on an annotation argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// 1-based argument index (`%1` → 1).
    pub arg: usize,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Parses the constraints expressed by a format string.
pub fn parse_constraints(format: &str) -> Vec<Constraint> {
    let tokens: Vec<&str> = format.split_whitespace().collect();
    let mut out = Vec::new();
    let int = |s: &str| s.parse::<i64>().ok();
    let arg = |s: &str| -> Option<usize> {
        s.strip_prefix('%')
            .and_then(|d| d.parse::<usize>().ok())
            .filter(|&k| k >= 1)
    };
    let mut i = 0;
    while i < tokens.len() {
        // <int> <= %k [<= <int>]
        if i + 2 < tokens.len() && tokens[i + 1] == "<=" {
            if let (Some(lo), Some(k)) = (int(tokens[i]), arg(tokens[i + 2])) {
                let mut hi = i64::MAX;
                let mut consumed = 3;
                if i + 4 < tokens.len() && tokens[i + 3] == "<=" {
                    if let Some(h) = int(tokens[i + 4]) {
                        hi = h;
                        consumed = 5;
                    }
                }
                out.push(Constraint { arg: k, lo, hi });
                i += consumed;
                continue;
            }
            // %k <= <int>
            if let (Some(k), Some(hi)) = (arg(tokens[i]), int(tokens[i + 2])) {
                out.push(Constraint {
                    arg: k,
                    lo: i64::MIN,
                    hi,
                });
                i += 3;
                continue;
            }
        }
        // %k == <int>
        if i + 2 < tokens.len() && tokens[i + 1] == "==" {
            if let (Some(k), Some(v)) = (arg(tokens[i]), int(tokens[i + 2])) {
                out.push(Constraint {
                    arg: k,
                    lo: v,
                    hi: v,
                });
                i += 3;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One entry of the annotation file: a program point plus argument
/// locations and parsed constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntry {
    /// Marker id.
    pub id: u16,
    /// Format string.
    pub format: String,
    /// Final locations of the arguments.
    pub args: Vec<ArgLoc>,
    /// Constraints parsed from the format.
    pub constraints: Vec<Constraint>,
}

/// A parsed annotation file: entries by marker id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationFile {
    /// Entries keyed by marker id.
    pub entries: BTreeMap<u16, FileEntry>,
}

impl AnnotationFile {
    /// Builds the annotation file directly from a linked program's
    /// annotation table (the automatic path of the paper's pipeline).
    pub fn from_program(program: &Program) -> AnnotationFile {
        let entries = program
            .annotations
            .iter()
            .map(|a| {
                (
                    a.id,
                    FileEntry {
                        id: a.id,
                        format: a.format.clone(),
                        args: a.args.clone(),
                        constraints: parse_constraints(&a.format),
                    },
                )
            })
            .collect();
        AnnotationFile { entries }
    }

    /// Serializes to the textual exchange format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            out.push_str(&format!("annotation {} {:?}", e.id, e.format));
            for a in &e.args {
                out.push_str(&format!(" {}", loc_text(a)));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the textual exchange format.
    ///
    /// # Errors
    ///
    /// [`ParseFileError`] with the offending line number.
    pub fn parse(text: &str) -> Result<AnnotationFile, ParseFileError> {
        let mut entries = BTreeMap::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = || ParseFileError { line: ln + 1 };
            let rest = line.strip_prefix("annotation ").ok_or_else(err)?;
            let (id_str, rest) = rest.split_once(' ').ok_or_else(err)?;
            let id: u16 = id_str.parse().map_err(|_| err())?;
            // format is a Rust-debug-quoted string
            let rest = rest.trim_start();
            if !rest.starts_with('"') {
                return Err(err());
            }
            let close = rest[1..].find('"').ok_or_else(err)? + 1;
            let format = rest[1..close].to_owned();
            let args = rest[close + 1..]
                .split_whitespace()
                .map(parse_loc)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(err)?;
            let constraints = parse_constraints(&format);
            entries.insert(
                id,
                FileEntry {
                    id,
                    format,
                    args,
                    constraints,
                },
            );
        }
        Ok(AnnotationFile { entries })
    }
}

/// Annotation-file parse error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseFileError {
    /// 1-based offending line.
    pub line: usize,
}

impl fmt::Display for ParseFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed annotation file at line {}", self.line)
    }
}

impl std::error::Error for ParseFileError {}

fn loc_text(a: &ArgLoc) -> String {
    match a {
        ArgLoc::Gpr(r) => r.to_string(),
        ArgLoc::Fpr(r) => r.to_string(),
        ArgLoc::Stack(off, ElemTy::I32) => format!("sp{off:+}i"),
        ArgLoc::Stack(off, ElemTy::F64) => format!("sp{off:+}f"),
        ArgLoc::Global(addr, ElemTy::I32) => format!("@{addr:#x}i"),
        ArgLoc::Global(addr, ElemTy::F64) => format!("@{addr:#x}f"),
    }
}

fn parse_loc(s: &str) -> Option<ArgLoc> {
    if let Some(rest) = s.strip_prefix("sp") {
        let (num, ty) = rest.split_at(rest.len() - 1);
        let off: i16 = num.parse().ok()?;
        return Some(ArgLoc::Stack(off, elem(ty)?));
    }
    if let Some(rest) = s.strip_prefix('@') {
        let (num, ty) = rest.split_at(rest.len() - 1);
        let addr = u32::from_str_radix(num.strip_prefix("0x")?, 16).ok()?;
        return Some(ArgLoc::Global(addr, elem(ty)?));
    }
    if let Some(idx) = s.strip_prefix('r') {
        return Some(ArgLoc::Gpr(Gpr::try_new(idx.parse().ok()?)?));
    }
    if let Some(idx) = s.strip_prefix('f') {
        return Some(ArgLoc::Fpr(Fpr::try_new(idx.parse().ok()?)?));
    }
    None
}

fn elem(s: &str) -> Option<ElemTy> {
    match s {
        "i" => Some(ElemTy::I32),
        "f" => Some(ElemTy::F64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_sided_bound() {
        assert_eq!(
            parse_constraints("1 <= %1 <= 4"),
            vec![Constraint {
                arg: 1,
                lo: 1,
                hi: 4
            }]
        );
    }

    #[test]
    fn parses_paper_example() {
        // "0 <= %1 <= %2 < 360": the %1 bound is usable (0 <= %1),
        // the %2-relative part is not in the integer grammar and is skipped.
        let c = parse_constraints("0 <= %1 <= %2 < 360");
        assert_eq!(
            c,
            vec![Constraint {
                arg: 1,
                lo: 0,
                hi: i64::MAX
            }]
        );
    }

    #[test]
    fn parses_one_sided_and_equality() {
        assert_eq!(
            parse_constraints("%2 <= 100"),
            vec![Constraint {
                arg: 2,
                lo: i64::MIN,
                hi: 100
            }]
        );
        assert_eq!(
            parse_constraints("%1 == 7"),
            vec![Constraint {
                arg: 1,
                lo: 7,
                hi: 7
            }]
        );
    }

    #[test]
    fn free_text_carries_no_constraints() {
        assert!(parse_constraints("entering mode %1 now").is_empty());
        assert!(parse_constraints("").is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let f = AnnotationFile {
            entries: BTreeMap::from([
                (
                    0,
                    FileEntry {
                        id: 0,
                        format: "1 <= %1 <= 4".into(),
                        args: vec![ArgLoc::Gpr(Gpr::new(5))],
                        constraints: parse_constraints("1 <= %1 <= 4"),
                    },
                ),
                (
                    3,
                    FileEntry {
                        id: 3,
                        format: "%1 == 2".into(),
                        args: vec![
                            ArgLoc::Stack(16, ElemTy::I32),
                            ArgLoc::Global(0x1000_0008, ElemTy::F64),
                            ArgLoc::Fpr(Fpr::new(2)),
                        ],
                        constraints: parse_constraints("%1 == 2"),
                    },
                ),
            ]),
        };
        let text = f.to_text();
        let back = AnnotationFile::parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn malformed_file_rejected() {
        assert!(AnnotationFile::parse("annotation x \"y\"").is_err());
        assert!(AnnotationFile::parse("nonsense").is_err());
        // comments and blanks fine
        assert!(AnnotationFile::parse("# comment\n\n").is_ok());
    }
}
