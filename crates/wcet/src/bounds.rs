//! Loop-bound analysis.
//!
//! For every natural loop the analyzer looks for a *counted-loop witness*:
//! an exit test in the header or a latch, comparing an induction location
//! (register **or stack slot/global cell** — the `-O0` code keeps counters
//! in memory) against a loop-invariant bound, where the induction location
//! is updated by exactly one constant-step `addi` site per iteration. The
//! trip bound follows from the interval of the initial value (value
//! analysis, possibly sharpened by annotations) and the interval of the
//! bound operand.
//!
//! Loops without a witness are reported as [`AnalysisError::UnboundedLoop`]
//! — the situation the paper's annotation mechanism exists to resolve.

use std::collections::BTreeMap;

use vericomp_arch::inst::{Cond, Inst, Reg};
use vericomp_arch::reg::Gpr;
use vericomp_arch::MachineConfig;

use crate::annot::AnnotationFile;
use crate::cfg::{dominators, Cfg, NaturalLoop};
use crate::value::{transfer, AbsState, HeaderFact, Interval, TrackedLoc as Loc, ValueAnalysis};
use crate::AnalysisError;

/// Replays the value analysis through a block up to (excluding) `upto`.
fn replay(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    block: u32,
    upto: usize,
) -> AbsState {
    let mut s = va.at(cfg, block).cloned().unwrap_or_default();
    for inst in cfg.blocks[&block].insts.iter().take(upto) {
        transfer(&mut s, inst, machine, annots);
    }
    s
}

fn loc_interval(state: &AbsState, loc: Loc) -> Interval {
    match loc {
        Loc::Reg(r) => state.reg(r),
        Loc::Cell(a) => state.cell(a),
    }
}

/// Resolves the location a compare operand denotes: if the register was
/// last defined in this block by a stack/global load with an exact address,
/// the location is that memory cell; otherwise it is the register itself.
fn operand_loc(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    block: u32,
    cmp_idx: usize,
    reg: Gpr,
) -> Loc {
    let insts = &cfg.blocks[&block].insts;
    for idx in (0..cmp_idx).rev() {
        let inst = &insts[idx];
        if inst.defs().contains(&Reg::G(reg)) {
            if let Inst::Lwz { rd, d, ra } = *inst {
                if rd == reg {
                    let state = replay(cfg, va, machine, annots, block, idx);
                    let base = if ra == Gpr::R0 {
                        Interval::exact(0)
                    } else {
                        state.reg(ra)
                    };
                    if let Some(b) = base.add(Interval::exact(i32::from(d))).as_exact() {
                        return Loc::Cell(b as u32);
                    }
                }
            }
            return Loc::Reg(reg);
        }
    }
    Loc::Reg(reg)
}

/// Net effect of one block on register `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetUpdate {
    /// The block never writes `r`.
    Untouched,
    /// At block exit, `r = r_at_entry + c` (possibly through move/temporary
    /// chains, as register allocation likes to emit).
    Step(i64),
    /// The block writes `r` in a way the witness cannot express.
    Opaque,
}

/// Symbolically scans a block: each register's value is tracked as
/// "entry value of some register plus a constant" where possible.
fn block_net_update(insts: &[Inst], r: Gpr) -> NetUpdate {
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Sym {
        EntryPlus(Gpr, i64),
        Unknown,
    }
    let mut vals: BTreeMap<u8, Sym> = BTreeMap::new();
    let get = |vals: &BTreeMap<u8, Sym>, g: Gpr| {
        vals.get(&g.index())
            .copied()
            .unwrap_or(Sym::EntryPlus(g, 0))
    };
    let mut touched = false;
    for inst in insts {
        let new_val = match *inst {
            Inst::Addi { rd, ra, imm } if ra != Gpr::R0 => {
                let v = match get(&vals, ra) {
                    Sym::EntryPlus(g, c) => Sym::EntryPlus(g, c + i64::from(imm)),
                    Sym::Unknown => Sym::Unknown,
                };
                Some((rd, v))
            }
            // `mr rd, ra` is encoded as `or rd, ra, ra`
            Inst::Or { rd, ra, rb } if ra == rb => Some((rd, get(&vals, ra))),
            _ => None,
        };
        match new_val {
            Some((rd, v)) => {
                if rd == r {
                    touched = true;
                }
                vals.insert(rd.index(), v);
            }
            None => {
                for d in inst.defs() {
                    if let Reg::G(g) = d {
                        if g == r {
                            return NetUpdate::Opaque;
                        }
                        vals.insert(g.index(), Sym::Unknown);
                    }
                }
            }
        }
    }
    if !touched {
        return NetUpdate::Untouched;
    }
    match get(&vals, r) {
        Sym::EntryPlus(g, c) if g == r => NetUpdate::Step(c),
        _ => NetUpdate::Opaque,
    }
}

/// Finds the unique `+c` update site of `loc` within the loop, verifying
/// that no other write can touch it. Returns the step and the block holding
/// the update.
fn update_site(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    l: &NaturalLoop,
    loc: Loc,
) -> Option<(i64, u32)> {
    let mut found: Option<(i64, u32)> = None;
    for &baddr in &l.blocks {
        let insts = &cfg.blocks[&baddr].insts;
        match loc {
            Loc::Reg(r) => {
                if insts.iter().any(|i| matches!(i, Inst::Bl { .. })) && r.is_volatile() {
                    return None; // a call clobbers the induction register
                }
                match block_net_update(insts, r) {
                    NetUpdate::Untouched => {}
                    NetUpdate::Step(c) => {
                        if found.is_some() {
                            return None; // more than one update site
                        }
                        found = Some((c, baddr));
                    }
                    NetUpdate::Opaque => return None,
                }
            }
            Loc::Cell(a) => {
                // every store in the loop must either provably miss `a` or
                // be the single load-addi-store update of `a`
                for (idx, inst) in insts.iter().enumerate() {
                    let writes_mem = matches!(
                        inst,
                        Inst::Stw { .. }
                            | Inst::Stwu { .. }
                            | Inst::Stwx { .. }
                            | Inst::Stfd { .. }
                            | Inst::Stfdx { .. }
                    );
                    if matches!(inst, Inst::Bl { .. }) {
                        return None; // callee may write the cell
                    }
                    if !writes_mem {
                        continue;
                    }
                    let state = replay(cfg, va, machine, annots, baddr, idx);
                    match crate::value::access_addr(&state, inst) {
                        Some(crate::value::AccessAddr::Exact(ea)) => {
                            let width = match inst.mem_access() {
                                Some(m) => match m {
                                    vericomp_arch::inst::MemAccess::Load { bytes }
                                    | vericomp_arch::inst::MemAccess::Store { bytes } => {
                                        u32::from(bytes)
                                    }
                                },
                                None => 4,
                            };
                            if ea + width <= a || ea >= a + 4 {
                                continue; // disjoint
                            }
                            // must be the canonical update: stw rs where
                            // rs = addi(load of a) within this block
                            let Inst::Stw { rs, .. } = *inst else {
                                return None;
                            };
                            let step =
                                addi_of_load(insts, idx, rs, a, cfg, va, machine, annots, baddr)?;
                            if found.is_some() {
                                return None;
                            }
                            found = Some((step, baddr));
                        }
                        Some(crate::value::AccessAddr::Range { lo, hi }) => {
                            if hi + 8 <= a || lo >= a + 4 {
                                continue;
                            }
                            return None;
                        }
                        _ => return None,
                    }
                }
            }
        }
    }
    found
}

/// Matches the `lwz t, a; addi u, t, c; …; stw u, a` shape ending at
/// `store_idx`, returning `c`.
#[allow(clippy::too_many_arguments)]
fn addi_of_load(
    insts: &[Inst],
    store_idx: usize,
    stored: Gpr,
    cell: u32,
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    block: u32,
) -> Option<i64> {
    // find the defining addi of `stored`
    for idx in (0..store_idx).rev() {
        let inst = &insts[idx];
        if inst.defs().contains(&Reg::G(stored)) {
            let Inst::Addi { ra, imm, .. } = *inst else {
                return None;
            };
            // `ra` must hold the current value of the cell: defined by a load of `cell`
            for jdx in (0..idx).rev() {
                let j = &insts[jdx];
                if j.defs().contains(&Reg::G(ra)) {
                    let Inst::Lwz { d, ra: base, .. } = *j else {
                        return None;
                    };
                    let state = replay(cfg, va, machine, annots, block, jdx);
                    let b = if base == Gpr::R0 {
                        Interval::exact(0)
                    } else {
                        state.reg(base)
                    };
                    let ea = b.add(Interval::exact(i32::from(d))).as_exact()? as u32;
                    return (ea == cell).then_some(i64::from(imm));
                }
            }
            return None;
        }
    }
    None
}

/// Whether `loc` is invariant in the loop (never written).
fn invariant(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    l: &NaturalLoop,
    loc: Loc,
) -> bool {
    for &baddr in &l.blocks {
        let insts = &cfg.blocks[&baddr].insts;
        for (idx, inst) in insts.iter().enumerate() {
            match loc {
                Loc::Reg(r) => {
                    if inst.defs().contains(&Reg::G(r)) {
                        return false;
                    }
                    if matches!(inst, Inst::Bl { .. }) && r.is_volatile() {
                        return false;
                    }
                }
                Loc::Cell(a) => {
                    if matches!(inst, Inst::Bl { .. }) {
                        return false;
                    }
                    if inst.mem_access().map(|m| !m.is_load()).unwrap_or(false) {
                        let state = replay(cfg, va, machine, annots, baddr, idx);
                        match crate::value::access_addr(&state, inst) {
                            Some(crate::value::AccessAddr::Exact(ea)) => {
                                if !(ea + 8 <= a || ea >= a + 4) {
                                    return false;
                                }
                            }
                            Some(crate::value::AccessAddr::Range { lo, hi }) => {
                                if !(hi + 8 <= a || lo >= a + 4) {
                                    return false;
                                }
                            }
                            _ => return false,
                        }
                    }
                }
            }
        }
    }
    true
}

/// The preheader interval of `loc`: join over entry edges into the header
/// from outside the loop.
fn entry_interval(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    l: &NaturalLoop,
    loc: Loc,
) -> Option<Interval> {
    let preds = cfg.predecessors();
    let mut acc: Option<Interval> = None;
    for &p in preds.get(&l.header).into_iter().flatten() {
        if l.blocks.contains(&p) {
            continue;
        }
        let out = replay(cfg, va, machine, annots, p, cfg.blocks[&p].insts.len());
        let iv = loc_interval(&out, loc);
        acc = Some(match acc {
            None => iv,
            Some(a) => a.join(iv),
        });
    }
    acc
}

/// Computes a bound on the number of *body executions* of every loop.
///
/// # Errors
///
/// [`AnalysisError::UnboundedLoop`] naming the loop header when no witness
/// can bound a loop.
pub fn compute(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
) -> Result<BTreeMap<u32, u64>, AnalysisError> {
    compute_with_facts(cfg, va, machine, annots).map(|(b, _)| b)
}

/// Like [`compute`], additionally returning the induction-variable
/// window facts to feed back into the value analysis
/// ([`crate::value::analyze_with_facts`]).
pub fn compute_with_facts(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
) -> Result<(BTreeMap<u32, u64>, Vec<HeaderFact>), AnalysisError> {
    let idom = dominators(cfg);
    let mut bounds = BTreeMap::new();
    let mut facts = Vec::new();
    for l in &cfg.loops {
        let mut best: Option<(u64, Option<HeaderFact>)> = None;
        // candidate exit tests: header and latches only (executed every
        // iteration)
        let mut candidates: Vec<u32> = Vec::new();
        if l.exits.contains(&l.header) {
            candidates.push(l.header);
        }
        candidates.extend(l.latches.iter().filter(|b| l.exits.contains(b)));

        for &e in &candidates {
            if let Some((b, fact)) = try_candidate(cfg, va, machine, annots, l, e, &idom) {
                best = Some(match best {
                    Some((cur, cf)) if cur <= b => (cur, cf),
                    _ => (b, fact),
                });
            }
        }
        match best {
            Some((b, fact)) => {
                bounds.insert(l.header, b);
                facts.extend(fact);
            }
            None => {
                return Err(AnalysisError::UnboundedLoop { header: l.header });
            }
        }
    }
    Ok((bounds, facts))
}

fn try_candidate(
    cfg: &Cfg,
    va: &ValueAnalysis,
    machine: &MachineConfig,
    annots: Option<&AnnotationFile>,
    l: &NaturalLoop,
    e: u32,
    idom: &BTreeMap<u32, u32>,
) -> Option<(u64, Option<HeaderFact>)> {
    let block = &cfg.blocks[&e];
    let Some(&Inst::Bc { cond, .. }) = block.insts.last() else {
        return None;
    };
    // continue side vs exit side
    let taken_in = l.blocks.contains(block.succs.first()?);
    let fall_in = block
        .succs
        .get(1)
        .map(|s| l.blocks.contains(s))
        .unwrap_or(false);
    let cond_continue = match (taken_in, fall_in) {
        (true, false) => cond,
        (false, true) => cond.negate(),
        _ => return None,
    };
    // the compare feeding the branch
    let cmp_idx = block
        .insts
        .iter()
        .rposition(|i| matches!(i, Inst::Cmpw { .. } | Inst::Cmpwi { .. }))?;
    let (a_reg, b_operand): (Gpr, Operand) = match block.insts[cmp_idx] {
        Inst::Cmpwi { ra, imm, .. } => (ra, Operand::Const(i64::from(imm))),
        Inst::Cmpw { ra, rb, .. } => (ra, Operand::Reg(rb)),
        _ => return None,
    };

    let a_loc = operand_loc(cfg, va, machine, annots, e, cmp_idx, a_reg);
    let mut attempts: Vec<(Loc, Operand, Cond)> = vec![(a_loc, b_operand, cond_continue)];
    if let Operand::Reg(rb) = b_operand {
        let b_loc = operand_loc(cfg, va, machine, annots, e, cmp_idx, rb);
        attempts.push((b_loc, Operand::Loc(a_loc), swap_cond(cond_continue)));
        attempts[0].1 = Operand::Loc(b_loc);
    }

    let mut best: Option<(u64, Option<HeaderFact>)> = None;
    for (ind, bound, cont) in attempts {
        let Some((step, upd_block)) = update_site(cfg, va, machine, annots, l, ind) else {
            continue;
        };
        if step == 0 {
            continue;
        }
        // the update must run every iteration: its block dominates all latches
        if !l
            .latches
            .iter()
            .all(|&lt| dominates(upd_block, lt, idom, cfg.entry))
        {
            continue;
        }
        // bound operand: loop-invariant with a known interval at the test
        let bound_iv = match bound {
            Operand::Const(c) => Interval { lo: c, hi: c },
            Operand::Reg(r) => {
                if !invariant(cfg, va, machine, annots, l, Loc::Reg(r)) {
                    continue;
                }
                replay(cfg, va, machine, annots, e, cmp_idx).reg(r)
            }
            Operand::Loc(loc) => {
                if !invariant(cfg, va, machine, annots, l, loc) {
                    continue;
                }
                loc_interval(&replay(cfg, va, machine, annots, e, cmp_idx), loc)
            }
        };
        let init_iv = entry_interval(cfg, va, machine, annots, l, ind)?;

        let b = trip_count(cont, step, init_iv, bound_iv)?;
        // the induction variable's reachable window at the header — fed back
        // into the value analysis so indexed accesses stay bounded
        let fact = induction_window(step, init_iv, bound_iv).map(|range| HeaderFact {
            header: l.header,
            loc: ind,
            range,
        });
        best = Some(match best {
            Some((cur, cf)) if cur <= b => (cur, cf),
            _ => (b, fact),
        });
    }
    best
}

/// The sound enclosing interval of the induction location at the header:
/// for a positive step the value starts at `init` and can pass the bound by
/// at most one step; symmetrically for negative steps.
fn induction_window(step: i64, init: Interval, bound: Interval) -> Option<Interval> {
    let iv = if step > 0 {
        Interval {
            lo: init.lo,
            hi: bound.hi.checked_add(step)?,
        }
    } else {
        Interval {
            lo: bound.lo.checked_add(step)?,
            hi: init.hi,
        }
    };
    (!iv.is_top() && iv.lo <= iv.hi).then_some(iv)
}

#[derive(Debug, Clone, Copy)]
enum Operand {
    Const(i64),
    Reg(Gpr),
    Loc(Loc),
}

fn swap_cond(c: Cond) -> Cond {
    c.swap()
}

fn dominates(a: u32, mut b: u32, idom: &BTreeMap<u32, u32>, entry: u32) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == entry {
            return false;
        }
        match idom.get(&b) {
            Some(&p) => b = p,
            None => return false,
        }
    }
}

/// Maximum body executions for "continue while `ind cond bound`" with step
/// `c` per iteration.
fn trip_count(cond: Cond, c: i64, init: Interval, bound: Interval) -> Option<u64> {
    let unbounded_hi = bound.hi >= i64::from(i32::MAX);
    let unbounded_lo = bound.lo <= i64::from(i32::MIN);
    let init_lo_unknown = init.lo <= i64::from(i32::MIN);
    let init_hi_unknown = init.hi >= i64::from(i32::MAX);
    let b = match (cond, c.signum()) {
        (Cond::Le, 1..) if !unbounded_hi && !init_lo_unknown => (bound.hi - init.lo) / c + 1,
        (Cond::Lt, 1..) if !unbounded_hi && !init_lo_unknown => (bound.hi - 1 - init.lo) / c + 1,
        (Cond::Ge, ..=-1) if !unbounded_lo && !init_hi_unknown => (init.hi - bound.lo) / (-c) + 1,
        (Cond::Gt, ..=-1) if !unbounded_lo && !init_hi_unknown => {
            (init.hi - 1 - bound.lo) / (-c) + 1
        }
        _ => return None,
    };
    Some(b.max(0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_counts() {
        let iv = |lo, hi| Interval { lo, hi };
        // for k in 1..=10 step 1
        assert_eq!(trip_count(Cond::Le, 1, iv(1, 1), iv(10, 10)), Some(10));
        // k < 10 from 0
        assert_eq!(trip_count(Cond::Lt, 1, iv(0, 0), iv(10, 10)), Some(10));
        // downward: while k >= 0 from at most 7, step -1
        assert_eq!(trip_count(Cond::Ge, -1, iv(0, 7), iv(0, 0)), Some(8));
        // while k > 0 from 7
        assert_eq!(trip_count(Cond::Gt, -1, iv(7, 7), iv(0, 0)), Some(7));
        // step 2
        assert_eq!(trip_count(Cond::Le, 2, iv(0, 0), iv(9, 9)), Some(5));
        // already beyond the bound → zero iterations
        assert_eq!(trip_count(Cond::Lt, 1, iv(20, 20), iv(10, 10)), Some(0));
        // unknown bound → no result
        assert_eq!(trip_count(Cond::Le, 1, iv(0, 0), Interval::top()), None);
        // wrong direction → no result
        assert_eq!(trip_count(Cond::Le, -1, iv(0, 0), iv(10, 10)), None);
    }
}
