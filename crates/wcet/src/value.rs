//! Interval value analysis over registers and memory cells.
//!
//! The abstract state maps GPRs and *exactly-addressed* 32-bit memory cells
//! (stack slots, global words) to integer intervals. The stack pointer is
//! tracked exactly — the analyzer knows the startup convention, so `d(r1)`
//! accesses resolve to absolute addresses; this is how the analysis covers
//! the `-O0` code where every variable (including loop counters) lives in a
//! stack slot.
//!
//! Design choices, documented for soundness review:
//!
//! * **No branch refinement.** Conditions do not sharpen intervals — facts
//!   the analysis cannot compute must come from annotations, which is
//!   exactly the paper's §3.4 division of labour (and matches the behaviour
//!   of binary-level industrial analyzers on such patterns).
//! * **Memory cells start unknown**, including initialized globals: the
//!   WCET bound must hold for every environment state, and the harness may
//!   rewrite any global between activations.
//! * **Calls** clobber the volatile registers and every cell outside the
//!   live stack region above the current `r1`.
//! * **Widening** at loop headers guarantees termination.

use vericomp_arch::inst::Inst;
use vericomp_arch::program::{ArgLoc, Program};
use vericomp_arch::reg::Gpr;
use vericomp_arch::MachineConfig;

use crate::annot::AnnotationFile;
use crate::cfg::Cfg;
use crate::share::{Arena, PMap, Worklist};

const I32MIN: i64 = i32::MIN as i64;
const I32MAX: i64 = i32::MAX as i64;

/// An inclusive integer interval within the 32-bit signed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
}

#[allow(clippy::should_implement_trait)] // interval arithmetic, deliberately inherent
impl Interval {
    /// The full 32-bit range (no information).
    pub fn top() -> Interval {
        Interval {
            lo: I32MIN,
            hi: I32MAX,
        }
    }

    /// A singleton.
    pub fn exact(v: i32) -> Interval {
        Interval {
            lo: i64::from(v),
            hi: i64::from(v),
        }
    }

    /// Whether the interval carries no information.
    pub fn is_top(&self) -> bool {
        self.lo <= I32MIN && self.hi >= I32MAX
    }

    /// The singleton value, if exact.
    pub fn as_exact(&self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo as i32)
    }

    /// Convex hull.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; an empty meet keeps the (trusted) constraint.
    pub fn meet(self, c: Interval) -> Interval {
        let lo = self.lo.max(c.lo);
        let hi = self.hi.min(c.hi);
        if lo > hi {
            c
        } else {
            Interval { lo, hi }
        }
    }

    fn clamp32(lo: i64, hi: i64) -> Interval {
        if lo < I32MIN || hi > I32MAX {
            Interval::top()
        } else {
            Interval { lo, hi }
        }
    }

    /// Interval addition with wrap-to-top on overflow.
    pub fn add(self, other: Interval) -> Interval {
        Self::clamp32(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval subtraction.
    pub fn sub(self, other: Interval) -> Interval {
        Self::clamp32(self.lo - other.hi, self.hi - other.lo)
    }

    /// Interval multiplication.
    pub fn mul(self, other: Interval) -> Interval {
        let c = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Self::clamp32(
            c.iter().copied().min().expect("non-empty"),
            c.iter().copied().max().expect("non-empty"),
        )
    }

    /// Widening: bounds that grew are pushed to the extremes.
    pub fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { I32MIN } else { self.lo },
            hi: if newer.hi > self.hi { I32MAX } else { self.hi },
        }
    }
}

/// The abstract register file: one interval per GPR, ⊤ stored explicitly.
///
/// The register domain is fixed and tiny (32 GPRs), so a flat array beats
/// any tree: clones are a memcpy, joins are 32 pointwise operations, and
/// equality is a flat compare. ⊤ is an ordinary element here, which is
/// observationally identical to the absent-means-⊤ convention of the cell
/// map — [`RegFile::get`] reports an explicit ⊤ as absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFile([Interval; 32]);

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile([Interval::top(); 32])
    }
}

impl RegFile {
    /// The interval bound to register index `k`, if informative.
    #[must_use]
    pub fn get(&self, k: u32) -> Option<Interval> {
        let v = self.0[k as usize];
        if v.is_top() {
            None
        } else {
            Some(v)
        }
    }

    /// Binds register index `k`.
    pub fn insert(&mut self, k: u32, v: Interval) {
        self.0[k as usize] = v;
    }

    /// Resets register index `k` to ⊤.
    pub fn remove(&mut self, k: u32) {
        self.0[k as usize] = Interval::top();
    }

    /// Pointwise merge (⊤ entries participate as ordinary elements; both
    /// `join` and `widen` fix ⊤, so this matches the intersection-merge
    /// semantics of the cell map exactly).
    #[must_use]
    pub fn merge(&self, other: &RegFile, f: impl Fn(Interval, Interval) -> Interval) -> RegFile {
        let mut out = *self;
        for (o, b) in out.0.iter_mut().zip(&other.0) {
            *o = f(*o, *b);
        }
        out
    }
}

/// Abstract machine state: register and memory-cell intervals.
///
/// Registers live in a flat [`RegFile`]; memory cells in a persistent
/// canonical map ([`PMap`]) — cloning a state is `O(1)` on the cell side,
/// and joins/widenings of mostly-equal cell maps touch only the differing
/// entries thanks to structural sharing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsState {
    /// GPR intervals by register index; ⊤ = no information.
    pub regs: RegFile,
    /// 32-bit memory cells by absolute address; absent = ⊤.
    pub cells: PMap,
}

impl AbsState {
    /// The entry state of a function activation: `r1` exact, everything
    /// else unknown.
    pub fn entry(sp: u32, program: &Program) -> AbsState {
        let mut s = AbsState::default();
        s.regs.insert(1, Interval::exact(sp as i32));
        s.regs
            .insert(2, Interval::exact(program.const_pool_base as i32));
        s.regs.insert(13, Interval::exact(program.sda_base as i32));
        s
    }

    /// The interval of a register (`r0` reads as a normal register here; the
    /// literal-zero convention is applied by the transfer function at the
    /// instructions where it holds).
    pub fn reg(&self, r: Gpr) -> Interval {
        self.regs
            .get(u32::from(r.index()))
            .unwrap_or_else(Interval::top)
    }

    fn base(&self, ra: Gpr) -> Interval {
        if ra == Gpr::R0 {
            Interval::exact(0)
        } else {
            self.reg(ra)
        }
    }

    /// Sets a register interval (⊤ clears the entry).
    pub fn set(&mut self, r: Gpr, v: Interval) {
        if v.is_top() {
            self.regs.remove(u32::from(r.index()));
        } else {
            self.regs.insert(u32::from(r.index()), v);
        }
    }

    /// The interval of a 32-bit memory cell (absent = ⊤).
    pub fn cell(&self, addr: u32) -> Interval {
        self.cells.get(addr).unwrap_or_else(Interval::top)
    }

    /// Sets a memory-cell interval (⊤ clears the entry).
    pub fn set_cell(&mut self, addr: u32, v: Interval) {
        if v.is_top() {
            self.cells.remove(addr);
        } else {
            self.cells.insert(addr, v);
        }
    }

    /// Join with another state (pointwise hull; missing keys are ⊤).
    /// Shared cell subtrees are recognized by pointer and reused wholesale.
    pub fn join(&self, other: &AbsState) -> AbsState {
        AbsState {
            regs: self.regs.merge(&other.regs, Interval::join),
            cells: self.cells.merge_shared(&other.cells, Interval::join),
        }
    }

    /// Widening against a newer state.
    pub fn widen(&self, newer: &AbsState) -> AbsState {
        AbsState {
            regs: self.regs.merge(&newer.regs, Interval::widen),
            cells: self.cells.merge_shared(&newer.cells, Interval::widen),
        }
    }
}

/// A location the loop-bound analysis can track: a register or an
/// exactly-addressed 32-bit memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackedLoc {
    /// A general-purpose register.
    Reg(Gpr),
    /// A memory cell by absolute address.
    Cell(u32),
}

/// A fact derived by the loop-bound analysis and fed back into the value
/// analysis: at entry to `header`, `loc` lies within `range` (the induction
/// variable's reachable window). This is the analysis interplay that keeps
/// widened induction variables — and therefore indexed table accesses —
/// bounded for the cache analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderFact {
    /// The loop-header block address the fact holds at.
    pub header: u32,
    /// The constrained location.
    pub loc: TrackedLoc,
    /// Its sound enclosing interval at the header.
    pub range: Interval,
}

/// Effective address of one data access, as far as the analysis can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessAddr {
    /// Exactly known.
    Exact(u32),
    /// Bounded range (inclusive, byte addresses of the access base).
    Range {
        /// Lowest possible address.
        lo: u32,
        /// Highest possible address.
        hi: u32,
    },
    /// Unknown.
    Unknown,
}

/// Computes the effective address of a memory instruction in a state.
pub fn access_addr(state: &AbsState, inst: &Inst) -> Option<AccessAddr> {
    use Inst::*;
    let of = |iv: Interval| -> AccessAddr {
        // Addresses are unsigned: a signed-negative exact value (e.g. the
        // 0xF000_0000 I/O base) is a perfectly precise high address.
        if let Some(v) = iv.as_exact() {
            return AccessAddr::Exact(v as u32);
        }
        if iv.is_top() {
            return AccessAddr::Unknown;
        }
        let same_sign = (iv.lo < 0) == (iv.hi < 0);
        if same_sign {
            AccessAddr::Range {
                lo: iv.lo as i32 as u32,
                hi: iv.hi as i32 as u32,
            }
        } else {
            AccessAddr::Unknown // the unsigned range wraps
        }
    };
    match *inst {
        Lwz { d, ra, .. }
        | Stw { d, ra, .. }
        | Stwu { d, ra, .. }
        | Lfd { d, ra, .. }
        | Stfd { d, ra, .. } => Some(of(state.base(ra).add(Interval::exact(i32::from(d))))),
        Lwzx { ra, rb, .. } | Stwx { ra, rb, .. } | Lfdx { ra, rb, .. } | Stfdx { ra, rb, .. } => {
            Some(of(state.reg(ra).add(state.reg(rb))))
        }
        _ => None,
    }
}

/// Applies one instruction's transfer function.
pub fn transfer(
    state: &mut AbsState,
    inst: &Inst,
    cfg: &MachineConfig,
    annots: Option<&AnnotationFile>,
) {
    use Inst::*;
    match *inst {
        Addi { rd, ra, imm } => {
            let v = state.base(ra).add(Interval::exact(i32::from(imm)));
            state.set(rd, v);
        }
        Addis { rd, ra, imm } => {
            let v = state
                .base(ra)
                .add(Interval::exact((i32::from(imm)).wrapping_mul(65536)));
            state.set(rd, v);
        }
        Mulli { rd, ra, imm } => {
            let v = state.reg(ra).mul(Interval::exact(i32::from(imm)));
            state.set(rd, v);
        }
        Add { rd, ra, rb } => {
            let v = state.reg(ra).add(state.reg(rb));
            state.set(rd, v);
        }
        Subf { rd, ra, rb } => {
            let v = state.reg(rb).sub(state.reg(ra));
            state.set(rd, v);
        }
        Mullw { rd, ra, rb } => {
            let v = state.reg(ra).mul(state.reg(rb));
            state.set(rd, v);
        }
        Neg { rd, ra } => {
            let v = Interval::exact(0).sub(state.reg(ra));
            state.set(rd, v);
        }
        Ori { rd, ra, imm } => {
            let v = match state.reg(ra).as_exact() {
                Some(x) => Interval::exact(x | i32::from(imm)),
                None => Interval::top(),
            };
            state.set(rd, v);
        }
        Andi { rd, ra, imm } => {
            let v = match state.reg(ra).as_exact() {
                Some(x) => Interval::exact(x & i32::from(imm)),
                // masking keeps the value non-negative and bounded
                None => Interval {
                    lo: 0,
                    hi: i64::from(imm),
                },
            };
            state.set(rd, v);
        }
        Xori { rd, ra, imm } => {
            let v = match state.reg(ra).as_exact() {
                Some(x) => Interval::exact(x ^ i32::from(imm)),
                None => Interval::top(),
            };
            state.set(rd, v);
        }
        Srawi { rd, ra, sh } => {
            let r = state.reg(ra);
            let v = Interval {
                lo: r.lo >> sh,
                hi: r.hi >> sh,
            };
            state.set(rd, v);
        }
        Rlwinm { rd, ra, sh, mb, me } => {
            let r = state.reg(ra);
            let v = match r.as_exact() {
                Some(x) => Interval::exact(
                    ((x as u32).rotate_left(u32::from(sh))
                        & vericomp_arch::inst::rlwinm_mask(mb, me)) as i32,
                ),
                // the `slwi` form on a bounded non-negative interval is a
                // plain multiplication by 2^sh — this keeps scaled table
                // indices bounded for the cache analysis
                None if mb == 0 && me == 31 - sh && r.lo >= 0 => {
                    let hi = r.hi.checked_shl(u32::from(sh)).unwrap_or(i64::MAX);
                    if hi <= i64::from(i32::MAX) {
                        Interval { lo: r.lo << sh, hi }
                    } else {
                        Interval::top()
                    }
                }
                None => Interval::top(),
            };
            state.set(rd, v);
        }
        Slw { rd, .. }
        | Srw { rd, .. }
        | Sraw { rd, .. }
        | Divw { rd, .. }
        | Divwu { rd, .. }
        | Ftoi { rd, .. }
        | Mflr { rd } => {
            state.set(rd, Interval::top());
        }
        And { rd, .. } | Or { rd, .. } | Xor { rd, .. } => state.set(rd, Interval::top()),
        Lwz { rd, d, ra } => {
            let addr = state.base(ra).add(Interval::exact(i32::from(d)));
            let v = match addr.as_exact() {
                Some(a) => state.cell(a as u32),
                None => Interval::top(),
            };
            state.set(rd, v);
        }
        Lwzx { rd, .. } => state.set(rd, Interval::top()),
        Stw { rs, d, ra } => {
            let addr = state.base(ra).add(Interval::exact(i32::from(d)));
            store_cell(state, addr, Some(state.reg(rs)), 4);
        }
        Stwu { rs, d, ra } => {
            let addr = state.base(ra).add(Interval::exact(i32::from(d)));
            store_cell(state, addr, Some(state.reg(rs)), 4);
            // rA receives the effective address
            state.set(ra, addr);
        }
        Stwx { .. } => {
            // unknown word store: clobber everything
            state.cells.clear();
        }
        Stfd { d, ra, .. } => {
            let addr = state.base(ra).add(Interval::exact(i32::from(d)));
            store_cell(state, addr, None, 8);
        }
        Stfdx { .. } => state.cells.clear(),
        Lfd { .. }
        | Lfdx { .. }
        | Fadd { .. }
        | Fsub { .. }
        | Fmul { .. }
        | Fdiv { .. }
        | Fmadd { .. }
        | Fneg { .. }
        | Fabs { .. }
        | Fmr { .. }
        | Itof { .. }
        | Fcmpu { .. }
        | Cmpw { .. }
        | Cmpwi { .. }
        | Nop
        | B { .. }
        | Bc { .. }
        | Blr
        | Mtlr { .. } => {}
        Bl { .. } => {
            // volatile registers die
            for r in [0u32, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12] {
                state.regs.remove(r);
            }
            // the callee may write any global and its own (lower) frames;
            // only cells in the live stack above the current r1 survive
            let sp = state.reg(Gpr::SP).as_exact().map(|v| v as u32);
            match sp {
                Some(sp) => {
                    state.cells.range_restrict(sp, cfg.stack_top);
                }
                None => state.cells.clear(),
            }
        }
        Annot { id } => {
            if let Some(file) = annots {
                if let Some(entry) = file.entries.get(&id) {
                    for c in &entry.constraints {
                        let Some(loc) = entry.args.get(c.arg - 1) else {
                            continue;
                        };
                        let constraint = Interval {
                            lo: c.lo.max(I32MIN),
                            hi: c.hi.min(I32MAX),
                        };
                        match *loc {
                            ArgLoc::Gpr(r) => {
                                let v = state.reg(r).meet(constraint);
                                state.set(r, v);
                            }
                            ArgLoc::Stack(off, _) => {
                                if let Some(sp) = state.reg(Gpr::SP).as_exact() {
                                    let a = (sp as u32).wrapping_add(off as i32 as u32);
                                    let v = state.cell(a).meet(constraint);
                                    state.set_cell(a, v);
                                }
                            }
                            ArgLoc::Global(addr, _) => {
                                let v = state.cell(addr).meet(constraint);
                                state.set_cell(addr, v);
                            }
                            ArgLoc::Fpr(_) => {}
                        }
                    }
                }
            }
        }
    }
}

fn store_cell(state: &mut AbsState, addr: Interval, value: Option<Interval>, bytes: u32) {
    match addr.as_exact() {
        Some(a) => {
            let a = a as u32;
            match value {
                Some(v) if bytes == 4 => state.set_cell(a, v),
                _ => {
                    for k in 0..bytes / 4 {
                        state.cells.remove(a + 4 * k);
                    }
                }
            }
        }
        None => {
            // bounded-range store: clobber the range; unbounded: clobber all
            if addr.is_top() || addr.lo < 0 {
                state.cells.clear();
            } else {
                let lo = addr.lo as u32;
                let hi = addr.hi as u32 + bytes;
                // a word at `a` overlaps [lo, hi) iff a + 4 > lo && a < hi
                state.cells.range_remove(lo.saturating_sub(3), hi);
            }
        }
    }
}

/// Result of the value analysis: the abstract state at entry to every block.
#[derive(Debug, Clone)]
pub struct ValueAnalysis {
    /// Block-entry states, indexed by RPO position in the CFG the analysis
    /// ran over (`None` only for blocks the fixpoint never reached, which
    /// cannot happen for blocks in the RPO).
    pub at_entry: Vec<Option<AbsState>>,
}

impl ValueAnalysis {
    /// The entry state of the block starting at `addr`, if reachable.
    pub fn at(&self, cfg_graph: &Cfg, addr: u32) -> Option<&AbsState> {
        let &i = cfg_graph.index_of().get(&addr)?;
        self.at_entry.get(i as usize)?.as_ref()
    }
}

/// Runs the fixpoint over a function CFG.
///
/// `sp` is the concrete stack-pointer value at function entry (known from
/// the startup convention and the call path).
pub fn analyze(
    cfg_graph: &Cfg,
    machine: &MachineConfig,
    program: &Program,
    sp: u32,
    annots: Option<&AnnotationFile>,
) -> ValueAnalysis {
    analyze_with_facts(cfg_graph, machine, program, sp, annots, &[])
}

/// Like [`analyze`], additionally applying [`HeaderFact`]s (derived by a
/// prior loop-bound pass) whenever a state flows into a loop header.
pub fn analyze_with_facts(
    cfg_graph: &Cfg,
    machine: &MachineConfig,
    program: &Program,
    sp: u32,
    annots: Option<&AnnotationFile>,
    facts: &[HeaderFact],
) -> ValueAnalysis {
    let mut arena = Arena::new();
    analyze_with_facts_in(&mut arena, cfg_graph, machine, program, sp, annots, facts)
}

/// The sparse fixpoint, threading a caller-owned hash-consing [`Arena`] so
/// a session can share interned states across many functions and calls.
///
/// Iteration is a round-based reverse-postorder worklist ([`Worklist`]):
/// within a round blocks run in ascending RPO position, and a block is
/// revisited only when a predecessor changed its entry state. This is the
/// dense sweep's visit order restricted to productive visits, so widening
/// fires at exactly the same joins and the result is bit-identical to the
/// historical dense analyzer. Stored states are canonized in the arena,
/// making the convergence comparison a pointer check on everything seen
/// before.
pub fn analyze_with_facts_in(
    arena: &mut Arena,
    cfg_graph: &Cfg,
    machine: &MachineConfig,
    program: &Program,
    sp: u32,
    annots: Option<&AnnotationFile>,
    facts: &[HeaderFact],
) -> ValueAnalysis {
    let apply_facts = |block: u32, state: &mut AbsState| {
        for f in facts.iter().filter(|f| f.header == block) {
            match f.loc {
                TrackedLoc::Reg(r) => {
                    let v = state.reg(r).meet(f.range);
                    state.set(r, v);
                }
                TrackedLoc::Cell(a) => {
                    let v = state.cell(a).meet(f.range);
                    state.set_cell(a, v);
                }
            }
        }
    };
    let canonize = |arena: &mut Arena, s: &AbsState| AbsState {
        regs: s.regs,
        cells: arena.canonize(&s.cells),
    };
    // Dense indexing by RPO position: every per-block table is a Vec, so
    // the inner loop does no tree lookups at all. The index tables are
    // computed once at CFG reconstruction and shared by every phase.
    let rpo = cfg_graph.rpo();
    let blocks: Vec<&crate::cfg::Block> = rpo.iter().map(|&b| &cfg_graph.blocks[&b]).collect();
    let succ_idx = cfg_graph.succ_idx();
    let mut is_header = vec![false; rpo.len()];
    for l in &cfg_graph.loops {
        if let Some(&i) = cfg_graph.index_of().get(&l.header) {
            is_header[i as usize] = true;
        }
    }

    let mut at_entry: Vec<Option<AbsState>> = vec![None; rpo.len()];
    at_entry[0] = Some(canonize(arena, &AbsState::entry(sp, program)));
    let mut visits = vec![0u32; rpo.len()];
    let mut work = Worklist::seeded(0);

    while let Some(i) = work.pop() {
        let Some(in_state) = at_entry[i as usize].clone() else {
            continue;
        };
        let mut s = in_state;
        for inst in &blocks[i as usize].insts {
            transfer(&mut s, inst, machine, annots);
        }
        for &si in &succ_idx[i as usize] {
            let succ = rpo[si as usize];
            let mut merged = match &at_entry[si as usize] {
                None => s.clone(),
                Some(old) => {
                    let joined = old.join(&s);
                    if is_header[si as usize] && visits[si as usize] >= 2 {
                        old.widen(&joined)
                    } else {
                        joined
                    }
                }
            };
            apply_facts(succ, &mut merged);
            let merged = canonize(arena, &merged);
            if at_entry[si as usize].as_ref() != Some(&merged) {
                visits[si as usize] += 1;
                at_entry[si as usize] = Some(merged);
                work.push(si);
            }
        }
    }
    ValueAnalysis { at_entry }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arithmetic() {
        let a = Interval { lo: 1, hi: 4 };
        let b = Interval { lo: -2, hi: 3 };
        assert_eq!(a.add(b), Interval { lo: -1, hi: 7 });
        assert_eq!(a.sub(b), Interval { lo: -2, hi: 6 });
        assert_eq!(a.mul(b), Interval { lo: -8, hi: 12 });
        assert_eq!(a.join(b), Interval { lo: -2, hi: 4 });
        assert_eq!(a.meet(Interval { lo: 2, hi: 9 }), Interval { lo: 2, hi: 4 });
        assert!(Interval::top().add(a).is_top());
        assert_eq!(
            Interval::exact(i32::MAX).add(Interval::exact(1)),
            Interval::top(),
            "overflow loses information, never wraps"
        );
    }

    #[test]
    fn widen_pushes_moving_bounds() {
        let old = Interval { lo: 0, hi: 3 };
        let newer = Interval { lo: 0, hi: 5 };
        let w = old.widen(newer);
        assert_eq!(w.lo, 0);
        assert_eq!(w.hi, I32MAX);
    }

    #[test]
    fn transfer_tracks_immediates_and_stack() {
        use vericomp_arch::inst::Inst as M;
        let cfg = MachineConfig::mpc755();
        let mut s = AbsState::default();
        s.regs.insert(1, Interval::exact(0x1FFF_0000));
        let g = Gpr::new;
        transfer(&mut s, &M::li(g(5), 42), &cfg, None);
        assert_eq!(s.reg(g(5)).as_exact(), Some(42));
        transfer(
            &mut s,
            &M::Stw {
                rs: g(5),
                d: 8,
                ra: g(1),
            },
            &cfg,
            None,
        );
        transfer(
            &mut s,
            &M::Lwz {
                rd: g(6),
                d: 8,
                ra: g(1),
            },
            &cfg,
            None,
        );
        assert_eq!(s.reg(g(6)).as_exact(), Some(42));
        transfer(
            &mut s,
            &M::Addi {
                rd: g(6),
                ra: g(6),
                imm: -2,
            },
            &cfg,
            None,
        );
        assert_eq!(s.reg(g(6)).as_exact(), Some(40));
    }

    #[test]
    fn call_clobbers_volatiles_and_globals_but_not_frame() {
        use vericomp_arch::inst::Inst as M;
        let cfg = MachineConfig::mpc755();
        let sp = cfg.stack_top - 64;
        let mut s = AbsState::default();
        let g = Gpr::new;
        s.regs.insert(1, Interval::exact(sp as i32));
        s.regs.insert(3, Interval::exact(7));
        s.regs.insert(14, Interval::exact(9));
        s.cells.insert(sp + 8, Interval::exact(1)); // frame slot
        s.cells.insert(cfg.data_base, Interval::exact(2)); // global
        transfer(&mut s, &M::Bl { target: 0 }, &cfg, None);
        assert!(s.reg(g(3)).is_top());
        assert_eq!(s.reg(g(14)).as_exact(), Some(9));
        assert_eq!(s.cell(sp + 8).as_exact(), Some(1));
        assert!(s.cell(cfg.data_base).is_top());
    }

    #[test]
    fn unknown_store_clobbers_range() {
        use vericomp_arch::inst::Inst as M;
        let cfg = MachineConfig::mpc755();
        let mut s = AbsState::default();
        let g = Gpr::new;
        s.cells.insert(0x1000_0000, Interval::exact(1));
        s.cells.insert(0x1000_0100, Interval::exact(2));
        // store with a bounded-range address covering only the first cell
        s.regs.insert(
            9,
            Interval {
                lo: 0x1000_0000,
                hi: 0x1000_0010,
            },
        );
        transfer(
            &mut s,
            &M::Stw {
                rs: g(5),
                d: 0,
                ra: g(9),
            },
            &cfg,
            None,
        );
        assert!(s.cell(0x1000_0000).is_top());
        assert_eq!(s.cell(0x1000_0100).as_exact(), Some(2));
        // fully unknown store kills everything
        transfer(
            &mut s,
            &M::Stwx {
                rs: g(5),
                ra: g(9),
                rb: g(10),
            },
            &cfg,
            None,
        );
        assert!(s.cells.is_empty());
    }

    #[test]
    fn access_addresses_classified() {
        use vericomp_arch::inst::Inst as M;
        let mut s = AbsState::default();
        let g = Gpr::new;
        s.regs.insert(13, Interval::exact(0x1000_8000));
        s.regs.insert(7, Interval { lo: 0, hi: 24 });
        let exact = access_addr(
            &s,
            &M::Lwz {
                rd: g(3),
                d: -16,
                ra: g(13),
            },
        )
        .unwrap();
        assert_eq!(exact, AccessAddr::Exact(0x1000_7FF0));
        let range = access_addr(
            &s,
            &M::Lwzx {
                rd: g(3),
                ra: g(13),
                rb: g(7),
            },
        )
        .unwrap();
        assert_eq!(
            range,
            AccessAddr::Range {
                lo: 0x1000_8000,
                hi: 0x1000_8018
            }
        );
        let unknown = access_addr(
            &s,
            &M::Lwzx {
                rd: g(3),
                ra: g(20),
                rb: g(7),
            },
        )
        .unwrap();
        assert_eq!(unknown, AccessAddr::Unknown);
        assert_eq!(access_addr(&s, &M::Nop), None);
    }
}
