//! Parser for the C-like concrete syntax produced by [`crate::pretty`].
//!
//! The grammar is the subset the pretty printer emits — enough to read
//! hand-written node sources and to round-trip generated code
//! (`parse(pretty(p)) == p`, a tested property):
//!
//! ```text
//! program   := { global | function }
//! global    := type ident [ "=" literal ] ";"
//!            | type ident "[" int "]" "=" "{" literal { "," literal } "}" ";"
//! function  := ("void" | type) ident "(" params ")" "{" { decl } { stmt } "}"
//! stmt      := ident "=" expr ";" | ident "[" expr "]" "=" expr ";"
//!            | "if" "(" expr ")" block [ "else" block ]
//!            | "while" "(" expr ")" block
//!            | "return" [ expr ] ";"
//!            | "__builtin_annotation" "(" string { "," expr } ")" ";"
//!            | "__io_write" "(" int "," expr ")" ";"
//!            | ident "(" args ")" ";"
//! ```
//!
//! Expressions use C precedence for the operator subset
//! (`||` < `&&` < comparisons < `+ -` < `* /` < unary).

use std::fmt;

use crate::ast::{Binop, Cmp, Expr, Function, Global, GlobalDef, Program, Stmt, Ty, Unop};

/// A parse failure with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(&'static str),
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            // skip whitespace and // comments
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.peek2() == Some(b'/') => {
                        while let Some(c) = self.bump() {
                            if c == b'\n' {
                                break;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                b'0'..=b'9' => self.number(false)?,
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                _ => return Err(self.error("bad escape")),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.error("unterminated string")),
                        }
                    }
                    Tok::Str(s)
                }
                _ => {
                    let two: &[(&[u8], &str)] = &[
                        (b"&&", "&&"),
                        (b"||", "||"),
                        (b"==", "=="),
                        (b"!=", "!="),
                        (b"<=", "<="),
                        (b">=", ">="),
                    ];
                    let rest = &self.src[self.pos..];
                    if let Some((_, p)) = two.iter().find(|(pat, _)| rest.starts_with(pat)) {
                        self.bump();
                        self.bump();
                        Tok::Punct(p)
                    } else {
                        let one: &[(u8, &str)] = &[
                            (b'(', "("),
                            (b')', ")"),
                            (b'{', "{"),
                            (b'}', "}"),
                            (b'[', "["),
                            (b']', "]"),
                            (b';', ";"),
                            (b',', ","),
                            (b'=', "="),
                            (b'<', "<"),
                            (b'>', ">"),
                            (b'+', "+"),
                            (b'-', "-"),
                            (b'*', "*"),
                            (b'/', "/"),
                            (b'!', "!"),
                            (b'^', "^"),
                        ];
                        match one.iter().find(|(ch, _)| *ch == c) {
                            Some((_, p)) => {
                                self.bump();
                                Tok::Punct(p)
                            }
                            None => {
                                return Err(self.error(format!("bad character `{}`", c as char)))
                            }
                        }
                    }
                }
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }

    fn number(&mut self, neg: bool) -> Result<Tok, ParseError> {
        let mut s = String::new();
        if neg {
            s.push('-');
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => s.push(c as char),
                b'.' => {
                    is_float = true;
                    s.push('.');
                }
                b'e' | b'E' => {
                    is_float = true;
                    s.push(c as char);
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        s.push(self.peek().expect("peeked") as char);
                    } else {
                        continue;
                    }
                }
                _ => break,
            }
            self.bump();
        }
        if is_float {
            s.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| self.error("bad float literal"))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.error("bad int literal"))
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .or_else(|| self.toks.last().map(|&(_, l, c)| (l, c)))
            .unwrap_or((1, 1));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(self.prev_error(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn prev_error(&self, message: String) -> ParseError {
        let i = self.pos.saturating_sub(1);
        let (line, col) = self.toks.get(i).map(|&(_, l, c)| (l, c)).unwrap_or((1, 1));
        ParseError { line, col, message }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.prev_error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn ty(&mut self, word: &str) -> Option<Ty> {
        match word {
            "int" => Some(Ty::I32),
            "double" => Some(Ty::F64),
            "bool" => Some(Ty::Bool),
            _ => None,
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while let Some(tok) = self.peek().cloned() {
            let Tok::Ident(word) = tok else {
                return Err(self.error_at("expected a declaration"));
            };
            if word == "void" {
                self.pos += 1;
                functions.push(self.function(None)?);
                continue;
            }
            let Some(ty) = self.ty(&word) else {
                return Err(self.error_at(format!("expected a type, found `{word}`")));
            };
            self.pos += 1;
            let name = self.ident()?;
            if matches!(self.peek(), Some(Tok::Punct("("))) {
                functions.push(self.function_named(Some(ty), name)?);
            } else {
                globals.push(self.global_rest(ty, name)?);
            }
        }
        Ok(Program { globals, functions })
    }

    fn literal_i32(&mut self) -> Result<i32, ParseError> {
        let neg = self.try_punct("-");
        match self.next() {
            Some(Tok::Int(v)) => {
                let v = if neg { -v } else { v };
                i32::try_from(v).map_err(|_| self.prev_error("int literal out of range".into()))
            }
            other => Err(self.prev_error(format!("expected int literal, found {other:?}"))),
        }
    }

    fn literal_f64(&mut self) -> Result<f64, ParseError> {
        let neg = self.try_punct("-");
        let v = match self.next() {
            Some(Tok::Float(v)) => v,
            Some(Tok::Int(v)) => v as f64,
            other => {
                return Err(self.prev_error(format!("expected float literal, found {other:?}")));
            }
        };
        Ok(if neg { -v } else { v })
    }

    fn global_rest(&mut self, ty: Ty, name: String) -> Result<Global, ParseError> {
        // array?
        if self.try_punct("[") {
            let _declared_len = self.literal_i32()?;
            self.eat_punct("]")?;
            self.eat_punct("=")?;
            self.eat_punct("{")?;
            let def = match ty {
                Ty::I32 => {
                    let mut v = vec![self.literal_i32()?];
                    while self.try_punct(",") {
                        v.push(self.literal_i32()?);
                    }
                    GlobalDef::ArrayI32(v)
                }
                Ty::F64 => {
                    let mut v = vec![self.literal_f64()?];
                    while self.try_punct(",") {
                        v.push(self.literal_f64()?);
                    }
                    GlobalDef::ArrayF64(v)
                }
                Ty::Bool => return Err(self.error_at("bool arrays are not supported")),
            };
            self.eat_punct("}")?;
            self.eat_punct(";")?;
            return Ok(Global { name, def });
        }
        let def = if self.try_punct("=") {
            match ty {
                Ty::I32 => GlobalDef::ScalarI32(Some(self.literal_i32()?)),
                Ty::F64 => GlobalDef::ScalarF64(Some(self.literal_f64()?)),
                Ty::Bool => {
                    let w = self.ident()?;
                    match w.as_str() {
                        "true" => GlobalDef::ScalarBool(Some(true)),
                        "false" => GlobalDef::ScalarBool(Some(false)),
                        _ => return Err(self.error_at("expected `true` or `false`")),
                    }
                }
            }
        } else {
            match ty {
                Ty::I32 => GlobalDef::ScalarI32(None),
                Ty::F64 => GlobalDef::ScalarF64(None),
                Ty::Bool => GlobalDef::ScalarBool(None),
            }
        };
        self.eat_punct(";")?;
        Ok(Global { name, def })
    }

    fn function(&mut self, ret: Option<Ty>) -> Result<Function, ParseError> {
        let name = self.ident()?;
        self.function_named(ret, name)
    }

    fn function_named(&mut self, ret: Option<Ty>, name: String) -> Result<Function, ParseError> {
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                let tw = self.ident()?;
                let ty = self
                    .ty(&tw)
                    .ok_or_else(|| self.error_at(format!("expected a type, found `{tw}`")))?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if !self.try_punct(",") {
                    break;
                }
            }
            self.eat_punct(")")?;
        }
        self.eat_punct("{")?;
        // local declarations: `type ident ;`
        let mut locals = Vec::new();
        loop {
            let save = self.pos;
            if let Some(Tok::Ident(w)) = self.peek().cloned() {
                if let Some(ty) = self.ty(&w) {
                    self.pos += 1;
                    if let (Ok(n), true) =
                        (self.ident(), matches!(self.peek(), Some(Tok::Punct(";"))))
                    {
                        self.pos += 1;
                        locals.push((n, ty));
                        continue;
                    }
                }
            }
            self.pos = save;
            break;
        }
        let body = self.block_body()?;
        Ok(Function {
            name,
            params,
            ret,
            locals,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        self.block_body()
    }

    /// Statements until the matching `}` (already inside the block).
    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.try_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let word = match self.peek() {
            Some(Tok::Ident(w)) => w.clone(),
            other => return Err(self.error_at(format!("expected a statement, found {other:?}"))),
        };
        match word.as_str() {
            "if" => {
                self.pos += 1;
                self.eat_punct("(")?;
                let c = self.expr()?;
                self.eat_punct(")")?;
                let then = self.block()?;
                let els = if matches!(self.peek(), Some(Tok::Ident(w)) if w == "else") {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then, els))
            }
            "while" => {
                self.pos += 1;
                self.eat_punct("(")?;
                let c = self.expr()?;
                self.eat_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While(c, body))
            }
            "return" => {
                self.pos += 1;
                if self.try_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            "__builtin_annotation" => {
                self.pos += 1;
                self.eat_punct("(")?;
                let fmt = match self.next() {
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(self.prev_error(format!("expected string, found {other:?}")));
                    }
                };
                let mut args = Vec::new();
                while self.try_punct(",") {
                    args.push(self.expr()?);
                }
                self.eat_punct(")")?;
                self.eat_punct(";")?;
                Ok(Stmt::Annot(fmt, args))
            }
            "__io_write" => {
                self.pos += 1;
                self.eat_punct("(")?;
                let port = self.literal_i32()? as u32;
                self.eat_punct(",")?;
                let e = self.expr()?;
                self.eat_punct(")")?;
                self.eat_punct(";")?;
                Ok(Stmt::IoWrite(port, e))
            }
            _ => {
                // assignment, array store or call statement
                let name = self.ident()?;
                if self.try_punct("[") {
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    self.eat_punct("=")?;
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::StoreIndex(name, idx, e))
                } else if self.try_punct("=") {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Assign(name, e))
                } else if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.try_punct(",") {
                                break;
                            }
                        }
                        self.eat_punct(")")?;
                    }
                    self.eat_punct(";")?;
                    Ok(Stmt::CallStmt(name, args))
                } else {
                    Err(self.error_at("expected `=`, `[` or `(` after identifier"))
                }
            }
        }
    }

    // ---- expressions, by precedence ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.try_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::binop(Binop::OrB, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.try_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::binop(Binop::AndB, lhs, rhs);
        }
        Ok(lhs)
    }

    /// Comparison operators need the operand type to pick `CmpI` vs `CmpF`;
    /// the parser infers it syntactically (float literal or float-producing
    /// construct anywhere in either operand ⇒ float compare) and leaves the
    /// final say to the typechecker.
    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let cmp = match self.peek() {
            Some(Tok::Punct(p)) => match *p {
                "==" => Some(Cmp::Eq),
                "!=" => Some(Cmp::Ne),
                "<" => Some(Cmp::Lt),
                "<=" => Some(Cmp::Le),
                ">" => Some(Cmp::Gt),
                ">=" => Some(Cmp::Ge),
                _ => None,
            },
            _ => None,
        };
        let Some(cmp) = cmp else { return Ok(lhs) };
        self.pos += 1;
        let rhs = self.add_expr()?;
        let op = if looks_float(&lhs) || looks_float(&rhs) {
            Binop::CmpF(cmp)
        } else {
            Binop::CmpI(cmp)
        };
        Ok(Expr::binop(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.try_punct("+") {
                true
            } else if self.try_punct("-") {
                false
            } else if self.try_punct("^") {
                let rhs = self.mul_expr()?;
                lhs = Expr::binop(Binop::XorB, lhs, rhs);
                continue;
            } else {
                break;
            };
            let rhs = self.mul_expr()?;
            let float = looks_float(&lhs) || looks_float(&rhs);
            let b = match (op, float) {
                (true, true) => Binop::AddF,
                (true, false) => Binop::AddI,
                (false, true) => Binop::SubF,
                (false, false) => Binop::SubI,
            };
            lhs = Expr::binop(b, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.try_punct("*") {
                true
            } else if self.try_punct("/") {
                false
            } else {
                break;
            };
            let rhs = self.unary()?;
            let float = looks_float(&lhs) || looks_float(&rhs);
            let b = match (op, float) {
                (true, true) => Binop::MulF,
                (true, false) => Binop::MulI,
                (false, true) => Binop::DivF,
                (false, false) => Binop::DivI,
            };
            lhs = Expr::binop(b, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.try_punct("!") {
            let e = self.unary()?;
            return Ok(Expr::unop(Unop::NotB, e));
        }
        if self.try_punct("-") {
            // fold negated literals so `-30.0` round-trips as a literal
            match self.peek() {
                Some(Tok::Int(v)) => {
                    let v = -*v;
                    self.pos += 1;
                    return Ok(Expr::IntLit(i32::try_from(v).map_err(|_| {
                        self.prev_error("int literal out of range".into())
                    })?));
                }
                Some(Tok::Float(v)) => {
                    let v = -*v;
                    self.pos += 1;
                    return Ok(Expr::FloatLit(v));
                }
                _ => {}
            }
            let e = self.unary()?;
            let op = if looks_float(&e) {
                Unop::NegF
            } else {
                Unop::NegI
            };
            return Ok(Expr::unop(op, e));
        }
        // casts: "(double)(e)" / "(int)(e)"
        if matches!(self.peek(), Some(Tok::Punct("("))) {
            if let Some((Tok::Ident(w), _, _)) = self.toks.get(self.pos + 1) {
                if (w == "double" || w == "int")
                    && matches!(self.toks.get(self.pos + 2), Some((Tok::Punct(")"), _, _)))
                {
                    let to_float = w == "double";
                    self.pos += 3;
                    let e = self.unary()?;
                    return Ok(Expr::unop(if to_float { Unop::I2F } else { Unop::F2I }, e));
                }
            }
            self.pos += 1;
            let e = self.expr()?;
            self.eat_punct(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Int(v)) => {
                Ok(Expr::IntLit(i32::try_from(v).map_err(|_| {
                    self.prev_error("int literal out of range".into())
                })?))
            }
            Some(Tok::Float(v)) => Ok(Expr::FloatLit(v)),
            Some(Tok::Ident(w)) => match w.as_str() {
                "true" => Ok(Expr::BoolLit(true)),
                "false" => Ok(Expr::BoolLit(false)),
                "__io_read" => {
                    self.eat_punct("(")?;
                    let port = self.literal_i32()? as u32;
                    self.eat_punct(")")?;
                    Ok(Expr::IoRead(port))
                }
                "__builtin_fabs" => {
                    self.eat_punct("(")?;
                    let e = self.expr()?;
                    self.eat_punct(")")?;
                    Ok(Expr::unop(Unop::AbsF, e))
                }
                _ => {
                    if self.try_punct("[") {
                        let idx = self.expr()?;
                        self.eat_punct("]")?;
                        Ok(Expr::Index(w, Box::new(idx)))
                    } else if self.try_punct("(") {
                        let mut args = Vec::new();
                        if !self.try_punct(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.try_punct(",") {
                                    break;
                                }
                            }
                            self.eat_punct(")")?;
                        }
                        Ok(Expr::Call(w, args))
                    } else {
                        Ok(Expr::Var(w))
                    }
                }
            },
            other => Err(self.prev_error(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Syntactic guess whether an expression is floating — used to choose the
/// typed operator variants during parsing; the typechecker verifies.
fn looks_float(e: &Expr) -> bool {
    match e {
        Expr::FloatLit(_) | Expr::IoRead(_) => true,
        Expr::Unop(Unop::NegF | Unop::AbsF | Unop::I2F, _) => true,
        Expr::Unop(Unop::F2I | Unop::NegI | Unop::NotB, _) => false,
        Expr::Binop(op, ..) => matches!(op, Binop::AddF | Binop::SubF | Binop::MulF | Binop::DivF),
        Expr::Index(..) => true, // generated arrays are f64 tables
        _ => false,
    }
}

/// Parses a MiniC translation unit from its C-like concrete syntax.
///
/// The parser resolves comparison and arithmetic operator typing
/// syntactically (literal shapes, casts, known builtins) and **re-types
/// operators against the declarations** in a post-pass, so `a + b` on two
/// `double` variables becomes `AddF` even though neither operand is
/// syntactically floating.
///
/// # Errors
///
/// [`ParseError`] with the position of the first offending token.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = p.program()?;
    retype(&mut prog);
    Ok(prog)
}

/// Post-pass: fix operator variants using declared types (the parser's
/// syntactic guess only sees literal shapes).
fn retype(prog: &mut Program) {
    let prog_snapshot = prog.clone();
    for f in &mut prog.functions {
        let is_float = |name: &str| -> Option<bool> {
            for (n, t) in f.params.iter().chain(&f.locals) {
                if n == name {
                    return Some(*t == Ty::F64);
                }
            }
            prog_snapshot
                .global(name)
                .map(|g| g.def.elem_ty() == Ty::F64)
        };
        let body = std::mem::take(&mut f.body);
        f.body = body
            .into_iter()
            .map(|s| retype_stmt(s, &is_float))
            .collect();
    }
}

fn retype_stmt(s: Stmt, is_float: &dyn Fn(&str) -> Option<bool>) -> Stmt {
    match s {
        Stmt::Assign(n, e) => Stmt::Assign(n, retype_expr(e, is_float)),
        Stmt::StoreIndex(n, i, e) => {
            Stmt::StoreIndex(n, retype_expr(i, is_float), retype_expr(e, is_float))
        }
        Stmt::If(c, a, b) => Stmt::If(
            retype_expr(c, is_float),
            a.into_iter().map(|s| retype_stmt(s, is_float)).collect(),
            b.into_iter().map(|s| retype_stmt(s, is_float)).collect(),
        ),
        Stmt::While(c, b) => Stmt::While(
            retype_expr(c, is_float),
            b.into_iter().map(|s| retype_stmt(s, is_float)).collect(),
        ),
        Stmt::Return(e) => Stmt::Return(e.map(|e| retype_expr(e, is_float))),
        Stmt::Annot(f, args) => Stmt::Annot(
            f,
            args.into_iter().map(|e| retype_expr(e, is_float)).collect(),
        ),
        Stmt::IoWrite(p, e) => Stmt::IoWrite(p, retype_expr(e, is_float)),
        Stmt::CallStmt(n, args) => Stmt::CallStmt(
            n,
            args.into_iter().map(|e| retype_expr(e, is_float)).collect(),
        ),
    }
}

fn expr_is_float(e: &Expr, is_float: &dyn Fn(&str) -> Option<bool>) -> bool {
    match e {
        Expr::Var(n) => is_float(n).unwrap_or(false),
        Expr::FloatLit(_) | Expr::IoRead(_) => true,
        Expr::Unop(Unop::NegF | Unop::AbsF | Unop::I2F, _) => true,
        Expr::Binop(Binop::AddF | Binop::SubF | Binop::MulF | Binop::DivF, ..) => true,
        Expr::Index(..) => true,
        _ => false,
    }
}

fn retype_expr(e: Expr, is_float: &dyn Fn(&str) -> Option<bool>) -> Expr {
    match e {
        Expr::Unop(op, a) => {
            let a = retype_expr(*a, is_float);
            let op = match op {
                Unop::NegI if expr_is_float(&a, is_float) => Unop::NegF,
                Unop::NegF if !expr_is_float(&a, is_float) => Unop::NegI,
                other => other,
            };
            Expr::unop(op, a)
        }
        Expr::Binop(op, a, b) => {
            let a = retype_expr(*a, is_float);
            let b = retype_expr(*b, is_float);
            let float = expr_is_float(&a, is_float) || expr_is_float(&b, is_float);
            let op = match (op, float) {
                (Binop::AddI, true) => Binop::AddF,
                (Binop::SubI, true) => Binop::SubF,
                (Binop::MulI, true) => Binop::MulF,
                (Binop::DivI, true) => Binop::DivF,
                (Binop::AddF, false) => Binop::AddI,
                (Binop::SubF, false) => Binop::SubI,
                (Binop::MulF, false) => Binop::MulI,
                (Binop::DivF, false) => Binop::DivI,
                (Binop::CmpI(c), true) => Binop::CmpF(c),
                (Binop::CmpF(c), false) => Binop::CmpI(c),
                (other, _) => other,
            };
            Expr::binop(op, a, b)
        }
        Expr::Index(n, i) => Expr::Index(n, Box::new(retype_expr(*i, is_float))),
        Expr::Call(n, args) => Expr::Call(
            n,
            args.into_iter().map(|e| retype_expr(e, is_float)).collect(),
        ),
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::program_to_c;

    #[test]
    fn parses_simple_function() {
        let src = r#"
            double k = 2.5;
            double gain(double x) {
                return (k * x);
            }
        "#;
        let p = parse(src).unwrap();
        crate::typeck::check(&p).unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.functions[0].name, "gain");
        assert_eq!(p.functions[0].ret, Some(Ty::F64));
    }

    #[test]
    fn parses_control_flow_and_builtins() {
        let src = r#"
            double out;
            int n = 3;
            void step() {
                double x;
                int i;
                x = __io_read(2);
                __builtin_annotation("0 <= %1 <= 3", n);
                while (i < n) {
                    x = (x * 0.5);
                    i = (i + 1);
                }
                if (x > 10.0) {
                    x = 10.0;
                } else {
                    x = __builtin_fabs(x);
                }
                out = x;
                __io_write(4, x);
            }
        "#;
        let p = parse(src).unwrap();
        crate::typeck::check(&p).unwrap();
        let step = p.function("step").unwrap();
        assert_eq!(step.locals.len(), 2);
        assert!(matches!(step.body[1], Stmt::Annot(..)));
        assert!(matches!(step.body[2], Stmt::While(..)));
    }

    #[test]
    fn retyping_uses_declarations() {
        // both operands are plain variables; only declarations reveal f64
        let src = r#"
            double a;
            double b;
            double c;
            void f() {
                c = (a + b);
                if (a < b) {
                    c = a;
                }
            }
        "#;
        let p = parse(src).unwrap();
        crate::typeck::check(&p).unwrap();
        match &p.functions[0].body[0] {
            Stmt::Assign(_, Expr::Binop(op, ..)) => assert_eq!(*op, Binop::AddF),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_arrays_and_casts() {
        let src = r#"
            double tab[3] = {1.5, 2.5, 3.5};
            int idx;
            double y;
            void f() {
                y = tab[(idx + 1)];
                tab[0] = ((double)(idx) * 2.0);
                idx = (int)(y);
            }
        "#;
        let p = parse(src).unwrap();
        crate::typeck::check(&p).unwrap();
    }

    #[test]
    fn reports_positions() {
        let err = parse("void f() { x = ; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 10, "{err}");
        assert!(parse("int x = 99999999999;").is_err());
        assert!(parse("double t[1] = {};").is_err());
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let src = r#"
            double state;
            bool armed = true;
            double tab[2] = {0.5, 1.5};
            void step(double cmd) {
                double x;
                bool hot;
                x = (cmd - state);
                hot = ((x > 1.0) && armed);
                if (hot) {
                    state = (state + (0.25 * x));
                }
                __builtin_annotation("trace %1", x);
                __io_write(1, state);
            }
        "#;
        let p1 = parse(src).unwrap();
        crate::typeck::check(&p1).unwrap();
        let printed = program_to_c(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(p1, p2, "pretty → parse must be the identity\n{printed}");
    }
}
