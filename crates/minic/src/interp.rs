//! Big-step reference interpreter for MiniC.
//!
//! The interpreter defines the *source semantics* every compiler
//! configuration must preserve. Its arithmetic deliberately equals the target
//! machine's, down to the corner cases (`divw` on zero/overflow, saturating
//! `double`→`int` truncation, IEEE comparisons on NaN), so that differential
//! tests between interpreter and simulator are exact rather than
//! approximate.
//!
//! Observable behaviour of a run:
//!
//! * final global-variable values,
//! * I/O port writes (actuator commands),
//! * the **annotation trace**: the ordered sequence of
//!   `__builtin_annotation` observations with argument values — the
//!   source-level counterpart of the machine's annotation-marker trace.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Binop, Expr, Function, GlobalDef, Program, Stmt, Ty, Unop};

/// A MiniC runtime value.
///
/// Equality on `F` is *bitwise* so traces containing NaN compare reliably.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// 32-bit integer.
    I(i32),
    /// IEEE double.
    F(f64),
    /// Boolean.
    B(bool),
}

impl Value {
    /// The default (zero) value of a type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::I32 => Value::I(0),
            Ty::F64 => Value::F(0.0),
            Ty::Bool => Value::B(false),
        }
    }

    /// The type of this value.
    pub fn ty(&self) -> Ty {
        match self {
            Value::I(_) => Ty::I32,
            Value::F(_) => Ty::F64,
            Value::B(_) => Ty::Bool,
        }
    }

    /// Normalizes booleans to the 0/1 integers the machine observes (used
    /// when recording annotation traces).
    pub fn normalized(self) -> Value {
        match self {
            Value::B(b) => Value::I(i32::from(b)),
            v => v,
        }
    }

    fn as_i(self) -> i32 {
        match self {
            Value::I(v) => v,
            _ => unreachable!("typechecked program produced non-int"),
        }
    }

    fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            _ => unreachable!("typechecked program produced non-double"),
        }
    }

    fn as_b(self) -> bool {
        match self {
            Value::B(v) => v,
            _ => unreachable!("typechecked program produced non-bool"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::I(a), Value::I(b)) => a == b,
            (Value::B(a), Value::B(b)) => a == b,
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => v.fmt(f),
            Value::F(v) => v.fmt(f),
            Value::B(v) => v.fmt(f),
        }
    }
}

/// One `__builtin_annotation` observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The annotation's format string.
    pub format: String,
    /// The observed argument values (booleans normalized to 0/1 integers).
    pub values: Vec<Value>,
}

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget was exhausted (runaway loop).
    Fuel,
    /// The called function does not exist.
    UnknownFunction(String),
    /// An array access was out of bounds.
    IndexOutOfBounds {
        /// Array name.
        name: String,
        /// Faulting index.
        index: i32,
        /// Array length.
        len: usize,
    },
    /// `call` was given arguments not matching the signature.
    ArgMismatch(String),
    /// A host access named an unknown global or used the wrong type.
    BadGlobal(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Fuel => write!(f, "step budget exhausted"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::IndexOutOfBounds { name, index, len } => {
                write!(f, "index {index} out of bounds for `{name}` (len {len})")
            }
            InterpError::ArgMismatch(n) => write!(f, "argument mismatch calling `{n}`"),
            InterpError::BadGlobal(n) => write!(f, "bad global access `{n}`"),
        }
    }
}

impl std::error::Error for InterpError {}

#[derive(Debug, Clone)]
enum GVal {
    I(i32),
    F(f64),
    B(bool),
    Ai(Vec<i32>),
    Af(Vec<f64>),
}

enum Flow {
    Normal,
    Return(Option<Value>),
}

/// `fctiwz`-style saturating truncation (must equal the machine's; the
/// compiler's constant folder uses this definition too).
pub fn sat_trunc(v: f64) -> i32 {
    if v.is_nan() {
        i32::MIN
    } else if v >= 2147483647.0 {
        i32::MAX
    } else if v <= -2147483648.0 {
        i32::MIN
    } else {
        v.trunc() as i32
    }
}

fn divi(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// The interpreter. Holds the mutable global store, the I/O ports and the
/// annotation trace; functions are called against this persistent state,
/// mirroring how the simulator runs `step` functions against persistent
/// memory.
#[derive(Debug)]
pub struct Interp<'p> {
    prog: &'p Program,
    globals: BTreeMap<String, GVal>,
    io: BTreeMap<u32, f64>,
    trace: Vec<TraceEvent>,
    fuel: u64,
    spent: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with globals initialized from their
    /// definitions (zero when absent) and a generous default step budget.
    pub fn new(prog: &'p Program) -> Self {
        let globals = prog
            .globals
            .iter()
            .map(|g| {
                let v = match &g.def {
                    GlobalDef::ScalarI32(i) => GVal::I(i.unwrap_or(0)),
                    GlobalDef::ScalarF64(x) => GVal::F(x.unwrap_or(0.0)),
                    GlobalDef::ScalarBool(b) => GVal::B(b.unwrap_or(false)),
                    GlobalDef::ArrayI32(v) => GVal::Ai(v.clone()),
                    GlobalDef::ArrayF64(v) => GVal::Af(v.clone()),
                };
                (g.name.clone(), v)
            })
            .collect();
        Interp {
            prog,
            globals,
            io: BTreeMap::new(),
            trace: Vec::new(),
            fuel: 10_000_000,
            spent: 0,
        }
    }

    /// Sets the step budget for subsequent calls.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
        self.spent = 0;
    }

    /// Sets the value acquired from I/O port `port`.
    pub fn set_io(&mut self, port: u32, value: f64) {
        self.io.insert(port, value);
    }

    /// The current value of I/O port `port` (0.0 if never written).
    pub fn io(&self, port: u32) -> f64 {
        self.io.get(&port).copied().unwrap_or(0.0)
    }

    /// Reads a global scalar.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadGlobal`] if the name is unknown or is an array.
    pub fn global(&self, name: &str) -> Result<Value, InterpError> {
        match self.globals.get(name) {
            Some(GVal::I(v)) => Ok(Value::I(*v)),
            Some(GVal::F(v)) => Ok(Value::F(*v)),
            Some(GVal::B(v)) => Ok(Value::B(*v)),
            _ => Err(InterpError::BadGlobal(name.to_owned())),
        }
    }

    /// Writes a global scalar.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadGlobal`] on unknown name or type mismatch.
    pub fn set_global(&mut self, name: &str, value: Value) -> Result<(), InterpError> {
        match (self.globals.get_mut(name), value) {
            (Some(GVal::I(v)), Value::I(x)) => *v = x,
            (Some(GVal::F(v)), Value::F(x)) => *v = x,
            (Some(GVal::B(v)), Value::B(x)) => *v = x,
            _ => return Err(InterpError::BadGlobal(name.to_owned())),
        }
        Ok(())
    }

    /// Reads element `index` of a global array.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadGlobal`] or [`InterpError::IndexOutOfBounds`].
    pub fn global_elem(&self, name: &str, index: usize) -> Result<Value, InterpError> {
        let oob = |len| InterpError::IndexOutOfBounds {
            name: name.to_owned(),
            index: index as i32,
            len,
        };
        match self.globals.get(name) {
            Some(GVal::Ai(v)) => v.get(index).map(|&x| Value::I(x)).ok_or(oob(v.len())),
            Some(GVal::Af(v)) => v.get(index).map(|&x| Value::F(x)).ok_or(oob(v.len())),
            _ => Err(InterpError::BadGlobal(name.to_owned())),
        }
    }

    /// The annotation trace accumulated so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Removes and returns the accumulated annotation trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Calls a function with the given argument values.
    ///
    /// # Errors
    ///
    /// [`InterpError::UnknownFunction`], [`InterpError::ArgMismatch`], or any
    /// runtime error raised by the body.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, InterpError> {
        self.spent = 0;
        let f = self
            .prog
            .function(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_owned()))?;
        self.invoke(f, args)
    }

    fn invoke(&mut self, f: &'p Function, args: &[Value]) -> Result<Option<Value>, InterpError> {
        if args.len() != f.params.len()
            || args.iter().zip(&f.params).any(|(v, (_, ty))| v.ty() != *ty)
        {
            return Err(InterpError::ArgMismatch(f.name.clone()));
        }
        let mut frame: BTreeMap<&str, Value> = f
            .params
            .iter()
            .zip(args)
            .map(|((n, _), v)| (n.as_str(), *v))
            .chain(
                f.locals
                    .iter()
                    .map(|(n, ty)| (n.as_str(), Value::zero(*ty))),
            )
            .collect();
        match self.exec_block(f, &mut frame, &f.body)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None), // void function falling off the end
        }
    }

    fn burn(&mut self) -> Result<(), InterpError> {
        self.spent += 1;
        if self.spent > self.fuel {
            return Err(InterpError::Fuel);
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        f: &'p Function,
        frame: &mut BTreeMap<&'p str, Value>,
        body: &'p [Stmt],
    ) -> Result<Flow, InterpError> {
        for s in body {
            if let Flow::Return(v) = self.exec(f, frame, s)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(
        &mut self,
        f: &'p Function,
        frame: &mut BTreeMap<&'p str, Value>,
        s: &'p Stmt,
    ) -> Result<Flow, InterpError> {
        self.burn()?;
        match s {
            Stmt::Assign(name, e) => {
                let v = self.eval(f, frame, e)?;
                if let Some(slot) = frame.get_mut(name.as_str()) {
                    *slot = v;
                } else {
                    self.set_global(name, v)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::StoreIndex(name, idx, e) => {
                let i = self.eval(f, frame, idx)?.as_i();
                let v = self.eval(f, frame, e)?;
                let gv = self
                    .globals
                    .get_mut(name.as_str())
                    .ok_or_else(|| InterpError::BadGlobal(name.clone()))?;
                let len = match gv {
                    GVal::Ai(a) => a.len(),
                    GVal::Af(a) => a.len(),
                    _ => return Err(InterpError::BadGlobal(name.clone())),
                };
                if i < 0 || i as usize >= len {
                    return Err(InterpError::IndexOutOfBounds {
                        name: name.clone(),
                        index: i,
                        len,
                    });
                }
                match (gv, v) {
                    (GVal::Ai(a), Value::I(x)) => a[i as usize] = x,
                    (GVal::Af(a), Value::F(x)) => a[i as usize] = x,
                    _ => return Err(InterpError::BadGlobal(name.clone())),
                }
                Ok(Flow::Normal)
            }
            Stmt::If(c, then, els) => {
                if self.eval(f, frame, c)?.as_b() {
                    self.exec_block(f, frame, then)
                } else {
                    self.exec_block(f, frame, els)
                }
            }
            Stmt::While(c, body) => {
                while self.eval(f, frame, c)?.as_b() {
                    self.burn()?;
                    if let Flow::Return(v) = self.exec_block(f, frame, body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(None) => Ok(Flow::Return(None)),
            Stmt::Return(Some(e)) => {
                let v = self.eval(f, frame, e)?;
                Ok(Flow::Return(Some(v)))
            }
            Stmt::Annot(fmt, args) => {
                let values = args
                    .iter()
                    .map(|a| self.eval(f, frame, a).map(Value::normalized))
                    .collect::<Result<Vec<_>, _>>()?;
                self.trace.push(TraceEvent {
                    format: fmt.clone(),
                    values,
                });
                Ok(Flow::Normal)
            }
            Stmt::IoWrite(port, e) => {
                let v = self.eval(f, frame, e)?.as_f();
                self.io.insert(*port, v);
                Ok(Flow::Normal)
            }
            Stmt::CallStmt(name, args) => {
                let argv = args
                    .iter()
                    .map(|a| self.eval(f, frame, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| InterpError::UnknownFunction(name.clone()))?;
                self.invoke(callee, &argv)?;
                Ok(Flow::Normal)
            }
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn eval(
        &mut self,
        f: &'p Function,
        frame: &mut BTreeMap<&'p str, Value>,
        e: &'p Expr,
    ) -> Result<Value, InterpError> {
        Ok(match e {
            Expr::IntLit(v) => Value::I(*v),
            Expr::FloatLit(v) => Value::F(*v),
            Expr::BoolLit(v) => Value::B(*v),
            Expr::Var(name) => match frame.get(name.as_str()) {
                Some(v) => *v,
                None => self.global(name)?,
            },
            Expr::Index(name, idx) => {
                let i = self.eval(f, frame, idx)?.as_i();
                if i < 0 {
                    return Err(InterpError::IndexOutOfBounds {
                        name: name.clone(),
                        index: i,
                        len: 0,
                    });
                }
                self.global_elem(name, i as usize)?
            }
            Expr::IoRead(port) => Value::F(self.io(*port)),
            Expr::Unop(op, a) => {
                let v = self.eval(f, frame, a)?;
                match op {
                    Unop::NegI => Value::I(v.as_i().wrapping_neg()),
                    Unop::NotB => Value::B(!v.as_b()),
                    Unop::NegF => Value::F(-v.as_f()),
                    Unop::AbsF => Value::F(v.as_f().abs()),
                    Unop::I2F => Value::F(f64::from(v.as_i())),
                    Unop::F2I => Value::I(sat_trunc(v.as_f())),
                }
            }
            Expr::Binop(op, a, b) => {
                let x = self.eval(f, frame, a)?;
                let y = self.eval(f, frame, b)?;
                match op {
                    Binop::AddI => Value::I(x.as_i().wrapping_add(y.as_i())),
                    Binop::SubI => Value::I(x.as_i().wrapping_sub(y.as_i())),
                    Binop::MulI => Value::I(x.as_i().wrapping_mul(y.as_i())),
                    Binop::DivI => Value::I(divi(x.as_i(), y.as_i())),
                    Binop::AddF => Value::F(x.as_f() + y.as_f()),
                    Binop::SubF => Value::F(x.as_f() - y.as_f()),
                    Binop::MulF => Value::F(x.as_f() * y.as_f()),
                    Binop::DivF => Value::F(x.as_f() / y.as_f()),
                    Binop::CmpI(c) => Value::B(c.eval(Some(x.as_i().cmp(&y.as_i())))),
                    Binop::CmpF(c) => Value::B(c.eval(x.as_f().partial_cmp(&y.as_f()))),
                    Binop::AndB => Value::B(x.as_b() & y.as_b()),
                    Binop::OrB => Value::B(x.as_b() | y.as_b()),
                    Binop::XorB => Value::B(x.as_b() ^ y.as_b()),
                }
            }
            Expr::Call(name, args) => {
                let argv = args
                    .iter()
                    .map(|a| self.eval(f, frame, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| InterpError::UnknownFunction(name.clone()))?;
                self.invoke(callee, &argv)?
                    .expect("typechecker rejects void calls in expressions")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn check_and_run(p: &Program, f: &str, args: &[Value]) -> (Option<Value>, Vec<TraceEvent>) {
        crate::typeck::check(p).expect("test program must typecheck");
        let mut it = Interp::new(p);
        let r = it.call(f, args).expect("test program must run");
        let t = it.take_trace();
        (r, t)
    }

    #[test]
    fn arithmetic_corner_cases_match_machine() {
        // return a / b (machine divw semantics)
        let f = Function {
            name: "div".into(),
            params: vec![("a".into(), Ty::I32), ("b".into(), Ty::I32)],
            ret: Some(Ty::I32),
            locals: vec![],
            body: vec![Stmt::Return(Some(Expr::binop(
                Binop::DivI,
                Expr::var("a"),
                Expr::var("b"),
            )))],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        let run = |a, b| check_and_run(&p, "div", &[Value::I(a), Value::I(b)]).0;
        assert_eq!(run(7, 2), Some(Value::I(3)));
        assert_eq!(run(-7, 2), Some(Value::I(-3)));
        assert_eq!(run(5, 0), Some(Value::I(0)));
        assert_eq!(run(i32::MIN, -1), Some(Value::I(i32::MIN)));
    }

    #[test]
    fn while_loop_and_array() {
        // sum = t[0] + … + t[3]
        let p = Program {
            globals: vec![
                Global {
                    name: "t".into(),
                    def: GlobalDef::ArrayI32(vec![3, 1, 4, 1]),
                },
                Global {
                    name: "sum".into(),
                    def: GlobalDef::ScalarI32(None),
                },
            ],
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                ret: None,
                locals: vec![("i".into(), Ty::I32)],
                body: vec![Stmt::While(
                    Expr::binop(Binop::CmpI(Cmp::Lt), Expr::var("i"), Expr::IntLit(4)),
                    vec![
                        Stmt::Assign(
                            "sum".into(),
                            Expr::binop(
                                Binop::AddI,
                                Expr::var("sum"),
                                Expr::Index("t".into(), Box::new(Expr::var("i"))),
                            ),
                        ),
                        Stmt::Assign(
                            "i".into(),
                            Expr::binop(Binop::AddI, Expr::var("i"), Expr::IntLit(1)),
                        ),
                    ],
                )],
            }],
        };
        crate::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        it.call("f", &[]).unwrap();
        assert_eq!(it.global("sum").unwrap(), Value::I(9));
    }

    #[test]
    fn annotation_trace_records_values_in_order() {
        let f = Function {
            name: "f".into(),
            params: vec![("x".into(), Ty::I32)],
            ret: None,
            locals: vec![],
            body: vec![
                Stmt::Annot("0 <= %1 < 10".into(), vec![Expr::var("x")]),
                Stmt::Annot("flag %1".into(), vec![Expr::BoolLit(true)]),
            ],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        let (_, trace) = check_and_run(&p, "f", &[Value::I(7)]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].values, vec![Value::I(7)]);
        // booleans are normalized to 0/1 integers
        assert_eq!(trace[1].values, vec![Value::I(1)]);
    }

    #[test]
    fn fuel_stops_runaway_loops() {
        let f = Function {
            name: "spin".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::While(Expr::BoolLit(true), vec![])],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        let mut it = Interp::new(&p);
        it.set_fuel(1000);
        assert_eq!(it.call("spin", &[]), Err(InterpError::Fuel));
    }

    #[test]
    fn io_roundtrip() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::IoWrite(
                3,
                Expr::binop(Binop::MulF, Expr::IoRead(1), Expr::FloatLit(2.0)),
            )],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        crate::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        it.set_io(1, 10.5);
        it.call("f", &[]).unwrap();
        assert_eq!(it.io(3), 21.0);
    }

    #[test]
    fn nan_comparisons_are_ieee() {
        let f = Function {
            name: "f".into(),
            params: vec![("x".into(), Ty::F64)],
            ret: Some(Ty::Bool),
            locals: vec![],
            body: vec![Stmt::Return(Some(Expr::binop(
                Binop::CmpF(Cmp::Ne),
                Expr::var("x"),
                Expr::var("x"),
            )))],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        let (r, _) = check_and_run(&p, "f", &[Value::F(f64::NAN)]);
        assert_eq!(r, Some(Value::B(true)));
        let (r, _) = check_and_run(&p, "f", &[Value::F(1.0)]);
        assert_eq!(r, Some(Value::B(false)));
    }

    #[test]
    fn f2i_saturates() {
        let f = Function {
            name: "f".into(),
            params: vec![("x".into(), Ty::F64)],
            ret: Some(Ty::I32),
            locals: vec![],
            body: vec![Stmt::Return(Some(Expr::unop(Unop::F2I, Expr::var("x"))))],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        let run = |x| check_and_run(&p, "f", &[Value::F(x)]).0;
        assert_eq!(run(2.9), Some(Value::I(2)));
        assert_eq!(run(-2.9), Some(Value::I(-2)));
        assert_eq!(run(1e30), Some(Value::I(i32::MAX)));
        assert_eq!(run(f64::NAN), Some(Value::I(i32::MIN)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let p = Program {
            globals: vec![Global {
                name: "t".into(),
                def: GlobalDef::ArrayF64(vec![1.0]),
            }],
            functions: vec![Function {
                name: "f".into(),
                params: vec![("i".into(), Ty::I32)],
                ret: Some(Ty::F64),
                locals: vec![],
                body: vec![Stmt::Return(Some(Expr::Index(
                    "t".into(),
                    Box::new(Expr::var("i")),
                )))],
            }],
        };
        crate::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        assert!(matches!(
            it.call("f", &[Value::I(5)]),
            Err(InterpError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            it.call("f", &[Value::I(-1)]),
            Err(InterpError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn nested_calls_and_state_persistence() {
        let helper = Function {
            name: "inc".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::Assign(
                "count".into(),
                Expr::binop(Binop::AddI, Expr::var("count"), Expr::IntLit(1)),
            )],
        };
        let main = Function {
            name: "step".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![
                Stmt::CallStmt("inc".into(), vec![]),
                Stmt::CallStmt("inc".into(), vec![]),
            ],
        };
        let p = Program {
            globals: vec![Global {
                name: "count".into(),
                def: GlobalDef::ScalarI32(None),
            }],
            functions: vec![main, helper],
        };
        crate::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        it.call("step", &[]).unwrap();
        it.call("step", &[]).unwrap(); // state persists across calls
        assert_eq!(it.global("count").unwrap(), Value::I(4));
    }
}
