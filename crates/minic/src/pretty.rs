//! C-like pretty printer for MiniC programs.
//!
//! Renders a program as the C translation unit a developer would review —
//! useful for inspecting what the automatic code generator produced and for
//! the examples that reproduce the paper's listings.

use std::fmt::Write as _;

use crate::ast::{Binop, Cmp, Expr, Function, Global, GlobalDef, Program, Stmt, Ty, Unop};

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::I32 => "int",
        Ty::F64 => "double",
        Ty::Bool => "bool",
    }
}

fn cmp_op(c: Cmp) -> &'static str {
    match c {
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
    }
}

fn binop_str(op: Binop) -> &'static str {
    match op {
        Binop::AddI | Binop::AddF => "+",
        Binop::SubI | Binop::SubF => "-",
        Binop::MulI | Binop::MulF => "*",
        Binop::DivI | Binop::DivF => "/",
        Binop::CmpI(c) | Binop::CmpF(c) => cmp_op(c),
        Binop::AndB => "&&",
        Binop::OrB => "||",
        Binop::XorB => "^",
    }
}

fn expr(e: &Expr, out: &mut String) {
    match e {
        Expr::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::BoolLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Index(n, i) => {
            let _ = write!(out, "{n}[");
            expr(i, out);
            out.push(']');
        }
        Expr::Unop(op, a) => {
            match op {
                Unop::NegI | Unop::NegF => out.push('-'),
                Unop::NotB => out.push('!'),
                Unop::AbsF => out.push_str("__builtin_fabs"),
                Unop::I2F => out.push_str("(double)"),
                Unop::F2I => out.push_str("(int)"),
            }
            out.push('(');
            expr(a, out);
            out.push(')');
        }
        Expr::Binop(op, a, b) => {
            out.push('(');
            expr(a, out);
            let _ = write!(out, " {} ", binop_str(*op));
            expr(b, out);
            out.push(')');
        }
        Expr::Call(n, args) => {
            let _ = write!(out, "{n}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
        }
        Expr::IoRead(port) => {
            let _ = write!(out, "__io_read({port})");
        }
    }
}

fn stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(n, e) => {
            let _ = write!(out, "{pad}{n} = ");
            expr(e, out);
            out.push_str(";\n");
        }
        Stmt::StoreIndex(n, i, e) => {
            let _ = write!(out, "{pad}{n}[");
            expr(i, out);
            out.push_str("] = ");
            expr(e, out);
            out.push_str(";\n");
        }
        Stmt::If(c, then, els) => {
            let _ = write!(out, "{pad}if (");
            expr(c, out);
            out.push_str(") {\n");
            for s in then {
                stmt(s, indent + 1, out);
            }
            if els.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in els {
                    stmt(s, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While(c, body) => {
            let _ = write!(out, "{pad}while (");
            expr(c, out);
            out.push_str(") {\n");
            for s in body {
                stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = write!(out, "{pad}return ");
            expr(e, out);
            out.push_str(";\n");
        }
        Stmt::Annot(f, args) => {
            let _ = write!(out, "{pad}__builtin_annotation({f:?}");
            for a in args {
                out.push_str(", ");
                expr(a, out);
            }
            out.push_str(");\n");
        }
        Stmt::IoWrite(port, e) => {
            let _ = write!(out, "{pad}__io_write({port}, ");
            expr(e, out);
            out.push_str(");\n");
        }
        Stmt::CallStmt(n, args) => {
            let _ = write!(out, "{pad}{n}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push_str(");\n");
        }
    }
}

fn global(g: &Global, out: &mut String) {
    match &g.def {
        GlobalDef::ScalarI32(init) => {
            let _ = match init {
                Some(v) => writeln!(out, "int {} = {v};", g.name),
                None => writeln!(out, "int {};", g.name),
            };
        }
        GlobalDef::ScalarF64(init) => {
            let _ = match init {
                Some(v) => writeln!(out, "double {} = {v};", g.name),
                None => writeln!(out, "double {};", g.name),
            };
        }
        GlobalDef::ScalarBool(init) => {
            let _ = match init {
                Some(v) => writeln!(out, "bool {} = {v};", g.name),
                None => writeln!(out, "bool {};", g.name),
            };
        }
        GlobalDef::ArrayI32(vals) => {
            let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "int {}[{}] = {{{}}};",
                g.name,
                vals.len(),
                items.join(", ")
            );
        }
        GlobalDef::ArrayF64(vals) => {
            let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "double {}[{}] = {{{}}};",
                g.name,
                vals.len(),
                items.join(", ")
            );
        }
    }
}

/// Renders one function as C.
pub fn function_to_c(f: &Function) -> String {
    let mut out = String::new();
    let ret = f.ret.map_or("void", ty_name);
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(n, t)| format!("{} {n}", ty_name(*t)))
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
    for (n, t) in &f.locals {
        let _ = writeln!(out, "    {} {n};", ty_name(*t));
    }
    for s in &f.body {
        stmt(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program as a C translation unit.
pub fn program_to_c(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        global(g, &mut out);
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&function_to_c(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn renders_readable_c() {
        let p = Program {
            globals: vec![
                Global {
                    name: "k".into(),
                    def: GlobalDef::ScalarF64(Some(2.5)),
                },
                Global {
                    name: "tab".into(),
                    def: GlobalDef::ArrayI32(vec![1, 2, 3]),
                },
            ],
            functions: vec![Function {
                name: "step".into(),
                params: vec![("x".into(), Ty::F64)],
                ret: Some(Ty::F64),
                locals: vec![("y".into(), Ty::F64)],
                body: vec![
                    Stmt::Annot("0 <= %1".into(), vec![Expr::var("x")]),
                    Stmt::Assign(
                        "y".into(),
                        Expr::binop(Binop::MulF, Expr::var("k"), Expr::var("x")),
                    ),
                    Stmt::If(
                        Expr::binop(Binop::CmpF(Cmp::Lt), Expr::var("y"), Expr::FloatLit(0.0)),
                        vec![Stmt::Assign("y".into(), Expr::FloatLit(0.0))],
                        vec![],
                    ),
                    Stmt::Return(Some(Expr::var("y"))),
                ],
            }],
        };
        let c = program_to_c(&p);
        assert!(c.contains("double k = 2.5;"), "{c}");
        assert!(c.contains("int tab[3] = {1, 2, 3};"), "{c}");
        assert!(c.contains("double step(double x) {"), "{c}");
        assert!(c.contains("__builtin_annotation(\"0 <= %1\", x);"), "{c}");
        assert!(c.contains("y = (k * x);"), "{c}");
        assert!(c.contains("if ((y < 0.0)) {"), "{c}");
        assert!(c.contains("return y;"), "{c}");
    }

    #[test]
    fn renders_control_flow_and_io() {
        let f = Function {
            name: "n".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![
                Stmt::While(Expr::BoolLit(true), vec![Stmt::Return(None)]),
                Stmt::IoWrite(2, Expr::IoRead(1)),
                Stmt::CallStmt("helper".into(), vec![Expr::IntLit(3)]),
            ],
        };
        let c = function_to_c(&f);
        assert!(c.contains("while (true) {"), "{c}");
        assert!(c.contains("__io_write(2, __io_read(1));"), "{c}");
        assert!(c.contains("helper(3);"), "{c}");
    }
}
