//! MiniC — the C-subset source language of the toolchain.
//!
//! MiniC models the C code produced by the qualified automatic code generator
//! of the paper's process (§2.1): scalar `int`/`double`/`bool` variables,
//! global scalars and arrays (lookup tables), structured control flow,
//! non-recursive function calls, hardware-acquisition reads, and CompCert's
//! `__builtin_annotation` special form (§3.4).
//!
//! The crate provides
//!
//! * the abstract syntax ([`ast`]),
//! * a typechecker enforcing the MISRA-like restrictions the flight-control
//!   process assumes — no recursion, statically typed, structured loops only
//!   ([`typeck`]),
//! * a big-step reference interpreter ([`interp`]) whose observable behaviour
//!   (global state, I/O writes and the **annotation trace**) is the
//!   specification every compiler configuration must preserve,
//! * a C-like pretty printer ([`pretty`]) so generated programs can be
//!   inspected as the "C code" of the paper's pipeline, and a parser
//!   ([`parse`]) for the same concrete syntax (round-trip tested).
//!
//! # Example
//!
//! ```
//! use vericomp_minic::ast::*;
//! use vericomp_minic::interp::{Interp, Value};
//!
//! // double gain(double x) { return 2.0 * x; }
//! let f = Function {
//!     name: "gain".into(),
//!     params: vec![("x".into(), Ty::F64)],
//!     ret: Some(Ty::F64),
//!     locals: vec![],
//!     body: vec![Stmt::Return(Some(Expr::binop(
//!         Binop::MulF,
//!         Expr::FloatLit(2.0),
//!         Expr::Var("x".into()),
//!     )))],
//! };
//! let prog = Program { globals: vec![], functions: vec![f] };
//! vericomp_minic::typeck::check(&prog)?;
//! let mut it = Interp::new(&prog);
//! let r = it.call("gain", &[Value::F(21.0)])?;
//! assert_eq!(r, Some(Value::F(42.0)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod interp;
pub mod parse;
pub mod pretty;
pub mod typeck;

pub use ast::{Binop, Cmp, Expr, Function, Global, GlobalDef, Program, Stmt, Ty, Unop};
pub use interp::{Interp, InterpError, TraceEvent, Value};
