//! The MiniC typechecker.
//!
//! Besides ordinary static typing, the checker enforces the structural
//! restrictions the flight-control process relies on (cf. the MISRA-C rules
//! discussed in the same proceedings): no recursion — direct or indirect
//! (rule 16.2), no zero-length arrays, and every name statically resolved.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{Binop, Expr, Function, Program, Stmt, Ty, Unop};

/// Errors reported by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two globals share a name.
    DuplicateGlobal(String),
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A parameter or local is declared twice (or shadows a parameter).
    DuplicateVar {
        /// Enclosing function.
        func: String,
        /// Offending name.
        name: String,
    },
    /// A variable is not in scope.
    UnknownVar {
        /// Enclosing function.
        func: String,
        /// The unresolved name.
        name: String,
    },
    /// A called function does not exist.
    UnknownFunction {
        /// Enclosing function.
        func: String,
        /// The unresolved callee.
        callee: String,
    },
    /// Indexing applied to something that is not a global array.
    NotAnArray {
        /// Enclosing function.
        func: String,
        /// The indexed name.
        name: String,
    },
    /// A global array used as a scalar.
    ArrayAsScalar {
        /// Enclosing function.
        func: String,
        /// The misused name.
        name: String,
    },
    /// An expression has the wrong type.
    Mismatch {
        /// Enclosing function.
        func: String,
        /// Expected type.
        expected: Ty,
        /// Actual type.
        found: Ty,
        /// What was being checked.
        context: &'static str,
    },
    /// A call passes the wrong number of arguments.
    Arity {
        /// Enclosing function.
        func: String,
        /// The callee.
        callee: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        found: usize,
    },
    /// A void function used in expression position.
    VoidInExpr {
        /// Enclosing function.
        func: String,
        /// The callee.
        callee: String,
    },
    /// `return e;` in a void function or `return;` in a non-void one.
    ReturnShape {
        /// Enclosing function.
        func: String,
    },
    /// The call graph contains a cycle (MISRA-C rule 16.2).
    Recursion {
        /// A function on the cycle.
        func: String,
    },
    /// A global array has no elements.
    EmptyArray(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateGlobal(n) => write!(f, "duplicate global `{n}`"),
            TypeError::DuplicateFunction(n) => write!(f, "duplicate function `{n}`"),
            TypeError::DuplicateVar { func, name } => {
                write!(f, "duplicate variable `{name}` in `{func}`")
            }
            TypeError::UnknownVar { func, name } => {
                write!(f, "unknown variable `{name}` in `{func}`")
            }
            TypeError::UnknownFunction { func, callee } => {
                write!(f, "unknown function `{callee}` called from `{func}`")
            }
            TypeError::NotAnArray { func, name } => {
                write!(f, "`{name}` indexed in `{func}` but is not a global array")
            }
            TypeError::ArrayAsScalar { func, name } => {
                write!(f, "array `{name}` used as a scalar in `{func}`")
            }
            TypeError::Mismatch {
                func,
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in `{func}` ({context}): expected {expected:?}, found {found:?}"
            ),
            TypeError::Arity {
                func,
                callee,
                expected,
                found,
            } => write!(
                f,
                "call to `{callee}` in `{func}` passes {found} arguments, expected {expected}"
            ),
            TypeError::VoidInExpr { func, callee } => {
                write!(
                    f,
                    "void function `{callee}` used in an expression in `{func}`"
                )
            }
            TypeError::ReturnShape { func } => {
                write!(
                    f,
                    "return statement shape does not match signature of `{func}`"
                )
            }
            TypeError::Recursion { func } => {
                write!(f, "recursion involving `{func}` (forbidden, MISRA-C 16.2)")
            }
            TypeError::EmptyArray(n) => write!(f, "global array `{n}` has no elements"),
        }
    }
}

impl std::error::Error for TypeError {}

struct Env<'p> {
    prog: &'p Program,
    func: &'p Function,
    vars: BTreeMap<&'p str, Ty>,
}

impl<'p> Env<'p> {
    fn mismatch(&self, expected: Ty, found: Ty, context: &'static str) -> TypeError {
        TypeError::Mismatch {
            func: self.func.name.clone(),
            expected,
            found,
            context,
        }
    }

    fn scalar_var(&self, name: &str) -> Result<Ty, TypeError> {
        if let Some(&ty) = self.vars.get(name) {
            return Ok(ty);
        }
        match self.prog.global(name) {
            Some(g) if g.def.is_array() => Err(TypeError::ArrayAsScalar {
                func: self.func.name.clone(),
                name: name.to_owned(),
            }),
            Some(g) => Ok(g.def.elem_ty()),
            None => Err(TypeError::UnknownVar {
                func: self.func.name.clone(),
                name: name.to_owned(),
            }),
        }
    }

    fn array_elem(&self, name: &str) -> Result<Ty, TypeError> {
        match self.prog.global(name) {
            Some(g) if g.def.is_array() => Ok(g.def.elem_ty()),
            _ => Err(TypeError::NotAnArray {
                func: self.func.name.clone(),
                name: name.to_owned(),
            }),
        }
    }

    fn expr(&self, e: &Expr) -> Result<Ty, TypeError> {
        match e {
            Expr::IntLit(_) => Ok(Ty::I32),
            Expr::FloatLit(_) => Ok(Ty::F64),
            Expr::BoolLit(_) => Ok(Ty::Bool),
            Expr::Var(name) => self.scalar_var(name),
            Expr::Index(name, idx) => {
                let it = self.expr(idx)?;
                if it != Ty::I32 {
                    return Err(self.mismatch(Ty::I32, it, "array index"));
                }
                self.array_elem(name)
            }
            Expr::IoRead(_) => Ok(Ty::F64),
            Expr::Unop(op, a) => {
                let t = self.expr(a)?;
                let (want, out) = match op {
                    Unop::NegI => (Ty::I32, Ty::I32),
                    Unop::NotB => (Ty::Bool, Ty::Bool),
                    Unop::NegF | Unop::AbsF => (Ty::F64, Ty::F64),
                    Unop::I2F => (Ty::I32, Ty::F64),
                    Unop::F2I => (Ty::F64, Ty::I32),
                };
                if t != want {
                    return Err(self.mismatch(want, t, "unary operand"));
                }
                Ok(out)
            }
            Expr::Binop(op, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                let (want, out) = match op {
                    Binop::AddI | Binop::SubI | Binop::MulI | Binop::DivI => (Ty::I32, Ty::I32),
                    Binop::AddF | Binop::SubF | Binop::MulF | Binop::DivF => (Ty::F64, Ty::F64),
                    Binop::CmpI(_) => (Ty::I32, Ty::Bool),
                    Binop::CmpF(_) => (Ty::F64, Ty::Bool),
                    Binop::AndB | Binop::OrB | Binop::XorB => (Ty::Bool, Ty::Bool),
                };
                if ta != want {
                    return Err(self.mismatch(want, ta, "left operand"));
                }
                if tb != want {
                    return Err(self.mismatch(want, tb, "right operand"));
                }
                Ok(out)
            }
            Expr::Call(callee, args) => {
                let ret = self.call(callee, args)?;
                ret.ok_or_else(|| TypeError::VoidInExpr {
                    func: self.func.name.clone(),
                    callee: callee.clone(),
                })
            }
        }
    }

    fn call(&self, callee: &str, args: &[Expr]) -> Result<Option<Ty>, TypeError> {
        let target = self
            .prog
            .function(callee)
            .ok_or_else(|| TypeError::UnknownFunction {
                func: self.func.name.clone(),
                callee: callee.to_owned(),
            })?;
        if target.params.len() != args.len() {
            return Err(TypeError::Arity {
                func: self.func.name.clone(),
                callee: callee.to_owned(),
                expected: target.params.len(),
                found: args.len(),
            });
        }
        for (arg, (_, want)) in args.iter().zip(&target.params) {
            let t = self.expr(arg)?;
            if t != *want {
                return Err(self.mismatch(*want, t, "call argument"));
            }
        }
        Ok(target.ret)
    }

    fn stmts(&self, body: &[Stmt]) -> Result<(), TypeError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&self, s: &Stmt) -> Result<(), TypeError> {
        match s {
            Stmt::Assign(name, e) => {
                let want = self.scalar_var(name)?;
                let t = self.expr(e)?;
                if t != want {
                    return Err(self.mismatch(want, t, "assignment"));
                }
                Ok(())
            }
            Stmt::StoreIndex(name, idx, e) => {
                let it = self.expr(idx)?;
                if it != Ty::I32 {
                    return Err(self.mismatch(Ty::I32, it, "array index"));
                }
                let want = self.array_elem(name)?;
                let t = self.expr(e)?;
                if t != want {
                    return Err(self.mismatch(want, t, "array store"));
                }
                Ok(())
            }
            Stmt::If(c, then, els) => {
                let t = self.expr(c)?;
                if t != Ty::Bool {
                    return Err(self.mismatch(Ty::Bool, t, "if condition"));
                }
                self.stmts(then)?;
                self.stmts(els)
            }
            Stmt::While(c, body) => {
                let t = self.expr(c)?;
                if t != Ty::Bool {
                    return Err(self.mismatch(Ty::Bool, t, "while condition"));
                }
                self.stmts(body)
            }
            Stmt::Return(e) => match (e, self.func.ret) {
                (None, None) => Ok(()),
                (Some(e), Some(want)) => {
                    let t = self.expr(e)?;
                    if t != want {
                        return Err(self.mismatch(want, t, "return value"));
                    }
                    Ok(())
                }
                _ => Err(TypeError::ReturnShape {
                    func: self.func.name.clone(),
                }),
            },
            Stmt::Annot(_, args) => {
                for a in args {
                    self.expr(a)?; // any scalar type is observable
                }
                Ok(())
            }
            Stmt::IoWrite(_, e) => {
                let t = self.expr(e)?;
                if t != Ty::F64 {
                    return Err(self.mismatch(Ty::F64, t, "I/O write"));
                }
                Ok(())
            }
            Stmt::CallStmt(callee, args) => {
                self.call(callee, args)?;
                Ok(())
            }
        }
    }
}

fn callees(body: &[Stmt], acc: &mut BTreeSet<String>) {
    fn in_expr(e: &Expr, acc: &mut BTreeSet<String>) {
        match e {
            Expr::Call(name, args) => {
                acc.insert(name.clone());
                for a in args {
                    in_expr(a, acc);
                }
            }
            Expr::Unop(_, a) => in_expr(a, acc),
            Expr::Binop(_, a, b) => {
                in_expr(a, acc);
                in_expr(b, acc);
            }
            Expr::Index(_, i) => in_expr(i, acc),
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Assign(_, e) | Stmt::IoWrite(_, e) => in_expr(e, acc),
            Stmt::StoreIndex(_, i, e) => {
                in_expr(i, acc);
                in_expr(e, acc);
            }
            Stmt::If(c, a, b) => {
                in_expr(c, acc);
                callees(a, acc);
                callees(b, acc);
            }
            Stmt::While(c, b) => {
                in_expr(c, acc);
                callees(b, acc);
            }
            Stmt::Return(Some(e)) => in_expr(e, acc),
            Stmt::Return(None) => {}
            Stmt::Annot(_, args) => {
                for a in args {
                    in_expr(a, acc);
                }
            }
            Stmt::CallStmt(name, args) => {
                acc.insert(name.clone());
                for a in args {
                    in_expr(a, acc);
                }
            }
        }
    }
}

fn check_no_recursion(prog: &Program) -> Result<(), TypeError> {
    // DFS over the call graph with colors.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = prog
        .functions
        .iter()
        .map(|f| (f.name.as_str(), Color::White))
        .collect();
    let graph: BTreeMap<&str, BTreeSet<String>> = prog
        .functions
        .iter()
        .map(|f| {
            let mut c = BTreeSet::new();
            callees(&f.body, &mut c);
            (f.name.as_str(), c)
        })
        .collect();

    fn visit<'a>(
        name: &'a str,
        graph: &'a BTreeMap<&str, BTreeSet<String>>,
        color: &mut BTreeMap<&'a str, Color>,
    ) -> Result<(), TypeError> {
        match color.get(name).copied() {
            Some(Color::Black) | None => return Ok(()), // unknown callees caught elsewhere
            Some(Color::Grey) => {
                return Err(TypeError::Recursion {
                    func: name.to_owned(),
                })
            }
            Some(Color::White) => {}
        }
        color.insert(name, Color::Grey);
        if let Some(cs) = graph.get(name) {
            for callee in cs {
                if let Some((&key, _)) = graph.get_key_value(callee.as_str()) {
                    visit(key, graph, color)?;
                }
            }
        }
        color.insert(name, Color::Black);
        Ok(())
    }

    let names: Vec<&str> = prog.functions.iter().map(|f| f.name.as_str()).collect();
    for name in names {
        visit(name, &graph, &mut color)?;
    }
    Ok(())
}

/// Typechecks a program.
///
/// # Errors
///
/// The first [`TypeError`] found, in declaration order.
pub fn check(prog: &Program) -> Result<(), TypeError> {
    let mut seen = BTreeSet::new();
    for g in &prog.globals {
        if !seen.insert(g.name.as_str()) {
            return Err(TypeError::DuplicateGlobal(g.name.clone()));
        }
        if g.def.is_array() && g.def.is_empty() {
            return Err(TypeError::EmptyArray(g.name.clone()));
        }
    }
    let mut seen = BTreeSet::new();
    for f in &prog.functions {
        if !seen.insert(f.name.as_str()) {
            return Err(TypeError::DuplicateFunction(f.name.clone()));
        }
    }

    for f in &prog.functions {
        let mut vars: BTreeMap<&str, crate::ast::Ty> = BTreeMap::new();
        for (name, ty) in f.params.iter().chain(&f.locals) {
            if vars.insert(name.as_str(), *ty).is_some() {
                return Err(TypeError::DuplicateVar {
                    func: f.name.clone(),
                    name: name.clone(),
                });
            }
        }
        let env = Env {
            prog,
            func: f,
            vars,
        };
        env.stmts(&f.body)?;
    }

    check_no_recursion(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn func(name: &str, body: Vec<Stmt>) -> Function {
        Function {
            name: name.into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        }
    }

    fn prog_with(f: Function) -> Program {
        Program {
            globals: vec![],
            functions: vec![f],
        }
    }

    #[test]
    fn accepts_well_typed() {
        let mut f = func("f", vec![]);
        f.locals = vec![("x".into(), Ty::F64), ("b".into(), Ty::Bool)];
        f.body = vec![
            Stmt::Assign(
                "x".into(),
                Expr::binop(Binop::AddF, Expr::FloatLit(1.0), Expr::var("x")),
            ),
            Stmt::Assign(
                "b".into(),
                Expr::binop(Binop::CmpF(Cmp::Lt), Expr::var("x"), Expr::FloatLit(2.0)),
            ),
            Stmt::If(Expr::var("b"), vec![Stmt::Return(None)], vec![]),
        ];
        check(&prog_with(f)).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = func("f", vec![]);
        f.locals = vec![("x".into(), Ty::F64)];
        f.body = vec![Stmt::Assign("x".into(), Expr::IntLit(1))];
        assert!(matches!(
            check(&prog_with(f)),
            Err(TypeError::Mismatch {
                expected: Ty::F64,
                found: Ty::I32,
                ..
            })
        ));
    }

    #[test]
    fn rejects_unknown_var() {
        let f = func("f", vec![Stmt::Assign("nope".into(), Expr::IntLit(1))]);
        assert!(matches!(
            check(&prog_with(f)),
            Err(TypeError::UnknownVar { .. })
        ));
    }

    #[test]
    fn rejects_non_bool_condition() {
        let f = func("f", vec![Stmt::While(Expr::IntLit(1), vec![])]);
        assert!(matches!(
            check(&prog_with(f)),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn rejects_direct_recursion() {
        let f = func("f", vec![Stmt::CallStmt("f".into(), vec![])]);
        assert!(matches!(
            check(&prog_with(f)),
            Err(TypeError::Recursion { .. })
        ));
    }

    #[test]
    fn rejects_indirect_recursion() {
        let f = func("f", vec![Stmt::CallStmt("g".into(), vec![])]);
        let g = func("g", vec![Stmt::CallStmt("f".into(), vec![])]);
        let p = Program {
            globals: vec![],
            functions: vec![f, g],
        };
        assert!(matches!(check(&p), Err(TypeError::Recursion { .. })));
    }

    #[test]
    fn accepts_dag_calls() {
        let mut h = func("h", vec![Stmt::Return(Some(Expr::IntLit(3)))]);
        h.ret = Some(Ty::I32);
        let mut f = func("f", vec![]);
        f.locals = vec![("x".into(), Ty::I32)];
        f.body = vec![
            Stmt::Assign("x".into(), Expr::Call("h".into(), vec![])),
            Stmt::Assign(
                "x".into(),
                Expr::binop(Binop::AddI, Expr::Call("h".into(), vec![]), Expr::var("x")),
            ),
        ];
        let p = Program {
            globals: vec![],
            functions: vec![f, h],
        };
        check(&p).unwrap();
    }

    #[test]
    fn rejects_void_in_expression() {
        let g = func("g", vec![]);
        let mut f = func("f", vec![]);
        f.locals = vec![("x".into(), Ty::I32)];
        f.body = vec![Stmt::Assign("x".into(), Expr::Call("g".into(), vec![]))];
        let p = Program {
            globals: vec![],
            functions: vec![f, g],
        };
        assert!(matches!(check(&p), Err(TypeError::VoidInExpr { .. })));
    }

    #[test]
    fn rejects_array_misuse() {
        let p = Program {
            globals: vec![Global {
                name: "t".into(),
                def: GlobalDef::ArrayF64(vec![1.0]),
            }],
            functions: vec![func(
                "f",
                vec![Stmt::Annot("v %1".into(), vec![Expr::var("t")])],
            )],
        };
        assert!(matches!(check(&p), Err(TypeError::ArrayAsScalar { .. })));
    }

    #[test]
    fn rejects_indexing_scalar() {
        let p = Program {
            globals: vec![Global {
                name: "s".into(),
                def: GlobalDef::ScalarF64(None),
            }],
            functions: vec![func(
                "f",
                vec![Stmt::Annot(
                    "v %1".into(),
                    vec![Expr::Index("s".into(), Box::new(Expr::IntLit(0)))],
                )],
            )],
        };
        assert!(matches!(check(&p), Err(TypeError::NotAnArray { .. })));
    }

    #[test]
    fn rejects_empty_array_and_duplicates() {
        let p = Program {
            globals: vec![Global {
                name: "t".into(),
                def: GlobalDef::ArrayI32(vec![]),
            }],
            functions: vec![],
        };
        assert!(matches!(check(&p), Err(TypeError::EmptyArray(_))));
        let p = Program {
            globals: vec![
                Global {
                    name: "x".into(),
                    def: GlobalDef::ScalarI32(None),
                },
                Global {
                    name: "x".into(),
                    def: GlobalDef::ScalarI32(None),
                },
            ],
            functions: vec![],
        };
        assert!(matches!(check(&p), Err(TypeError::DuplicateGlobal(_))));
    }

    #[test]
    fn rejects_bad_arity_and_return_shape() {
        let mut g = func("g", vec![Stmt::Return(Some(Expr::IntLit(1)))]);
        g.params = vec![("a".into(), Ty::I32)];
        g.ret = Some(Ty::I32);
        let f = func("f", vec![Stmt::CallStmt("g".into(), vec![])]);
        let p = Program {
            globals: vec![],
            functions: vec![f, g.clone()],
        };
        assert!(matches!(check(&p), Err(TypeError::Arity { .. })));

        let bad = func("v", vec![Stmt::Return(Some(Expr::IntLit(1)))]);
        assert!(matches!(
            check(&prog_with(bad)),
            Err(TypeError::ReturnShape { .. })
        ));
    }
}
