//! Abstract syntax of MiniC.
//!
//! The language deliberately mirrors what the pattern-based automatic code
//! generator emits (one flat three-address statement per dataflow symbol) but
//! is general enough for hand-written helper functions: nested expressions,
//! `if`/`while`, calls, global arrays.

/// An identifier (variable or function name).
pub type Ident = String;

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer with wrap-around arithmetic.
    I32,
    /// IEEE-754 double.
    F64,
    /// Boolean (represented as a 0/1 machine word).
    Bool,
}

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// The predicate testing the opposite outcome. Note that for floating
    /// comparisons `!(a < b)` is *not* `a >= b` in the presence of NaN; the
    /// negation is only meaningful for total (integer) orders.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// The predicate that holds for `(b, a)` whenever `self` holds for
    /// `(a, b)`.
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// Evaluates the predicate on a three-way comparison outcome; `None`
    /// (IEEE unordered) satisfies only `Ne`.
    pub fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match ord {
            None => self == Cmp::Ne,
            Some(o) => match self {
                Cmp::Eq => o == Equal,
                Cmp::Ne => o != Equal,
                Cmp::Lt => o == Less,
                Cmp::Le => o != Greater,
                Cmp::Gt => o == Greater,
                Cmp::Ge => o != Less,
            },
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Integer negation.
    NegI,
    /// Boolean negation.
    NotB,
    /// Floating negation.
    NegF,
    /// Floating absolute value.
    AbsF,
    /// `int` → `double` conversion.
    I2F,
    /// `double` → `int` conversion (truncating, saturating, NaN → `i32::MIN`).
    F2I,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    /// Integer addition (wrapping).
    AddI,
    /// Integer subtraction (wrapping).
    SubI,
    /// Integer multiplication (wrapping).
    MulI,
    /// Integer division (`x/0 == 0`, `MIN/-1 == MIN` — the machine's `divw`).
    DivI,
    /// Floating addition.
    AddF,
    /// Floating subtraction.
    SubF,
    /// Floating multiplication.
    MulF,
    /// Floating division.
    DivF,
    /// Integer comparison producing a boolean.
    CmpI(Cmp),
    /// Floating comparison producing a boolean (IEEE semantics on NaN).
    CmpF(Cmp),
    /// Boolean conjunction (non-short-circuit).
    AndB,
    /// Boolean disjunction (non-short-circuit).
    OrB,
    /// Boolean exclusive or.
    XorB,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i32),
    /// Double literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable read (local, parameter or global scalar).
    Var(Ident),
    /// Read of element `index` of a global array.
    Index(Ident, Box<Expr>),
    /// Unary operation.
    Unop(Unop, Box<Expr>),
    /// Binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Call of a value-returning function.
    Call(Ident, Vec<Expr>),
    /// Hardware signal acquisition: reads the `double` at I/O port `n`
    /// (uncached, long latency on the target).
    IoRead(u32),
}

impl Expr {
    /// Convenience constructor for binary operations.
    pub fn binop(op: Binop, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for unary operations.
    pub fn unop(op: Unop, e: Expr) -> Expr {
        Expr::Unop(op, Box::new(e))
    }

    /// Convenience constructor for variable reads.
    pub fn var(name: impl Into<Ident>) -> Expr {
        Expr::Var(name.into())
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = e;` — assignment to a local, parameter or global scalar.
    Assign(Ident, Expr),
    /// `a[i] = e;` — store into a global array.
    StoreIndex(Ident, Expr, Expr),
    /// `if (c) { … } else { … }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }`.
    While(Expr, Vec<Stmt>),
    /// `return;` / `return e;`.
    Return(Option<Expr>),
    /// `__builtin_annotation("fmt", e1, e2, …);` — CompCert's pro-forma
    /// effect (paper §3.4). Semantically observes the argument values in
    /// order; compiles to a zero-cost marker carrying final locations.
    Annot(String, Vec<Expr>),
    /// Actuator command: writes a `double` to I/O port `n`.
    IoWrite(u32, Expr),
    /// Call of a `void` (or ignored-result) function for its effects.
    CallStmt(Ident, Vec<Expr>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalDef {
    /// A scalar with an optional initializer (zero otherwise).
    ScalarI32(Option<i32>),
    /// A scalar double with an optional initializer.
    ScalarF64(Option<f64>),
    /// A boolean scalar with an optional initializer.
    ScalarBool(Option<bool>),
    /// An integer array with explicit initializers (length = `len()`).
    ArrayI32(Vec<i32>),
    /// A double array with explicit initializers (lookup tables).
    ArrayF64(Vec<f64>),
}

impl GlobalDef {
    /// The scalar type of this global, or of its elements for arrays.
    pub fn elem_ty(&self) -> Ty {
        match self {
            GlobalDef::ScalarI32(_) | GlobalDef::ArrayI32(_) => Ty::I32,
            GlobalDef::ScalarF64(_) | GlobalDef::ArrayF64(_) => Ty::F64,
            GlobalDef::ScalarBool(_) => Ty::Bool,
        }
    }

    /// Whether this global is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, GlobalDef::ArrayI32(_) | GlobalDef::ArrayF64(_))
    }

    /// Number of elements (1 for scalars).
    pub fn len(&self) -> usize {
        match self {
            GlobalDef::ArrayI32(v) => v.len(),
            GlobalDef::ArrayF64(v) => v.len(),
            _ => 1,
        }
    }

    /// Whether the global has zero elements (only possible for arrays, and
    /// rejected by the typechecker).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: Ident,
    /// Shape and initializer.
    pub def: GlobalDef,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Ident,
    /// Parameters, in order.
    pub params: Vec<(Ident, Ty)>,
    /// Return type (`None` = void).
    pub ret: Option<Ty>,
    /// Local variables.
    pub locals: Vec<(Ident, Ty)>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A complete MiniC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_ieee_unordered() {
        assert!(Cmp::Ne.eval(None));
        assert!(!Cmp::Eq.eval(None));
        assert!(!Cmp::Le.eval(None));
        assert!(Cmp::Le.eval(Some(std::cmp::Ordering::Equal)));
        assert!(Cmp::Gt.eval(Some(std::cmp::Ordering::Greater)));
    }

    #[test]
    fn global_shapes() {
        let a = GlobalDef::ArrayF64(vec![1.0, 2.0]);
        assert!(a.is_array());
        assert_eq!(a.len(), 2);
        assert_eq!(a.elem_ty(), Ty::F64);
        let s = GlobalDef::ScalarBool(Some(true));
        assert!(!s.is_array());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            globals: vec![Global {
                name: "x".into(),
                def: GlobalDef::ScalarI32(None),
            }],
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                ret: None,
                locals: vec![],
                body: vec![],
            }],
        };
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
        assert!(p.global("x").is_some());
    }
}
