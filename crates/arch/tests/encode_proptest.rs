//! Property test: every constructible instruction round-trips through the
//! binary encoding at arbitrary (word-aligned) addresses.

use proptest::prelude::*;
use vericomp_arch::encode::{decode, encode};
use vericomp_arch::inst::{Cond, Inst};
use vericomp_arch::reg::{Cr, Fpr, Gpr};

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::new)
}

fn fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::new)
}

fn cr() -> impl Strategy<Value = Cr> {
    (0u8..8).prop_map(Cr::new)
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

/// A random instruction together with an address at which its displacement
/// fields are encodable.
fn inst_at() -> impl Strategy<Value = (Inst, u32)> {
    let addr = (0x0010_0000u32..0x0020_0000).prop_map(|a| a & !3);
    let simple = prop_oneof![
        (gpr(), gpr(), any::<i16>()).prop_map(|(rd, ra, imm)| Inst::Addi { rd, ra, imm }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rd, ra, imm)| Inst::Addis { rd, ra, imm }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rd, ra, imm)| Inst::Mulli { rd, ra, imm }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, ra, imm)| Inst::Ori { rd, ra, imm }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, ra, imm)| Inst::Andi { rd, ra, imm }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, ra, imm)| Inst::Xori { rd, ra, imm }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Add { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Subf { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Mullw { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Divw { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::And { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Or { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Xor { rd, ra, rb }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Slw { rd, ra, rb }),
        (gpr(), gpr(), 0u8..32).prop_map(|(rd, ra, sh)| Inst::Srawi { rd, ra, sh }),
        (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32).prop_map(|(rd, ra, sh, mb, me)| Inst::Rlwinm {
            rd,
            ra,
            sh,
            mb,
            me
        }),
        (gpr(), any::<i16>(), gpr()).prop_map(|(rd, d, ra)| Inst::Lwz { rd, d, ra }),
        (gpr(), any::<i16>(), gpr()).prop_map(|(rs, d, ra)| Inst::Stw { rs, d, ra }),
        (gpr(), any::<i16>(), gpr()).prop_map(|(rs, d, ra)| Inst::Stwu { rs, d, ra }),
        (fpr(), any::<i16>(), gpr()).prop_map(|(fd, d, ra)| Inst::Lfd { fd, d, ra }),
        (fpr(), any::<i16>(), gpr()).prop_map(|(fs, d, ra)| Inst::Stfd { fs, d, ra }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, ra, rb)| Inst::Lwzx { rd, ra, rb }),
        (fpr(), gpr(), gpr()).prop_map(|(fd, ra, rb)| Inst::Lfdx { fd, ra, rb }),
        (fpr(), fpr(), fpr()).prop_map(|(fd, fa, fb)| Inst::Fadd { fd, fa, fb }),
        (fpr(), fpr(), fpr()).prop_map(|(fd, fa, fb)| Inst::Fsub { fd, fa, fb }),
        (fpr(), fpr(), fpr()).prop_map(|(fd, fa, fc)| Inst::Fmul { fd, fa, fc }),
        (fpr(), fpr(), fpr()).prop_map(|(fd, fa, fb)| Inst::Fdiv { fd, fa, fb }),
        (fpr(), fpr(), fpr(), fpr()).prop_map(|(fd, fa, fc, fb)| Inst::Fmadd { fd, fa, fc, fb }),
        (fpr(), fpr()).prop_map(|(fd, fa)| Inst::Fneg { fd, fa }),
        (fpr(), fpr()).prop_map(|(fd, fa)| Inst::Fabs { fd, fa }),
        (fpr(), fpr()).prop_map(|(fd, fa)| Inst::Fmr { fd, fa }),
        (cr(), gpr(), gpr()).prop_map(|(cr, ra, rb)| Inst::Cmpw { cr, ra, rb }),
        (cr(), gpr(), any::<i16>()).prop_map(|(cr, ra, imm)| Inst::Cmpwi { cr, ra, imm }),
        (cr(), fpr(), fpr()).prop_map(|(cr, fa, fb)| Inst::Fcmpu { cr, fa, fb }),
        (fpr(), gpr()).prop_map(|(fd, ra)| Inst::Itof { fd, ra }),
        (gpr(), fpr()).prop_map(|(rd, fa)| Inst::Ftoi { rd, fa }),
        any::<u16>().prop_map(|id| Inst::Annot { id }),
        gpr().prop_map(|rd| Inst::Mflr { rd }),
        gpr().prop_map(|rs| Inst::Mtlr { rs }),
        Just(Inst::Blr),
        Just(Inst::Nop),
    ];
    (addr, simple, -0x1000i32..0x1000, cond(), cr()).prop_map(|(addr, base, rel, cond, cr)| {
        // overwrite branch shapes with in-range targets tied to addr
        let target = addr.wrapping_add((rel & !3) as u32);
        let inst = match base {
            Inst::Nop if rel % 5 == 0 => Inst::B { target },
            Inst::Nop if rel % 5 == 1 => Inst::Bl { target },
            Inst::Nop if rel % 5 == 2 => Inst::Bc { cond, cr, target },
            other => other,
        };
        (inst, addr)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn encode_decode_roundtrip((inst, addr) in inst_at()) {
        // the one documented canonicalization
        prop_assume!(inst != Inst::Ori { rd: Gpr::R0, ra: Gpr::R0, imm: 0 });
        let word = encode(&inst, addr);
        let back = decode(word, addr).expect("decodable");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>(), addr in (0u32..0x1000_0000).prop_map(|a| a & !3)) {
        let _ = decode(word, addr);
    }
}
