//! Property test: every constructible instruction round-trips through the
//! binary encoding at arbitrary (word-aligned) addresses.

use vericomp_arch::encode::{decode, encode};
use vericomp_arch::inst::{Cond, Inst};
use vericomp_arch::reg::{Cr, Fpr, Gpr};
use vericomp_testkit::prop::{check, gens, Config, Gen};
use vericomp_testkit::rng::Rng;

fn gpr(rng: &mut Rng) -> Gpr {
    Gpr::new(rng.gen_range(0u8..32))
}

fn fpr(rng: &mut Rng) -> Fpr {
    Fpr::new(rng.gen_range(0u8..32))
}

fn cr(rng: &mut Rng) -> Cr {
    Cr::new(rng.gen_range(0u8..8))
}

fn cond(rng: &mut Rng) -> Cond {
    match rng.gen_range(0u8..6) {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        _ => Cond::Ge,
    }
}

fn i16_(rng: &mut Rng) -> i16 {
    rng.next_u64() as i16
}

fn u16_(rng: &mut Rng) -> u16 {
    rng.next_u64() as u16
}

/// One random instruction drawn uniformly from every constructible shape.
fn inst(rng: &mut Rng) -> Inst {
    match rng.gen_range(0u8..40) {
        0 => Inst::Addi {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: i16_(rng),
        },
        1 => Inst::Addis {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: i16_(rng),
        },
        2 => Inst::Mulli {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: i16_(rng),
        },
        3 => Inst::Ori {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: u16_(rng),
        },
        4 => Inst::Andi {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: u16_(rng),
        },
        5 => Inst::Xori {
            rd: gpr(rng),
            ra: gpr(rng),
            imm: u16_(rng),
        },
        6 => Inst::Add {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        7 => Inst::Subf {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        8 => Inst::Mullw {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        9 => Inst::Divw {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        10 => Inst::And {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        11 => Inst::Or {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        12 => Inst::Xor {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        13 => Inst::Slw {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        14 => Inst::Srawi {
            rd: gpr(rng),
            ra: gpr(rng),
            sh: rng.gen_range(0u8..32),
        },
        15 => Inst::Rlwinm {
            rd: gpr(rng),
            ra: gpr(rng),
            sh: rng.gen_range(0u8..32),
            mb: rng.gen_range(0u8..32),
            me: rng.gen_range(0u8..32),
        },
        16 => Inst::Lwz {
            rd: gpr(rng),
            d: i16_(rng),
            ra: gpr(rng),
        },
        17 => Inst::Stw {
            rs: gpr(rng),
            d: i16_(rng),
            ra: gpr(rng),
        },
        18 => Inst::Stwu {
            rs: gpr(rng),
            d: i16_(rng),
            ra: gpr(rng),
        },
        19 => Inst::Lfd {
            fd: fpr(rng),
            d: i16_(rng),
            ra: gpr(rng),
        },
        20 => Inst::Stfd {
            fs: fpr(rng),
            d: i16_(rng),
            ra: gpr(rng),
        },
        21 => Inst::Lwzx {
            rd: gpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        22 => Inst::Lfdx {
            fd: fpr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        23 => Inst::Fadd {
            fd: fpr(rng),
            fa: fpr(rng),
            fb: fpr(rng),
        },
        24 => Inst::Fsub {
            fd: fpr(rng),
            fa: fpr(rng),
            fb: fpr(rng),
        },
        25 => Inst::Fmul {
            fd: fpr(rng),
            fa: fpr(rng),
            fc: fpr(rng),
        },
        26 => Inst::Fdiv {
            fd: fpr(rng),
            fa: fpr(rng),
            fb: fpr(rng),
        },
        27 => Inst::Fmadd {
            fd: fpr(rng),
            fa: fpr(rng),
            fc: fpr(rng),
            fb: fpr(rng),
        },
        28 => Inst::Fneg {
            fd: fpr(rng),
            fa: fpr(rng),
        },
        29 => Inst::Fabs {
            fd: fpr(rng),
            fa: fpr(rng),
        },
        30 => Inst::Fmr {
            fd: fpr(rng),
            fa: fpr(rng),
        },
        31 => Inst::Cmpw {
            cr: cr(rng),
            ra: gpr(rng),
            rb: gpr(rng),
        },
        32 => Inst::Cmpwi {
            cr: cr(rng),
            ra: gpr(rng),
            imm: i16_(rng),
        },
        33 => Inst::Fcmpu {
            cr: cr(rng),
            fa: fpr(rng),
            fb: fpr(rng),
        },
        34 => Inst::Itof {
            fd: fpr(rng),
            ra: gpr(rng),
        },
        35 => Inst::Ftoi {
            rd: gpr(rng),
            fa: fpr(rng),
        },
        36 => Inst::Annot { id: u16_(rng) },
        37 => Inst::Mflr { rd: gpr(rng) },
        38 => Inst::Mtlr { rs: gpr(rng) },
        _ => Inst::Nop,
    }
}

/// A random instruction together with an address at which its displacement
/// fields are encodable. Branch shapes are derived from `Nop` with
/// in-range targets tied to the address, mirroring how the compiler only
/// ever emits resolvable branches.
fn inst_at() -> Gen<(Inst, u32)> {
    Gen::new(|rng| {
        let addr = rng.gen_range(0x0010_0000u32..0x0020_0000) & !3;
        let base = inst(rng);
        let rel: i32 = rng.gen_range(-0x1000i32..0x1000);
        let target = addr.wrapping_add((rel & !3) as u32);
        let inst = match base {
            Inst::Nop if rel % 5 == 0 => Inst::B { target },
            Inst::Nop if rel % 5 == 1 => Inst::Bl { target },
            Inst::Nop if rel % 5 == 2 => Inst::Bc {
                cond: cond(rng),
                cr: cr(rng),
                target,
            },
            other => other,
        };
        (inst, addr)
    })
}

#[test]
fn encode_decode_roundtrip() {
    check(
        "encode_decode_roundtrip",
        &Config::with_cases(2000),
        &inst_at(),
        |(inst, addr)| {
            // the one documented canonicalization
            if *inst
                == (Inst::Ori {
                    rd: Gpr::R0,
                    ra: Gpr::R0,
                    imm: 0,
                })
            {
                return Ok(());
            }
            let word = encode(inst, *addr);
            let back = decode(word, *addr).map_err(|e| format!("undecodable: {e:?}"))?;
            if back == *inst {
                Ok(())
            } else {
                Err(format!("decoded {back:?} != encoded {inst:?}"))
            }
        },
    );
}

#[test]
fn decode_never_panics() {
    let words = gens::pair(
        gens::any_u32(),
        gens::u32_range(0, 0x1000_0000).map(|a| a & !3),
    );
    check(
        "decode_never_panics",
        &Config::with_cases(2000),
        &words,
        |&(word, addr)| {
            let _ = decode(word, addr);
            Ok(())
        },
    );
}
