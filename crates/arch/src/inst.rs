//! The instruction set: a subset of the 32-bit PowerPC ISA as implemented by
//! the MPC755, plus three implementation-defined extension instructions
//! (`itof`, `ftoi`, `annot`) documented in `DESIGN.md`.
//!
//! Branch targets are stored as *resolved absolute byte addresses*; the
//! [`crate::encode`] module converts them to/from the PC-relative displacement
//! fields of the binary encoding.

use std::fmt;

use crate::reg::{Cr, Fpr, Gpr};

/// A branch condition, evaluated against a condition-register field that was
/// set by `cmpw`, `cmpwi` or `fcmpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Cond {
    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// The condition that holds for `b ? a` whenever `self` holds for `a ? b`.
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
        }
    }

    /// Evaluates the condition on a three-way comparison outcome.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Cond::Eq => ord == Equal,
            Cond::Ne => ord != Equal,
            Cond::Lt => ord == Less,
            Cond::Le => ord != Greater,
            Cond::Gt => ord == Greater,
            Cond::Ge => ord != Less,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Any architectural register, for def/use reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A general-purpose register.
    G(Gpr),
    /// A floating-point register.
    F(Fpr),
    /// A condition-register field.
    C(Cr),
    /// The link register.
    Lr,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::G(r) => r.fmt(f),
            Reg::F(r) => r.fmt(f),
            Reg::C(r) => r.fmt(f),
            Reg::Lr => f.write_str("lr"),
        }
    }
}

/// The execution unit an instruction dispatches to.
///
/// The MPC755 dispatches up to two instructions per cycle to distinct units,
/// with two simple integer units available (`Iu` instructions may pair with
/// each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Simple integer unit (two instances: IU1, IU2).
    Iu,
    /// Multi-cycle integer unit (multiply, divide; one instance).
    Mci,
    /// Floating-point unit.
    Fpu,
    /// Load/store unit.
    Lsu,
    /// Branch processing unit.
    Bpu,
    /// No unit (annotation markers consume no resources).
    None,
}

/// Kind of data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccess {
    /// A load of `bytes` bytes.
    Load {
        /// Access width in bytes (4 or 8).
        bytes: u8,
    },
    /// A store of `bytes` bytes.
    Store {
        /// Access width in bytes (4 or 8).
        bytes: u8,
    },
}

impl MemAccess {
    /// Whether this access reads from memory.
    pub fn is_load(self) -> bool {
        matches!(self, MemAccess::Load { .. })
    }
}

/// Control-flow effect of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlFlow {
    /// Sequential fall-through.
    Fallthrough,
    /// Unconditional jump to an absolute address.
    Jump(u32),
    /// Conditional branch: taken target (falls through otherwise).
    CondBranch(u32),
    /// Function call (branch and link).
    Call(u32),
    /// Return (branch to LR).
    Return,
}

/// A machine instruction.
///
/// Field conventions follow the PowerPC UISA: `rd`/`fd` destination,
/// `ra`/`rb`/`fa`/`fb`/`fc` sources, `rs`/`fs` store sources, `d` signed
/// 16-bit displacement, `imm` immediate. In `addi`, `addis` and all
/// displacement-form memory instructions, an `ra` of `r0` reads as literal
/// zero (the PowerPC convention), not as the contents of `r0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the PowerPC UISA, documented above
pub enum Inst {
    // ---- integer immediate (D-form) ----
    /// `rd = (ra|0) + imm`
    Addi { rd: Gpr, ra: Gpr, imm: i16 },
    /// `rd = (ra|0) + (imm << 16)`
    Addis { rd: Gpr, ra: Gpr, imm: i16 },
    /// `rd = ra * imm` (low 32 bits)
    Mulli { rd: Gpr, ra: Gpr, imm: i16 },
    /// `rd = ra & imm` (zero-extended immediate)
    Andi { rd: Gpr, ra: Gpr, imm: u16 },
    /// `rd = ra | imm` (zero-extended immediate)
    Ori { rd: Gpr, ra: Gpr, imm: u16 },
    /// `rd = ra ^ imm` (zero-extended immediate)
    Xori { rd: Gpr, ra: Gpr, imm: u16 },

    // ---- integer register (X/XO-form) ----
    /// `rd = ra + rb`
    Add { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = rb - ra` (PowerPC subtract-from)
    Subf { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra * rb` (low 32 bits)
    Mullw { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra / rb` (signed; division by zero yields 0, overflow yields `i32::MIN`)
    Divw { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra / rb` (unsigned; division by zero yields 0)
    Divwu { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = -ra`
    Neg { rd: Gpr, ra: Gpr },
    /// `rd = ra & rb`
    And { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra | rb`
    Or { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra ^ rb`
    Xor { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra << (rb & 63)` (0 if shift ≥ 32)
    Slw { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra >> (rb & 63)` logical (0 if shift ≥ 32)
    Srw { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra >> (rb & 63)` arithmetic
    Sraw { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `rd = ra >> sh` arithmetic, immediate shift
    Srawi { rd: Gpr, ra: Gpr, sh: u8 },
    /// `rd = rotl32(ra, sh) & mask(mb, me)` — rotate-left-then-mask
    Rlwinm {
        rd: Gpr,
        ra: Gpr,
        sh: u8,
        mb: u8,
        me: u8,
    },

    // ---- loads and stores ----
    /// `rd = mem32[(ra|0) + d]`
    Lwz { rd: Gpr, d: i16, ra: Gpr },
    /// `mem32[(ra|0) + d] = rs`
    Stw { rs: Gpr, d: i16, ra: Gpr },
    /// `mem32[(ra|0) + d] = rs; ra = ra + d` (stack-frame push)
    Stwu { rs: Gpr, d: i16, ra: Gpr },
    /// `fd = mem64[(ra|0) + d]`
    Lfd { fd: Fpr, d: i16, ra: Gpr },
    /// `mem64[(ra|0) + d] = fs`
    Stfd { fs: Fpr, d: i16, ra: Gpr },
    /// `rd = mem32[ra + rb]`
    Lwzx { rd: Gpr, ra: Gpr, rb: Gpr },
    /// `mem32[ra + rb] = rs`
    Stwx { rs: Gpr, ra: Gpr, rb: Gpr },
    /// `fd = mem64[ra + rb]`
    Lfdx { fd: Fpr, ra: Gpr, rb: Gpr },
    /// `mem64[ra + rb] = fs`
    Stfdx { fs: Fpr, ra: Gpr, rb: Gpr },

    // ---- floating point (double precision) ----
    /// `fd = fa + fb`
    Fadd { fd: Fpr, fa: Fpr, fb: Fpr },
    /// `fd = fa - fb`
    Fsub { fd: Fpr, fa: Fpr, fb: Fpr },
    /// `fd = fa * fc`
    Fmul { fd: Fpr, fa: Fpr, fc: Fpr },
    /// `fd = fa / fb`
    Fdiv { fd: Fpr, fa: Fpr, fb: Fpr },
    /// `fd = fa * fc + fb` (fused multiply-add)
    Fmadd { fd: Fpr, fa: Fpr, fc: Fpr, fb: Fpr },
    /// `fd = -fa`
    Fneg { fd: Fpr, fa: Fpr },
    /// `fd = |fa|`
    Fabs { fd: Fpr, fa: Fpr },
    /// `fd = fa` (register move)
    Fmr { fd: Fpr, fa: Fpr },

    // ---- comparisons ----
    /// `cr = compare_signed(ra, rb)`
    Cmpw { cr: Cr, ra: Gpr, rb: Gpr },
    /// `cr = compare_signed(ra, imm)`
    Cmpwi { cr: Cr, ra: Gpr, imm: i16 },
    /// `cr = compare_unordered(fa, fb)` (any NaN ⇒ unordered, no condition holds except `ne`)
    Fcmpu { cr: Cr, fa: Fpr, fb: Fpr },

    // ---- control flow (targets are resolved absolute addresses) ----
    /// Unconditional branch.
    B { target: u32 },
    /// Conditional branch on `cond` in `cr`.
    Bc { cond: Cond, cr: Cr, target: u32 },
    /// Branch and link (function call); sets LR to the return address.
    Bl { target: u32 },
    /// Branch to LR (function return).
    Blr,
    /// `rd = LR`
    Mflr { rd: Gpr },
    /// `LR = rs`
    Mtlr { rs: Gpr },

    // ---- implementation-defined extensions ----
    /// `fd = (f64)(i32)ra` — int-to-double conversion.
    ///
    /// The real MPC755 performs this through a store/load sequence; we model
    /// it as one multi-cycle instruction (see `DESIGN.md`).
    Itof { fd: Fpr, ra: Gpr },
    /// `rd = sat_trunc(fa)` — double-to-int, truncating, saturating
    /// (NaN yields `i32::MIN`, like `fctiwz`).
    Ftoi { rd: Gpr, fa: Fpr },
    /// Annotation marker: a pro-forma effect carrying the id of an entry in
    /// the program's annotation table. Consumes no pipeline resources and no
    /// time; semantically it "observes" its arguments' locations.
    Annot { id: u16 },
    /// No operation (`ori r0, r0, 0` in the real encoding space).
    Nop,
}

impl Inst {
    /// `li rd, imm` — load a sign-extended 16-bit immediate (encoded as
    /// `addi rd, r0, imm`).
    pub fn li(rd: Gpr, imm: i16) -> Inst {
        Inst::Addi {
            rd,
            ra: Gpr::R0,
            imm,
        }
    }

    /// `lis rd, imm` — load a shifted immediate (encoded as `addis rd, r0, imm`).
    pub fn lis(rd: Gpr, imm: i16) -> Inst {
        Inst::Addis {
            rd,
            ra: Gpr::R0,
            imm,
        }
    }

    /// `slwi rd, ra, sh` — shift left by an immediate, as the canonical
    /// `rlwinm` form.
    ///
    /// # Panics
    ///
    /// Panics if `sh >= 32`.
    pub fn slwi(rd: Gpr, ra: Gpr, sh: u8) -> Inst {
        assert!(sh < 32, "shift amount out of range: {sh}");
        Inst::Rlwinm {
            rd,
            ra,
            sh,
            mb: 0,
            me: 31 - sh,
        }
    }

    /// `srwi rd, ra, sh` — logical shift right by an immediate, as the
    /// canonical `rlwinm` form.
    ///
    /// # Panics
    ///
    /// Panics if `sh == 0 || sh >= 32` (PowerPC encodes `srwi 0` as `mr`).
    pub fn srwi(rd: Gpr, ra: Gpr, sh: u8) -> Inst {
        assert!(sh > 0 && sh < 32, "shift amount out of range: {sh}");
        Inst::Rlwinm {
            rd,
            ra,
            sh: 32 - sh,
            mb: sh,
            me: 31,
        }
    }

    /// `mr rd, ra` — register move (encoded as `or rd, ra, ra`).
    pub fn mr(rd: Gpr, ra: Gpr) -> Inst {
        Inst::Or { rd, ra, rb: ra }
    }

    /// The execution unit this instruction dispatches to.
    pub fn unit(&self) -> Unit {
        use Inst::*;
        match self {
            Addi { .. }
            | Addis { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Add { .. }
            | Subf { .. }
            | Neg { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Slw { .. }
            | Srw { .. }
            | Sraw { .. }
            | Srawi { .. }
            | Rlwinm { .. }
            | Cmpw { .. }
            | Cmpwi { .. }
            | Mflr { .. }
            | Mtlr { .. }
            | Nop => Unit::Iu,
            Mulli { .. }
            | Mullw { .. }
            | Divw { .. }
            | Divwu { .. }
            | Itof { .. }
            | Ftoi { .. } => Unit::Mci,
            Fadd { .. }
            | Fsub { .. }
            | Fmul { .. }
            | Fdiv { .. }
            | Fmadd { .. }
            | Fneg { .. }
            | Fabs { .. }
            | Fmr { .. }
            | Fcmpu { .. } => Unit::Fpu,
            Lwz { .. }
            | Stw { .. }
            | Stwu { .. }
            | Lfd { .. }
            | Stfd { .. }
            | Lwzx { .. }
            | Stwx { .. }
            | Lfdx { .. }
            | Stfdx { .. } => Unit::Lsu,
            B { .. } | Bc { .. } | Bl { .. } | Blr => Unit::Bpu,
            Annot { .. } => Unit::None,
        }
    }

    /// The registers this instruction reads.
    ///
    /// `r0`-as-zero operands of `addi`/`addis` and displacement-form memory
    /// instructions are *not* reported as uses.
    pub fn uses(&self) -> Vec<Reg> {
        let (buf, n) = self.uses_array();
        buf[..n as usize].to_vec()
    }

    /// [`Inst::uses`] without the allocation: an inline buffer and the
    /// number of registers filled in (at most 3; padding is arbitrary).
    pub fn uses_array(&self) -> ([Reg; 3], u8) {
        use Inst::*;
        const PAD: Reg = Reg::Lr;
        let none = ([PAD, PAD, PAD], 0);
        let one = |a: Reg| ([a, PAD, PAD], 1);
        let two = |a: Reg, b: Reg| ([a, b, PAD], 2);
        let three = |a: Reg, b: Reg, c: Reg| ([a, b, c], 3);
        let base = |ra: Gpr| {
            if ra == Gpr::R0 {
                none
            } else {
                one(Reg::G(ra))
            }
        };
        match *self {
            Addi { ra, .. } | Addis { ra, .. } => base(ra),
            Mulli { ra, .. }
            | Andi { ra, .. }
            | Ori { ra, .. }
            | Xori { ra, .. }
            | Neg { ra, .. }
            | Srawi { ra, .. }
            | Rlwinm { ra, .. } => one(Reg::G(ra)),
            Add { ra, rb, .. }
            | Subf { ra, rb, .. }
            | Mullw { ra, rb, .. }
            | Divw { ra, rb, .. }
            | Divwu { ra, rb, .. }
            | And { ra, rb, .. }
            | Or { ra, rb, .. }
            | Xor { ra, rb, .. }
            | Slw { ra, rb, .. }
            | Srw { ra, rb, .. }
            | Sraw { ra, rb, .. } => {
                if ra == rb {
                    one(Reg::G(ra))
                } else {
                    two(Reg::G(ra), Reg::G(rb))
                }
            }
            Lwz { ra, .. } | Lfd { ra, .. } => base(ra),
            Stw { rs, ra, .. } | Stwu { rs, ra, .. } => {
                if ra == Gpr::R0 {
                    one(Reg::G(rs))
                } else {
                    two(Reg::G(rs), Reg::G(ra))
                }
            }
            Stfd { fs, ra, .. } => {
                if ra == Gpr::R0 {
                    one(Reg::F(fs))
                } else {
                    two(Reg::F(fs), Reg::G(ra))
                }
            }
            Lwzx { ra, rb, .. } | Lfdx { ra, rb, .. } => two(Reg::G(ra), Reg::G(rb)),
            Stwx { rs, ra, rb } => three(Reg::G(rs), Reg::G(ra), Reg::G(rb)),
            Stfdx { fs, ra, rb } => three(Reg::F(fs), Reg::G(ra), Reg::G(rb)),
            Fadd { fa, fb, .. } | Fsub { fa, fb, .. } | Fdiv { fa, fb, .. } => {
                two(Reg::F(fa), Reg::F(fb))
            }
            Fmul { fa, fc, .. } => two(Reg::F(fa), Reg::F(fc)),
            Fmadd { fa, fc, fb, .. } => three(Reg::F(fa), Reg::F(fc), Reg::F(fb)),
            Fneg { fa, .. } | Fabs { fa, .. } | Fmr { fa, .. } => one(Reg::F(fa)),
            Cmpw { ra, rb, .. } => two(Reg::G(ra), Reg::G(rb)),
            Cmpwi { ra, .. } => one(Reg::G(ra)),
            Fcmpu { fa, fb, .. } => two(Reg::F(fa), Reg::F(fb)),
            B { .. } | Bl { .. } | Nop | Annot { .. } | Mflr { .. } => none,
            Bc { cr, .. } => one(Reg::C(cr)),
            Blr => one(Reg::Lr),
            Mtlr { rs } => one(Reg::G(rs)),
            Itof { ra, .. } => one(Reg::G(ra)),
            Ftoi { fa, .. } => one(Reg::F(fa)),
        }
    }

    /// The registers this instruction writes.
    pub fn defs(&self) -> Vec<Reg> {
        self.def().into_iter().collect()
    }

    /// The single register this instruction writes, if any (no modeled
    /// instruction writes more than one).
    pub fn def(&self) -> Option<Reg> {
        use Inst::*;
        match *self {
            Addi { rd, .. }
            | Addis { rd, .. }
            | Mulli { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Add { rd, .. }
            | Subf { rd, .. }
            | Mullw { rd, .. }
            | Divw { rd, .. }
            | Divwu { rd, .. }
            | Neg { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Slw { rd, .. }
            | Srw { rd, .. }
            | Sraw { rd, .. }
            | Srawi { rd, .. }
            | Rlwinm { rd, .. }
            | Lwz { rd, .. }
            | Lwzx { rd, .. }
            | Mflr { rd }
            | Ftoi { rd, .. } => Some(Reg::G(rd)),
            Lfd { fd, .. }
            | Lfdx { fd, .. }
            | Fadd { fd, .. }
            | Fsub { fd, .. }
            | Fmul { fd, .. }
            | Fdiv { fd, .. }
            | Fmadd { fd, .. }
            | Fneg { fd, .. }
            | Fabs { fd, .. }
            | Fmr { fd, .. }
            | Itof { fd, .. } => Some(Reg::F(fd)),
            Stwu { ra, .. } => Some(Reg::G(ra)),
            Stw { .. } | Stfd { .. } | Stwx { .. } | Stfdx { .. } => None,
            Cmpw { cr, .. } | Cmpwi { cr, .. } | Fcmpu { cr, .. } => Some(Reg::C(cr)),
            B { .. } | Bc { .. } | Blr | Nop | Annot { .. } => None,
            Bl { .. } | Mtlr { .. } => Some(Reg::Lr),
        }
    }

    /// The data-memory access performed, if any.
    pub fn mem_access(&self) -> Option<MemAccess> {
        use Inst::*;
        match self {
            Lwz { .. } | Lwzx { .. } => Some(MemAccess::Load { bytes: 4 }),
            Lfd { .. } | Lfdx { .. } => Some(MemAccess::Load { bytes: 8 }),
            Stw { .. } | Stwu { .. } | Stwx { .. } => Some(MemAccess::Store { bytes: 4 }),
            Stfd { .. } | Stfdx { .. } => Some(MemAccess::Store { bytes: 8 }),
            _ => None,
        }
    }

    /// The control-flow effect of this instruction.
    pub fn control_flow(&self) -> ControlFlow {
        match *self {
            Inst::B { target } => ControlFlow::Jump(target),
            Inst::Bc { target, .. } => ControlFlow::CondBranch(target),
            Inst::Bl { target } => ControlFlow::Call(target),
            Inst::Blr => ControlFlow::Return,
            _ => ControlFlow::Fallthrough,
        }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        !matches!(self.control_flow(), ControlFlow::Fallthrough)
    }
}

/// The PowerPC `rlwinm` mask from `mb` to `me` (big-endian bit numbering,
/// wrapping when `mb > me`).
pub fn rlwinm_mask(mb: u8, me: u8) -> u32 {
    let bit = |n: u8| 1u32 << (31 - n);
    if mb <= me {
        let hi = bit(mb);
        let lo = bit(me);
        (hi | (hi - 1)) & !(lo - 1)
    } else {
        !rlwinm_mask(me.wrapping_add(1) % 32, mb.wrapping_sub(1) % 32)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Addi { rd, ra, imm } if ra == Gpr::R0 => write!(f, "li {rd}, {imm}"),
            Addi { rd, ra, imm } => write!(f, "addi {rd}, {ra}, {imm}"),
            Addis { rd, ra, imm } if ra == Gpr::R0 => write!(f, "lis {rd}, {imm}"),
            Addis { rd, ra, imm } => write!(f, "addis {rd}, {ra}, {imm}"),
            Mulli { rd, ra, imm } => write!(f, "mulli {rd}, {ra}, {imm}"),
            Andi { rd, ra, imm } => write!(f, "andi. {rd}, {ra}, {imm}"),
            Ori { rd, ra, imm } => write!(f, "ori {rd}, {ra}, {imm}"),
            Xori { rd, ra, imm } => write!(f, "xori {rd}, {ra}, {imm}"),
            Add { rd, ra, rb } => write!(f, "add {rd}, {ra}, {rb}"),
            Subf { rd, ra, rb } => write!(f, "subf {rd}, {ra}, {rb}"),
            Mullw { rd, ra, rb } => write!(f, "mullw {rd}, {ra}, {rb}"),
            Divw { rd, ra, rb } => write!(f, "divw {rd}, {ra}, {rb}"),
            Divwu { rd, ra, rb } => write!(f, "divwu {rd}, {ra}, {rb}"),
            Neg { rd, ra } => write!(f, "neg {rd}, {ra}"),
            And { rd, ra, rb } => write!(f, "and {rd}, {ra}, {rb}"),
            Or { rd, ra, rb } if ra == rb => write!(f, "mr {rd}, {ra}"),
            Or { rd, ra, rb } => write!(f, "or {rd}, {ra}, {rb}"),
            Xor { rd, ra, rb } => write!(f, "xor {rd}, {ra}, {rb}"),
            Slw { rd, ra, rb } => write!(f, "slw {rd}, {ra}, {rb}"),
            Srw { rd, ra, rb } => write!(f, "srw {rd}, {ra}, {rb}"),
            Sraw { rd, ra, rb } => write!(f, "sraw {rd}, {ra}, {rb}"),
            Srawi { rd, ra, sh } => write!(f, "srawi {rd}, {ra}, {sh}"),
            Rlwinm { rd, ra, sh, mb, me } if mb == 0 && me == 31 - sh && sh != 0 => {
                write!(f, "slwi {rd}, {ra}, {sh}")
            }
            Rlwinm { rd, ra, sh, mb, me } if me == 31 && sh == 32 - mb && mb != 0 => {
                write!(f, "srwi {rd}, {ra}, {mb}")
            }
            Rlwinm { rd, ra, sh, mb, me } => write!(f, "rlwinm {rd}, {ra}, {sh}, {mb}, {me}"),
            Lwz { rd, d, ra } => write!(f, "lwz {rd}, {d}({ra})"),
            Stw { rs, d, ra } => write!(f, "stw {rs}, {d}({ra})"),
            Stwu { rs, d, ra } => write!(f, "stwu {rs}, {d}({ra})"),
            Lfd { fd, d, ra } => write!(f, "lfd {fd}, {d}({ra})"),
            Stfd { fs, d, ra } => write!(f, "stfd {fs}, {d}({ra})"),
            Lwzx { rd, ra, rb } => write!(f, "lwzx {rd}, {ra}, {rb}"),
            Stwx { rs, ra, rb } => write!(f, "stwx {rs}, {ra}, {rb}"),
            Lfdx { fd, ra, rb } => write!(f, "lfdx {fd}, {ra}, {rb}"),
            Stfdx { fs, ra, rb } => write!(f, "stfdx {fs}, {ra}, {rb}"),
            Fadd { fd, fa, fb } => write!(f, "fadd {fd}, {fa}, {fb}"),
            Fsub { fd, fa, fb } => write!(f, "fsub {fd}, {fa}, {fb}"),
            Fmul { fd, fa, fc } => write!(f, "fmul {fd}, {fa}, {fc}"),
            Fdiv { fd, fa, fb } => write!(f, "fdiv {fd}, {fa}, {fb}"),
            Fmadd { fd, fa, fc, fb } => write!(f, "fmadd {fd}, {fa}, {fc}, {fb}"),
            Fneg { fd, fa } => write!(f, "fneg {fd}, {fa}"),
            Fabs { fd, fa } => write!(f, "fabs {fd}, {fa}"),
            Fmr { fd, fa } => write!(f, "fmr {fd}, {fa}"),
            Cmpw { cr, ra, rb } => write!(f, "cmpw {cr}, {ra}, {rb}"),
            Cmpwi { cr, ra, imm } => write!(f, "cmpwi {cr}, {ra}, {imm}"),
            Fcmpu { cr, fa, fb } => write!(f, "fcmpu {cr}, {fa}, {fb}"),
            B { target } => write!(f, "b {target:#x}"),
            Bc { cond, cr, target } => write!(f, "b{cond} {cr}, {target:#x}"),
            Bl { target } => write!(f, "bl {target:#x}"),
            Blr => f.write_str("blr"),
            Mflr { rd } => write!(f, "mflr {rd}"),
            Mtlr { rs } => write!(f, "mtlr {rs}"),
            Itof { fd, ra } => write!(f, "itof {fd}, {ra}"),
            Ftoi { rd, fa } => write!(f, "ftoi {rd}, {fa}"),
            Annot { id } => write!(f, "annot {id}"),
            Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn fp(i: u8) -> Fpr {
        Fpr::new(i)
    }

    #[test]
    fn cond_negate_and_swap() {
        assert_eq!(Cond::Lt.negate(), Cond::Ge);
        assert_eq!(Cond::Le.swap(), Cond::Ge);
        assert_eq!(Cond::Eq.swap(), Cond::Eq);
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            assert_eq!(c.swap().swap(), c);
        }
    }

    #[test]
    fn cond_eval() {
        use std::cmp::Ordering::*;
        assert!(Cond::Lt.eval(Less));
        assert!(!Cond::Lt.eval(Equal));
        assert!(Cond::Le.eval(Equal));
        assert!(Cond::Ge.eval(Greater));
        assert!(Cond::Ne.eval(Less));
    }

    #[test]
    fn r0_as_zero_not_a_use() {
        assert!(Inst::li(g(5), 7).uses().is_empty());
        assert_eq!(
            Inst::Lwz {
                rd: g(4),
                d: 0,
                ra: Gpr::R0
            }
            .uses(),
            Vec::<Reg>::new()
        );
        assert_eq!(
            Inst::Lwz {
                rd: g(4),
                d: 0,
                ra: g(1)
            }
            .uses(),
            vec![Reg::G(g(1))]
        );
    }

    #[test]
    fn defs_and_uses_cover_stores() {
        let st = Inst::Stfd {
            fs: fp(2),
            d: 8,
            ra: g(1),
        };
        assert_eq!(st.defs(), vec![]);
        assert_eq!(st.uses(), vec![Reg::F(fp(2)), Reg::G(g(1))]);
        let stwu = Inst::Stwu {
            rs: g(1),
            d: -32,
            ra: g(1),
        };
        assert_eq!(stwu.defs(), vec![Reg::G(g(1))]);
    }

    #[test]
    fn units() {
        assert_eq!(
            Inst::Add {
                rd: g(3),
                ra: g(4),
                rb: g(5)
            }
            .unit(),
            Unit::Iu
        );
        assert_eq!(
            Inst::Mullw {
                rd: g(3),
                ra: g(4),
                rb: g(5)
            }
            .unit(),
            Unit::Mci
        );
        assert_eq!(
            Inst::Fadd {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3)
            }
            .unit(),
            Unit::Fpu
        );
        assert_eq!(
            Inst::Lwz {
                rd: g(3),
                d: 0,
                ra: g(1)
            }
            .unit(),
            Unit::Lsu
        );
        assert_eq!(Inst::Blr.unit(), Unit::Bpu);
        assert_eq!(Inst::Annot { id: 0 }.unit(), Unit::None);
    }

    #[test]
    fn rlwinm_masks() {
        assert_eq!(rlwinm_mask(0, 31), u32::MAX);
        assert_eq!(rlwinm_mask(31, 31), 1);
        assert_eq!(rlwinm_mask(0, 0), 0x8000_0000);
        assert_eq!(rlwinm_mask(24, 31), 0xFF);
        // wrapping mask
        assert_eq!(rlwinm_mask(31, 0), 0x8000_0001);
    }

    #[test]
    fn shift_helpers_match_rlwinm_semantics() {
        // slwi 3: rotate left 3, keep bits 0..28
        let slwi = Inst::slwi(g(3), g(4), 3);
        match slwi {
            Inst::Rlwinm { sh, mb, me, .. } => {
                assert_eq!((sh, mb, me), (3, 0, 28));
                let x: u32 = 0xDEAD_BEEF;
                let rot = x.rotate_left(3);
                assert_eq!(rot & rlwinm_mask(mb, me), x << 3);
            }
            _ => panic!("expected rlwinm"),
        }
        let srwi = Inst::srwi(g(3), g(4), 5);
        match srwi {
            Inst::Rlwinm { sh, mb, me, .. } => {
                let x: u32 = 0xDEAD_BEEF;
                let rot = x.rotate_left(sh as u32);
                assert_eq!(rot & rlwinm_mask(mb, me), x >> 5);
            }
            _ => panic!("expected rlwinm"),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Inst::li(g(3), -1).to_string(), "li r3, -1");
        assert_eq!(Inst::mr(g(3), g(4)).to_string(), "mr r3, r4");
        assert_eq!(Inst::slwi(g(3), g(4), 2).to_string(), "slwi r3, r4, 2");
        assert_eq!(Inst::srwi(g(3), g(4), 2).to_string(), "srwi r3, r4, 2");
        assert_eq!(
            Inst::Bc {
                cond: Cond::Lt,
                cr: Cr::CR0,
                target: 0x100
            }
            .to_string(),
            "blt cr0, 0x100"
        );
    }

    #[test]
    fn control_flow_classification() {
        assert_eq!(Inst::B { target: 4 }.control_flow(), ControlFlow::Jump(4));
        assert_eq!(Inst::Blr.control_flow(), ControlFlow::Return);
        assert!(Inst::Bl { target: 8 }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
    }
}
