//! PowerPC-750/755-subset target architecture.
//!
//! This crate defines everything both sides of the toolchain agree on:
//!
//! * the register files and instruction set ([`reg`], [`inst`]),
//! * the 32-bit binary instruction encoding ([`encode`]),
//! * the linked program container produced by the compiler and consumed by the
//!   simulator and the WCET analyzer ([`program`]),
//! * the machine configuration — memory map, cache geometry, latencies
//!   ([`config`]),
//! * the shared in-order dual-issue pipeline timing core ([`timing`]) used both
//!   concretely (simulator) and abstractly (WCET analysis).
//!
//! The instruction subset follows the MPC755 (PowerPC 603e/750 family) with the
//! documented deviations listed in `DESIGN.md` (extension opcodes for
//! int↔float conversion and annotation markers).
//!
//! # Example
//!
//! ```
//! use vericomp_arch::inst::Inst;
//! use vericomp_arch::reg::Gpr;
//! use vericomp_arch::encode::{encode, decode};
//!
//! let inst = Inst::Addi { rd: Gpr::new(3), ra: Gpr::new(4), imm: -8 };
//! let word = encode(&inst, 0x0010_0000);
//! assert_eq!(decode(word, 0x0010_0000).unwrap(), inst);
//! assert_eq!(inst.to_string(), "addi r3, r4, -8");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod encode;
pub mod inst;
pub mod program;
pub mod reg;
pub mod timing;

pub use config::MachineConfig;
pub use inst::{Cond, Inst};
pub use program::Program;
pub use reg::{Cr, Fpr, Gpr};
