//! The shared pipeline timing core: in-order dual dispatch with per-unit
//! issue-when-ready execution.
//!
//! Both the concrete simulator (`vericomp-mach`) and the abstract WCET
//! analyzer (`vericomp-wcet`) compute instruction timing with this module.
//! The model follows the MPC755's structure — a 2-wide in-order dispatcher
//! feeding short reservation queues in front of the execution units — at the
//! abstraction level of a cost model:
//!
//! * **Dispatch** advances strictly in program order, two instructions per
//!   cycle. Instruction-cache misses and taken-branch redirects stall
//!   dispatch.
//! * Each unit instance has a **single-entry reservation station** (as on
//!   the real 750/755): a dispatched instruction waits there until its
//!   source registers are ready and then issues. Dispatch stalls only when
//!   the *target* unit's station is still occupied, so an instruction
//!   stalled on a long latency does not block later independent work on
//!   other units (loads keep streaming under a waiting FP chain), while
//!   back-to-back work for one unit stays coupled to its progress.
//! * Results become ready `result_latency` (+ cache penalty) cycles after
//!   issue; blocking instructions (divides, conversions) occupy their unit
//!   until completion; pipelined units accept one instruction per cycle.
//! * A taken branch redirects fetch: dispatch resumes `branch_penalty + 1`
//!   cycles after the branch issues.
//!
//! The model is *compositional and free of timing anomalies by
//! construction*: every state component is a "not-before" bound and every
//! transfer is a `max`/`+` of its inputs, hence monotone. The WCET analyzer
//! exploits this by joining states with the pointwise maximum
//! ([`PipeResiduals::join`]), a sound abstraction of any incoming concrete
//! state. The in-order **dispatch cursor** is the timeline backbone: block
//! costs measure dispatch advance, and everything still in flight at a
//! block boundary is carried as a residual relative to the cursor.
//!
//! ```
//! use vericomp_arch::{MachineConfig, Inst};
//! use vericomp_arch::timing::PipeState;
//! use vericomp_arch::reg::Fpr;
//!
//! let cfg = MachineConfig::mpc755();
//! let mut t = PipeState::new();
//! // fadd f1 <- f2 + f3 ; fadd f4 <- f1 + f1 (RAW dependency)
//! let a = Inst::Fadd { fd: Fpr::new(1), fa: Fpr::new(2), fb: Fpr::new(3) };
//! let b = Inst::Fadd { fd: Fpr::new(4), fa: Fpr::new(1), fb: Fpr::new(1) };
//! t.advance(&cfg, &a, 0, 0, false);
//! let issued = t.advance(&cfg, &b, 0, 0, false);
//! assert_eq!(issued, u64::from(cfg.lat_fp)); // b waits for a's result
//! ```

use crate::config::MachineConfig;
use crate::inst::{Inst, Reg, Unit};

/// Residuals larger than this are clamped. With single-entry reservation
/// stations at most one instruction per unit instance is waiting to issue,
/// so the dispatch-to-completion lag of any in-flight value is bounded by a
/// chain across the six instances of maximal latencies (I/O access plus
/// divide each) — comfortably below this cap.
const RESIDUAL_CAP: u64 = 4096;

/// Number of distinct execution-unit *instances*.
const UNIT_INSTANCES: usize = 6;

/// Number of timed register slots: 32 GPRs, 32 FPRs, 8 CR fields, LR.
pub const NREGS: usize = 73;

/// Dense slot of a register in [`RegResiduals`].
#[must_use]
pub fn reg_slot(r: Reg) -> usize {
    match r {
        Reg::G(g) => g.index() as usize,
        Reg::F(f) => 32 + f.index() as usize,
        Reg::C(c) => 64 + c.index() as usize,
        Reg::Lr => 72,
    }
}

/// Per-register residual delays, dense by [`reg_slot`]; `0` means nothing
/// in flight. Dense storage keeps the pipeline fixpoint's clone/join/eq
/// operations at a flat 73-word sweep instead of tree traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegResiduals(pub [u64; NREGS]);

impl Default for RegResiduals {
    fn default() -> Self {
        RegResiduals([0; NREGS])
    }
}

impl RegResiduals {
    /// Every register at the same residual delay.
    #[must_use]
    pub fn uniform(d: u64) -> RegResiduals {
        RegResiduals([d; NREGS])
    }
}

fn unit_instance_range(unit: Unit) -> std::ops::Range<usize> {
    match unit {
        Unit::Iu => 0..2,
        Unit::Mci => 2..3,
        Unit::Fpu => 3..4,
        Unit::Lsu => 4..5,
        Unit::Bpu => 5..6,
        Unit::None => 0..0,
    }
}

/// Pipeline timing state.
///
/// All times are absolute cycle numbers relative to the state's origin
/// (`dispatch_time() == 0` for a fresh state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeState {
    /// Cycle the next instruction would dispatch in.
    dispatch: u64,
    /// Instructions already dispatched in cycle `dispatch` (< 2).
    dispatched_this_cycle: u32,
    /// Earliest cycle at which dispatch may continue (fetch redirects).
    fetch_ready: u64,
    /// Latest issue time observed (the makespan lower bound).
    makespan: u64,
    /// Cycle at which each register's latest value becomes readable
    /// (dense by [`reg_slot`]; `0` = readable immediately).
    reg_ready: [u64; NREGS],
    /// Cycle at which each unit instance becomes free.
    unit_free: [u64; UNIT_INSTANCES],
    /// Issue time of the last instruction dispatched to each unit instance:
    /// its single reservation-station entry frees at that cycle.
    station_free: [u64; UNIT_INSTANCES],
}

/// One instruction's timing inputs, resolved once from the instruction,
/// machine configuration, and cache classification. [`PipeState::advance`]
/// derives these on every call; the WCET pipeline fixpoint precomputes them
/// per block so that worklist revisits replay only the arithmetic
/// ([`PipeState::advance_op`]).
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    /// First unit instance the instruction may issue to.
    unit_lo: u8,
    /// One past the last unit instance.
    unit_hi: u8,
    /// Source register slots ([`reg_slot`]), `nuses` of them valid.
    uses: [u8; 3],
    /// Number of valid entries in `uses`.
    nuses: u8,
    /// Destination register slot, or [`MicroOp::NO_DEF`].
    def: u8,
    /// Instruction-fetch penalty in cycles.
    fetch_extra: u64,
    /// Result latency, cache/I-O penalty for loads already folded in.
    latency: u64,
    /// Whether the instruction occupies its unit until completion.
    blocking: bool,
    /// Whether the instruction retires through the store queue.
    is_store: bool,
    /// `1 + branch_penalty` for a taken redirect, `0` for none.
    redirect_after: u64,
}

impl MicroOp {
    /// Sentinel for "writes no register".
    const NO_DEF: u8 = u8::MAX;

    /// Precomputes the descriptor; `None` for the pro-forma
    /// [`Inst::Annot`], which consumes no resources and no time.
    ///
    /// The parameters mirror [`PipeState::advance`].
    #[must_use]
    pub fn new(
        cfg: &MachineConfig,
        inst: &Inst,
        fetch_extra: u32,
        mem_extra: u32,
        taken: bool,
    ) -> Option<MicroOp> {
        if matches!(inst, Inst::Annot { .. }) {
            return None;
        }
        let range = unit_instance_range(inst.unit());
        let (ubuf, un) = inst.uses_array();
        let mut uses = [0u8; 3];
        for (slot, &r) in uses.iter_mut().zip(&ubuf[..un as usize]) {
            *slot = reg_slot(r) as u8;
        }
        // The cache/I-O penalty delays *load results*; a store's penalty is
        // absorbed by the store queue and must not delay the store's
        // register side effects (`stwu`'s stack-pointer update is plain
        // ALU work).
        let is_load = matches!(inst.mem_access(), Some(crate::inst::MemAccess::Load { .. }));
        let latency =
            u64::from(cfg.result_latency(inst)) + if is_load { u64::from(mem_extra) } else { 0 };
        // Divides/conversions block their unit; so does any load that
        // leaves the L1 (the 750's LSU has no hit-under-miss, and uncached
        // acquisition reads serialize on the bus).
        let blocking = cfg.is_blocking(inst) || (mem_extra > 0 && is_load);
        // Stores retire through the 750's store queue: they leave the
        // reservation station at dispatch and only consume LSU throughput,
        // so later independent work is not gated on the stored value.
        let is_store = matches!(
            inst.mem_access(),
            Some(crate::inst::MemAccess::Store { .. })
        );
        Some(MicroOp {
            unit_lo: range.start as u8,
            unit_hi: range.end as u8,
            uses,
            nuses: un,
            def: inst.def().map_or(MicroOp::NO_DEF, |r| reg_slot(r) as u8),
            fetch_extra: u64::from(fetch_extra),
            latency,
            blocking,
            is_store,
            redirect_after: if taken && inst.is_terminator() {
                1 + u64::from(cfg.branch_penalty)
            } else {
                0
            },
        })
    }
}

impl PipeState {
    /// A fresh pipeline state: nothing in flight, time zero.
    pub fn new() -> Self {
        PipeState {
            dispatch: 0,
            dispatched_this_cycle: 0,
            fetch_ready: 0,
            makespan: 0,
            reg_ready: [0; NREGS],
            unit_free: [0; UNIT_INSTANCES],
            station_free: [0; UNIT_INSTANCES],
        }
    }

    /// The cycle the next instruction would dispatch in — the in-order
    /// timeline backbone.
    pub fn dispatch_time(&self) -> u64 {
        self.dispatch
    }

    /// The latest issue time observed.
    pub fn time(&self) -> u64 {
        self.makespan
    }

    /// The cycle by which everything in flight has completed.
    pub fn drain_time(&self) -> u64 {
        let regs = self.reg_ready.iter().copied().max().unwrap_or(0);
        let units = self.unit_free.iter().copied().max().unwrap_or(0);
        let stations = self.station_free.iter().copied().max().unwrap_or(0);
        self.dispatch
            .max(self.makespan)
            .max(regs)
            .max(units)
            .max(stations)
            .max(self.fetch_ready)
    }

    /// Advances the state over one instruction.
    ///
    /// * `fetch_extra` — instruction-fetch penalty in cycles (0 on an
    ///   I-cache hit, the line-fill latency on a miss);
    /// * `mem_extra` — data-access penalty (0 on a D-cache hit, line-fill
    ///   latency on a miss, the I/O latency for acquisitions);
    /// * `taken` — whether a branch instruction redirects fetch.
    ///
    /// Returns the cycle at which the instruction issued.
    pub fn advance(
        &mut self,
        cfg: &MachineConfig,
        inst: &Inst,
        fetch_extra: u32,
        mem_extra: u32,
        taken: bool,
    ) -> u64 {
        match MicroOp::new(cfg, inst, fetch_extra, mem_extra, taken) {
            None => self.makespan, // pro-forma effect: no resources, no time
            Some(op) => self.advance_op(&op),
        }
    }

    /// Advances the state over one precomputed [`MicroOp`].
    ///
    /// Equivalent to [`PipeState::advance`] on the instruction the op was
    /// built from; the WCET fixpoint precomputes ops once per block so that
    /// worklist revisits replay only the timing arithmetic.
    pub fn advance_op(&mut self, op: &MicroOp) -> u64 {
        // ---- dispatch (in order, 2 per cycle, stalls while the target
        // unit's reservation station is occupied) ----
        let slot = (op.unit_lo as usize..op.unit_hi as usize)
            .min_by_key(|&u| (self.station_free[u], self.unit_free[u]))
            .expect("every timed instruction has a unit");
        let mut d = self
            .dispatch
            .max(self.fetch_ready)
            .max(self.station_free[slot])
            + op.fetch_extra;
        if d == self.dispatch && self.dispatched_this_cycle >= 2 {
            d += 1;
        }
        if d == self.dispatch {
            self.dispatched_this_cycle += 1;
        } else {
            self.dispatch = d;
            self.dispatched_this_cycle = 1;
        }

        // ---- issue (when the sources are ready and the unit is free) ----
        let mut t = d;
        for &r in &op.uses[..op.nuses as usize] {
            t = t.max(self.reg_ready[r as usize]);
        }
        t = t.max(self.unit_free[slot]);

        self.unit_free[slot] = if op.blocking { t + op.latency } else { t + 1 };
        self.station_free[slot] = if op.is_store { d } else { t };
        if op.def != MicroOp::NO_DEF {
            self.reg_ready[op.def as usize] = (t + op.latency).min(t + RESIDUAL_CAP);
        }
        self.makespan = self.makespan.max(t);
        if op.redirect_after != 0 {
            // fetch redirect: dispatch resumes after the branch executes
            self.fetch_ready = t + op.redirect_after;
        }
        t
    }

    /// Extracts the state as residual delays relative to the dispatch
    /// cursor, for use as an abstract value by the WCET analyzer.
    pub fn residuals(&self) -> PipeResiduals {
        let base = self.dispatch;
        PipeResiduals {
            regs: RegResiduals(
                self.reg_ready
                    .map(|t| t.saturating_sub(base).min(RESIDUAL_CAP)),
            ),
            units: self
                .unit_free
                .map(|t| t.saturating_sub(base).min(RESIDUAL_CAP)),
            stations: self
                .station_free
                .map(|t| t.saturating_sub(base).min(RESIDUAL_CAP)),
            fetch: self.fetch_ready.saturating_sub(base).min(RESIDUAL_CAP),
            makespan: self.makespan.saturating_sub(base).min(RESIDUAL_CAP),
            dispatched_this_cycle: self.dispatched_this_cycle,
        }
    }

    /// Rebuilds a state at dispatch-time zero from residual delays.
    pub fn from_residuals(r: &PipeResiduals) -> Self {
        PipeState {
            dispatch: 0,
            dispatched_this_cycle: r.dispatched_this_cycle,
            fetch_ready: r.fetch,
            makespan: r.makespan,
            reg_ready: r.regs.0,
            unit_free: r.units,
            station_free: r.stations,
        }
    }
}

impl Default for PipeState {
    fn default() -> Self {
        Self::new()
    }
}

/// Pipeline state expressed as residual delays relative to the dispatch
/// cursor; the abstract domain of the WCET analyzer's pipeline analysis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipeResiduals {
    /// Remaining cycles until each register's in-flight value is ready.
    pub regs: RegResiduals,
    /// Remaining busy cycles for each unit instance.
    pub units: [u64; UNIT_INSTANCES],
    /// Remaining reservation-station occupancy for each unit instance.
    pub stations: [u64; UNIT_INSTANCES],
    /// Remaining fetch-redirect cycles.
    pub fetch: u64,
    /// Residual makespan (latest issue relative to the cursor).
    pub makespan: u64,
    /// Instructions already dispatched in the current cycle.
    pub dispatched_this_cycle: u32,
}

impl PipeResiduals {
    /// Pointwise maximum — a sound join because every field is a
    /// "not-before" bound and the timing transfer function is monotone.
    pub fn join(&self, other: &PipeResiduals) -> PipeResiduals {
        let mut regs = self.regs;
        for (e, &d) in regs.0.iter_mut().zip(&other.regs.0) {
            *e = (*e).max(d);
        }
        let mut units = [0u64; UNIT_INSTANCES];
        let mut stations = [0u64; UNIT_INSTANCES];
        for i in 0..UNIT_INSTANCES {
            units[i] = self.units[i].max(other.units[i]);
            stations[i] = self.stations[i].max(other.stations[i]);
        }
        PipeResiduals {
            regs,
            units,
            stations,
            fetch: self.fetch.max(other.fetch),
            makespan: self.makespan.max(other.makespan),
            dispatched_this_cycle: self.dispatched_this_cycle.max(other.dispatched_this_cycle),
        }
    }

    /// Partial-order test: `self` is covered by `other` (every residual of
    /// `self` is ≤ the corresponding residual of `other`).
    pub fn le(&self, other: &PipeResiduals) -> bool {
        self.regs.0.iter().zip(&other.regs.0).all(|(&d, &o)| d <= o)
            && (0..UNIT_INSTANCES).all(|i| self.units[i] <= other.units[i])
            && (0..UNIT_INSTANCES).all(|i| self.stations[i] <= other.stations[i])
            && self.fetch <= other.fetch
            && self.makespan <= other.makespan
            && self.dispatched_this_cycle <= other.dispatched_this_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Fpr, Gpr};

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn fp(i: u8) -> Fpr {
        Fpr::new(i)
    }
    fn cfg() -> MachineConfig {
        MachineConfig::mpc755()
    }

    #[test]
    fn independent_int_pair_dual_dispatches() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let a = Inst::Add {
            rd: g(3),
            ra: g(4),
            rb: g(5),
        };
        let b = Inst::Add {
            rd: g(6),
            ra: g(7),
            rb: g(8),
        };
        assert_eq!(t.advance(&cfg, &a, 0, 0, false), 0);
        assert_eq!(t.advance(&cfg, &b, 0, 0, false), 0); // pairs in IU2
        let c = Inst::Add {
            rd: g(9),
            ra: g(10),
            rb: g(11),
        };
        assert_eq!(t.advance(&cfg, &c, 0, 0, false), 1); // width exhausted
    }

    #[test]
    fn raw_dependency_stalls_consumer_only() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let a = Inst::Fadd {
            fd: fp(1),
            fa: fp(2),
            fb: fp(3),
        };
        let b = Inst::Fadd {
            fd: fp(4),
            fa: fp(1),
            fb: fp(1),
        };
        assert_eq!(t.advance(&cfg, &a, 0, 0, false), 0);
        assert_eq!(t.advance(&cfg, &b, 0, 0, false), u64::from(cfg.lat_fp));
    }

    #[test]
    fn independent_load_streams_under_stalled_fp_chain() {
        // The decisive difference from a strict in-order-issue model: a
        // dependent FP chain does not block later loads.
        let cfg = cfg();
        let mut t = PipeState::new();
        t.advance(
            &cfg,
            &Inst::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            0,
            0,
            false,
        );
        t.advance(
            &cfg,
            &Inst::Fadd {
                fd: fp(4),
                fa: fp(1),
                fb: fp(1),
            },
            0,
            0,
            false,
        );
        // an unrelated load dispatches in cycle 1 and issues immediately
        let ld = Inst::Lwz {
            rd: g(3),
            d: 0,
            ra: g(1),
        };
        assert_eq!(t.advance(&cfg, &ld, 0, 0, false), 1);
    }

    #[test]
    fn structural_hazard_single_fpu() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let a = Inst::Fadd {
            fd: fp(1),
            fa: fp(2),
            fb: fp(3),
        };
        let b = Inst::Fadd {
            fd: fp(4),
            fa: fp(5),
            fb: fp(6),
        };
        t.advance(&cfg, &a, 0, 0, false);
        // independent, but only one FPU: next cycle (pipelined unit)
        assert_eq!(t.advance(&cfg, &b, 0, 0, false), 1);
    }

    #[test]
    fn blocking_divide_occupies_unit() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let d1 = Inst::Divw {
            rd: g(3),
            ra: g(4),
            rb: g(5),
        };
        let d2 = Inst::Divw {
            rd: g(6),
            ra: g(7),
            rb: g(8),
        };
        t.advance(&cfg, &d1, 0, 0, false);
        assert_eq!(t.advance(&cfg, &d2, 0, 0, false), u64::from(cfg.lat_div));
    }

    #[test]
    fn cache_miss_delays_dependent_use() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let ld = Inst::Lwz {
            rd: g(3),
            d: 0,
            ra: g(1),
        };
        let use_it = Inst::Addi {
            rd: g(4),
            ra: g(3),
            imm: 1,
        };
        t.advance(&cfg, &ld, 0, cfg.mem_latency, false);
        let issue = t.advance(&cfg, &use_it, 0, 0, false);
        assert_eq!(issue, u64::from(cfg.lat_load + cfg.mem_latency));
    }

    #[test]
    fn taken_branch_stalls_dispatch() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let br = Inst::B { target: 0x100 };
        let next = Inst::Addi {
            rd: g(3),
            ra: g(3),
            imm: 1,
        };
        t.advance(&cfg, &br, 0, 0, true);
        assert_eq!(
            t.advance(&cfg, &next, 0, 0, false),
            1 + u64::from(cfg.branch_penalty)
        );
        assert_eq!(t.dispatch_time(), 1 + u64::from(cfg.branch_penalty));
    }

    #[test]
    fn annotations_are_free() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let before = t.clone();
        t.advance(&cfg, &Inst::Annot { id: 3 }, 0, 0, false);
        assert_eq!(t, before);
    }

    #[test]
    fn fetch_miss_delays_dispatch() {
        let cfg = cfg();
        let mut t = PipeState::new();
        let a = Inst::Add {
            rd: g(3),
            ra: g(4),
            rb: g(5),
        };
        assert_eq!(
            t.advance(&cfg, &a, cfg.mem_latency, 0, false),
            u64::from(cfg.mem_latency)
        );
    }

    #[test]
    fn residual_roundtrip_preserves_behaviour() {
        let cfg = cfg();
        let mut t = PipeState::new();
        t.advance(
            &cfg,
            &Inst::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            0,
            0,
            false,
        );
        let res = t.residuals();
        let mut t2 = PipeState::from_residuals(&res);
        let use_f1 = Inst::Fmr {
            fd: fp(5),
            fa: fp(1),
        };
        let mut t1 = t.clone();
        let base = t1.dispatch_time();
        let d1 = t1.advance(&cfg, &use_f1, 0, 0, false) - base;
        let d2 = t2.advance(&cfg, &use_f1, 0, 0, false);
        assert_eq!(d1, d2);
    }

    #[test]
    fn join_is_upper_bound_and_monotone() {
        let cfg = cfg();
        let mut a = PipeState::new();
        a.advance(
            &cfg,
            &Inst::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            0,
            0,
            false,
        );
        let ra = a.residuals();
        let mut b = PipeState::new();
        b.advance(
            &cfg,
            &Inst::Divw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            0,
            0,
            false,
        );
        let rb = b.residuals();
        let j = ra.join(&rb);
        assert!(ra.le(&j));
        assert!(rb.le(&j));
        // Timing from the join is ≥ timing from either component.
        let seq = [
            Inst::Fmr {
                fd: fp(6),
                fa: fp(1),
            },
            Inst::Addi {
                rd: g(6),
                ra: g(3),
                imm: 0,
            },
        ];
        let run = |r: &PipeResiduals| {
            let mut s = PipeState::from_residuals(r);
            for i in &seq {
                s.advance(&cfg, i, 0, 0, false);
            }
            s.drain_time()
        };
        assert!(run(&j) >= run(&ra));
        assert!(run(&j) >= run(&rb));
    }

    #[test]
    fn drain_time_covers_in_flight_results() {
        let cfg = cfg();
        let mut t = PipeState::new();
        t.advance(
            &cfg,
            &Inst::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            0,
            0,
            false,
        );
        assert_eq!(t.drain_time(), u64::from(cfg.lat_fdiv));
    }

    #[test]
    fn dispatch_cursor_tracks_program_order() {
        let cfg = cfg();
        let mut t = PipeState::new();
        for i in 0..6 {
            t.advance(
                &cfg,
                &Inst::Add {
                    rd: g(3 + i),
                    ra: g(4),
                    rb: g(5),
                },
                0,
                0,
                false,
            );
        }
        // 6 instructions, 2 per cycle
        assert_eq!(t.dispatch_time(), 2);
    }
}
