//! Register files of the PowerPC-subset target.
//!
//! The MPC755 has 32 general-purpose registers (GPRs), 32 floating-point
//! registers (FPRs), eight 4-bit condition register fields (CR0–CR7), and the
//! special-purpose registers LR and CTR. We model GPRs, FPRs and CR fields as
//! validated newtypes; LR is modelled implicitly by the branch-and-link /
//! branch-to-LR instructions.
//!
//! # Software conventions (EABI-like, used by the compiler)
//!
//! | register | role |
//! |---|---|
//! | `r0` | scratch, may read as literal zero in `addi`/`addis`/`lwz`-style `ra` fields |
//! | `r1` | stack pointer |
//! | `r2` | constant-pool (TOC) base |
//! | `r3..r10` | integer arguments / return value / volatile |
//! | `r11, r12` | volatile scratch |
//! | `r13` | small-data-area base |
//! | `r14..r31` | callee-saved |
//! | `f0` | scratch |
//! | `f1..f13` | FP arguments / return value / volatile |
//! | `f14..f31` | callee-saved |

use std::fmt;

/// A general-purpose (integer) register, `r0`–`r31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

/// A floating-point register, `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fpr(u8);

/// A condition-register field, `cr0`–`cr7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cr(u8);

macro_rules! impl_reg {
    ($ty:ident, $max:expr, $prefix:literal, $what:literal) => {
        impl $ty {
            /// Creates the register with the given index.
            ///
            /// # Panics
            ///
            /// Panics if `index` is not below the register-file size.
            pub const fn new(index: u8) -> Self {
                assert!(index < $max, concat!($what, " index out of range"));
                Self(index)
            }

            /// Creates the register if `index` is in range.
            pub fn try_new(index: u8) -> Option<Self> {
                (index < $max).then_some(Self(index))
            }

            /// The register index within its file.
            pub fn index(self) -> u8 {
                self.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_reg!(Gpr, 32, "r", "GPR");
impl_reg!(Fpr, 32, "f", "FPR");
impl_reg!(Cr, 8, "cr", "CR field");

impl Gpr {
    /// `r0`: scratch; reads as literal zero in displacement-form `ra` fields.
    pub const R0: Gpr = Gpr(0);
    /// `r1`: the stack pointer.
    pub const SP: Gpr = Gpr(1);
    /// `r2`: the constant-pool (TOC) base pointer.
    pub const TOC: Gpr = Gpr(2);
    /// `r13`: the small-data-area base pointer.
    pub const SDA: Gpr = Gpr(13);

    /// Whether the register is volatile (caller-saved) under the software
    /// conventions used by the compiler.
    pub fn is_volatile(self) -> bool {
        self.0 == 0 || (3..=12).contains(&self.0)
    }
}

impl Fpr {
    /// `f0`: scratch.
    pub const F0: Fpr = Fpr(0);

    /// Whether the register is volatile (caller-saved) under the software
    /// conventions used by the compiler.
    pub fn is_volatile(self) -> bool {
        self.0 <= 13
    }
}

impl Cr {
    /// `cr0`, the default condition field.
    pub const CR0: Cr = Cr(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Gpr::new(3).to_string(), "r3");
        assert_eq!(Fpr::new(31).to_string(), "f31");
        assert_eq!(Cr::new(7).to_string(), "cr7");
    }

    #[test]
    fn ranges() {
        assert!(Gpr::try_new(32).is_none());
        assert!(Fpr::try_new(32).is_none());
        assert!(Cr::try_new(8).is_none());
        assert_eq!(Gpr::try_new(31).map(Gpr::index), Some(31));
    }

    #[test]
    #[should_panic(expected = "GPR index out of range")]
    fn gpr_out_of_range_panics() {
        let _ = Gpr::new(32);
    }

    #[test]
    fn volatility_convention() {
        assert!(Gpr::new(3).is_volatile());
        assert!(Gpr::new(12).is_volatile());
        assert!(!Gpr::new(14).is_volatile());
        assert!(!Gpr::SP.is_volatile());
        assert!(!Gpr::TOC.is_volatile());
        assert!(Fpr::new(1).is_volatile());
        assert!(!Fpr::new(14).is_volatile());
    }
}
