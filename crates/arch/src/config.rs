//! Machine configuration shared by the compiler, the simulator and the WCET
//! analyzer: memory map, cache geometry and instruction latencies.
//!
//! Defaults model the MPC755 setup of the paper: 32 KiB, 8-way, 32-byte-line
//! L1 instruction and data caches, an external RAM with a multi-decade-cycle
//! line fill, and a slow uncached memory-mapped I/O region for hardware signal
//! acquisitions.

use crate::inst::{Inst, Unit};

/// Geometry of one level-1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// The line-aligned tag of an address (line index within the whole
    /// address space).
    pub fn line_of(&self, addr: u32) -> u32 {
        addr / self.line_bytes
    }

    /// The set an address maps to.
    pub fn set_of(&self, addr: u32) -> u32 {
        self.line_of(addr) % self.sets()
    }
}

/// The complete machine model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Cycles to fill a cache line from external memory on a demand data
    /// miss (critical word needed before dependents can proceed).
    pub mem_latency: u32,
    /// Effective dispatch stall of an instruction-cache miss. Smaller than
    /// `mem_latency`: code fetch is a sequential burst and the MPC755
    /// streams instructions as the line fills.
    pub fetch_latency: u32,
    /// Cycles for one access to the uncached memory-mapped I/O region
    /// (hardware signal acquisition).
    pub io_latency: u32,

    /// Base address of the text (code) section.
    pub text_base: u32,
    /// Base address of the data section (globals, then constant pool).
    pub data_base: u32,
    /// Initial stack pointer (stack grows towards lower addresses).
    pub stack_top: u32,
    /// Base address of the memory-mapped I/O region.
    pub io_base: u32,
    /// Size in bytes of the memory-mapped I/O region.
    pub io_size: u32,

    /// Result latency of simple integer instructions.
    pub lat_int: u32,
    /// Result latency of integer multiply.
    pub lat_mul: u32,
    /// Result latency of integer divide (blocking).
    pub lat_div: u32,
    /// Result latency of pipelined FP add/sub/mul/compare.
    pub lat_fp: u32,
    /// Result latency of fused multiply-add.
    pub lat_fmadd: u32,
    /// Result latency of FP divide (blocking).
    pub lat_fdiv: u32,
    /// Result latency of FP register moves / negate / abs.
    pub lat_fmove: u32,
    /// Result latency of int↔float conversion (blocking).
    pub lat_conv: u32,
    /// Result latency of a load that hits in the data cache.
    pub lat_load: u32,
    /// Extra dispatch bubble after a taken branch.
    pub branch_penalty: u32,
}

impl MachineConfig {
    /// The MPC755-like default configuration used throughout the experiments.
    pub fn mpc755() -> Self {
        MachineConfig {
            icache: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 32,
            },
            mem_latency: 30,
            fetch_latency: 8,
            io_latency: 250,
            text_base: 0x0010_0000,
            data_base: 0x1000_0000,
            stack_top: 0x2000_0000,
            io_base: 0xF000_0000,
            io_size: 0x1000,
            lat_int: 1,
            lat_mul: 3,
            lat_div: 19,
            lat_fp: 3,
            lat_fmadd: 4,
            lat_fdiv: 18,
            lat_fmove: 2,
            lat_conv: 4,
            lat_load: 2,
            branch_penalty: 1,
        }
    }

    /// A tiny-cache variant used by tests that want to observe capacity
    /// evictions without generating large programs.
    pub fn tiny_caches() -> Self {
        MachineConfig {
            icache: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 32,
            },
            ..Self::mpc755()
        }
    }

    /// Whether `addr` falls in the uncached memory-mapped I/O region.
    pub fn is_io(&self, addr: u32) -> bool {
        addr >= self.io_base && addr - self.io_base < self.io_size
    }

    /// Result latency of an instruction (excluding cache effects).
    pub fn result_latency(&self, inst: &Inst) -> u32 {
        use Inst::*;
        match inst {
            Mulli { .. } | Mullw { .. } => self.lat_mul,
            Divw { .. } | Divwu { .. } => self.lat_div,
            Fadd { .. } | Fsub { .. } | Fmul { .. } | Fcmpu { .. } => self.lat_fp,
            Fmadd { .. } => self.lat_fmadd,
            Fdiv { .. } => self.lat_fdiv,
            Fneg { .. } | Fabs { .. } | Fmr { .. } => self.lat_fmove,
            Itof { .. } | Ftoi { .. } => self.lat_conv,
            Lwz { .. } | Lwzx { .. } | Lfd { .. } | Lfdx { .. } => self.lat_load,
            Stw { .. } | Stwu { .. } | Stwx { .. } | Stfd { .. } | Stfdx { .. } => 1,
            _ => self.lat_int,
        }
    }

    /// Whether the instruction occupies its unit until its result is ready
    /// (non-pipelined execution: divides and conversions).
    pub fn is_blocking(&self, inst: &Inst) -> bool {
        matches!(
            inst,
            Inst::Divw { .. }
                | Inst::Divwu { .. }
                | Inst::Fdiv { .. }
                | Inst::Itof { .. }
                | Inst::Ftoi { .. }
        )
    }

    /// Number of instances of the given unit.
    pub fn unit_count(&self, unit: Unit) -> u32 {
        match unit {
            Unit::Iu => 2,
            Unit::None => 0,
            _ => 1,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::mpc755()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Fpr, Gpr};

    #[test]
    fn cache_geometry() {
        let c = MachineConfig::mpc755().icache;
        assert_eq!(c.sets(), 128);
        assert_eq!(c.line_of(0x40), 2);
        assert_eq!(c.set_of(0x40), 2);
        // addresses one cache-size apart map to the same set
        assert_eq!(c.set_of(0x1000), c.set_of(0x1000 + 128 * 32));
    }

    #[test]
    fn io_region() {
        let cfg = MachineConfig::mpc755();
        assert!(cfg.is_io(0xF000_0000));
        assert!(cfg.is_io(0xF000_0FFF));
        assert!(!cfg.is_io(0xF000_1000));
        assert!(!cfg.is_io(0x1000_0000));
    }

    #[test]
    fn latencies_by_class() {
        let cfg = MachineConfig::mpc755();
        let fdiv = Inst::Fdiv {
            fd: Fpr::new(1),
            fa: Fpr::new(2),
            fb: Fpr::new(3),
        };
        assert_eq!(cfg.result_latency(&fdiv), cfg.lat_fdiv);
        assert!(cfg.is_blocking(&fdiv));
        let add = Inst::Add {
            rd: Gpr::new(3),
            ra: Gpr::new(4),
            rb: Gpr::new(5),
        };
        assert_eq!(cfg.result_latency(&add), 1);
        assert!(!cfg.is_blocking(&add));
    }
}
