//! The linked program container: the interface between the compiler on one
//! side and the simulator and WCET analyzer on the other.
//!
//! A [`Program`] carries the text section (instructions at consecutive word
//! addresses from `config.text_base`), initialized data, symbol tables for
//! functions and global variables, and the *annotation table* produced by the
//! compiler's pro-forma annotation mechanism (paper §3.4): for each source
//! `__builtin_annotation`, the format string and the final machine location of
//! every argument.

use std::collections::BTreeMap;
use std::fmt;

use crate::config::MachineConfig;
use crate::encode::{decode, encode, DecodeError};
use crate::inst::Inst;
use crate::reg::{Fpr, Gpr};

/// A function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSym {
    /// Function name.
    pub name: String,
    /// Entry address.
    pub entry: u32,
    /// Size in instruction words.
    pub len_words: u32,
}

/// Element type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 32-bit signed integer.
    I32,
    /// 64-bit IEEE double.
    F64,
}

impl ElemTy {
    /// Size of one element in bytes.
    pub fn size(self) -> u32 {
        match self {
            ElemTy::I32 => 4,
            ElemTy::F64 => 8,
        }
    }
}

/// A global-variable symbol (scalar when `len == 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSym {
    /// Variable name.
    pub name: String,
    /// Base address.
    pub addr: u32,
    /// Element type.
    pub elem: ElemTy,
    /// Number of elements.
    pub len: u32,
}

/// An initialized datum in the data section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataValue {
    /// A 32-bit word.
    I32(i32),
    /// A 64-bit double.
    F64(f64),
}

/// The final machine location of an annotation argument, as substituted into
/// the `%i` tokens of the format string (paper §3.4: "machine register, stack
/// slot or global symbol"). Memory locations carry the stored element type so
/// the value can be observed faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgLoc {
    /// A general-purpose register.
    Gpr(Gpr),
    /// A floating-point register.
    Fpr(Fpr),
    /// A stack slot at the given byte offset from the stack pointer.
    Stack(i16, ElemTy),
    /// A global memory location at the given absolute address.
    Global(u32, ElemTy),
}

impl fmt::Display for ArgLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgLoc::Gpr(r) => r.fmt(f),
            ArgLoc::Fpr(r) => r.fmt(f),
            ArgLoc::Stack(off, _) => write!(f, "sp[{off}]"),
            ArgLoc::Global(addr, _) => write!(f, "@{addr:#010x}"),
        }
    }
}

/// One entry of the annotation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationEntry {
    /// The id carried by the corresponding `annot` marker instruction.
    pub id: u16,
    /// The format string, with `%1`, `%2`, … referring to `args`.
    pub format: String,
    /// Final locations of the arguments, in order.
    pub args: Vec<ArgLoc>,
}

impl AnnotationEntry {
    /// The format string with every `%i` token replaced by the final location
    /// of the i-th argument — the text the paper's scheme emits as an
    /// assembly comment (e.g. `0 <= r3 <= @32 < 360`).
    pub fn resolved_text(&self) -> String {
        let mut out = String::new();
        let mut chars = self.format.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '%' {
                let mut num = String::new();
                while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                    num.push(chars.next().expect("peeked digit"));
                }
                match num.parse::<usize>() {
                    Ok(i) if i >= 1 && i <= self.args.len() => {
                        out.push_str(&self.args[i - 1].to_string());
                    }
                    _ => {
                        out.push('%');
                        out.push_str(&num);
                    }
                }
            } else {
                out.push(c);
            }
        }
        out
    }
}

/// A linked executable program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The machine configuration the program was linked against.
    pub config: MachineConfig,
    /// Text section: instruction `i` lives at `config.text_base + 4 * i`.
    pub code: Vec<Inst>,
    /// Program entry point (address of the function to run).
    pub entry: u32,
    /// Function symbols, sorted by entry address.
    pub functions: Vec<FuncSym>,
    /// Global-variable symbols.
    pub globals: Vec<GlobalSym>,
    /// Initialized data: absolute address → value.
    pub data: BTreeMap<u32, DataValue>,
    /// Base address of the floating-point constant pool (the TOC register
    /// `r2` points here at startup).
    pub const_pool_base: u32,
    /// Base address for small-data-area addressing (`r13` points here).
    pub sda_base: u32,
    /// The annotation table, indexed by marker id.
    pub annotations: Vec<AnnotationEntry>,
}

impl Program {
    /// The address of the instruction at `index` in the text section.
    pub fn addr_of(&self, index: usize) -> u32 {
        self.config.text_base + 4 * index as u32
    }

    /// The instruction at byte address `addr`, if it lies in the text section.
    pub fn inst_at(&self, addr: u32) -> Option<&Inst> {
        if addr < self.config.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        self.code.get(((addr - self.config.text_base) / 4) as usize)
    }

    /// Total text-section size in bytes.
    pub fn text_size(&self) -> u32 {
        4 * self.code.len() as u32
    }

    /// Encodes the text section to binary words.
    pub fn encode_text(&self) -> Vec<u32> {
        self.code
            .iter()
            .enumerate()
            .map(|(i, inst)| encode(inst, self.addr_of(i)))
            .collect()
    }

    /// Decodes binary words back into instructions (what the WCET analyzer
    /// does to reconstruct the program).
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode_text(config: &MachineConfig, words: &[u32]) -> Result<Vec<Inst>, DecodeError> {
        words
            .iter()
            .enumerate()
            .map(|(i, &w)| decode(w, config.text_base + 4 * i as u32))
            .collect()
    }

    /// The function symbol containing `addr`, if any.
    pub fn function_at(&self, addr: u32) -> Option<&FuncSym> {
        self.functions
            .iter()
            .find(|f| addr >= f.entry && addr < f.entry + 4 * f.len_words)
    }

    /// The function symbol with the given name, if any.
    pub fn function(&self, name: &str) -> Option<&FuncSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The global symbol with the given name, if any.
    pub fn global(&self, name: &str) -> Option<&GlobalSym> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The annotation entry for a marker id, if any.
    pub fn annotation(&self, id: u16) -> Option<&AnnotationEntry> {
        self.annotations.iter().find(|a| a.id == id)
    }

    /// A human-readable disassembly listing with function labels and
    /// annotation comments in the style the paper describes
    /// (`# annotation: 0 <= r3 <= @32 < 360`).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, inst) in self.code.iter().enumerate() {
            let addr = self.addr_of(i);
            if let Some(f) = self.functions.iter().find(|f| f.entry == addr) {
                out.push_str(&format!("{}:\n", f.name));
            }
            if let Inst::Annot { id } = inst {
                if let Some(entry) = self.annotation(*id) {
                    out.push_str(&format!(
                        "{addr:#010x}:    # annotation: {}\n",
                        entry.resolved_text()
                    ));
                    continue;
                }
            }
            out.push_str(&format!("{addr:#010x}:    {inst}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Gpr;

    fn sample() -> Program {
        let config = MachineConfig::mpc755();
        let code = vec![Inst::li(Gpr::new(3), 1), Inst::Annot { id: 0 }, Inst::Blr];
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "f".into(),
                entry: config.text_base,
                len_words: 3,
            }],
            globals: vec![GlobalSym {
                name: "x".into(),
                addr: config.data_base,
                elem: ElemTy::I32,
                len: 1,
            }],
            data: BTreeMap::new(),
            const_pool_base: config.data_base + 0x1000,
            sda_base: config.data_base + 0x8000,
            annotations: vec![AnnotationEntry {
                id: 0,
                format: "0 <= %1 < 360".into(),
                args: vec![ArgLoc::Gpr(Gpr::new(3))],
            }],
            code,
            config,
        }
    }

    #[test]
    fn addressing() {
        let p = sample();
        assert_eq!(p.addr_of(0), p.config.text_base);
        assert_eq!(p.inst_at(p.config.text_base + 8), Some(&Inst::Blr));
        assert_eq!(p.inst_at(p.config.text_base + 2), None); // unaligned
        assert_eq!(p.text_size(), 12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let words = p.encode_text();
        let back = Program::decode_text(&p.config, &words).unwrap();
        assert_eq!(back, p.code);
    }

    #[test]
    fn symbol_lookup() {
        let p = sample();
        assert_eq!(p.function("f").unwrap().entry, p.config.text_base);
        assert!(p.function("g").is_none());
        assert_eq!(p.function_at(p.config.text_base + 8).unwrap().name, "f");
        assert!(p.function_at(p.config.text_base + 12).is_none());
        assert_eq!(p.global("x").unwrap().elem, ElemTy::I32);
    }

    #[test]
    fn annotation_resolution() {
        let p = sample();
        assert_eq!(p.annotation(0).unwrap().resolved_text(), "0 <= r3 < 360");
        let listing = p.disassemble();
        assert!(listing.contains("# annotation: 0 <= r3 < 360"), "{listing}");
        assert!(listing.starts_with("f:\n"));
    }

    #[test]
    fn resolved_text_handles_malformed_tokens() {
        let e = AnnotationEntry {
            id: 1,
            format: "%1 and %9 and %".into(),
            args: vec![ArgLoc::Stack(32, ElemTy::I32)],
        };
        assert_eq!(e.resolved_text(), "sp[32] and %9 and %");
    }
}
