//! 32-bit binary instruction encoding and decoding.
//!
//! Encodings follow the real PowerPC UISA formats (D, X, XO, A, B, I, M) with
//! the real primary/extended opcodes, so that the WCET analyzer genuinely
//! reconstructs programs from binary words rather than from compiler IR. The
//! three extension instructions (`itof`, `ftoi`, `annot`) use primary opcode 2,
//! which is illegal on 32-bit PowerPC implementations.
//!
//! Branch targets are resolved absolute addresses in [`Inst`]; encoding
//! converts them to PC-relative displacements and decoding converts back,
//! which is why both functions take the instruction's address.

use std::fmt;

use crate::inst::{Cond, Inst};
use crate::reg::{Cr, Fpr, Gpr};

/// Error produced when a word cannot be decoded into a known instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
    /// The address the word was fetched from.
    pub addr: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot decode word {:#010x} at address {:#010x}",
            self.word, self.addr
        )
    }
}

impl std::error::Error for DecodeError {}

const OPCD_EXT: u32 = 2; // implementation-defined extension space
const EXT_ANNOT: u32 = 0;
const EXT_ITOF: u32 = 1;
const EXT_FTOI: u32 = 2;

fn d_form(op: u32, rt: u32, ra: u32, imm: u32) -> u32 {
    (op << 26) | (rt << 21) | (ra << 16) | (imm & 0xFFFF)
}

fn x_form(op: u32, rt: u32, ra: u32, rb: u32, xo: u32) -> u32 {
    (op << 26) | (rt << 21) | (ra << 16) | (rb << 11) | (xo << 1)
}

fn a_form(frt: u32, fra: u32, frb: u32, frc: u32, xo: u32) -> u32 {
    (63 << 26) | (frt << 21) | (fra << 16) | (frb << 11) | (frc << 6) | (xo << 1)
}

fn g(i: u32) -> Gpr {
    Gpr::new(i as u8)
}
fn fp(i: u32) -> Fpr {
    Fpr::new(i as u8)
}

fn cond_to_bo_bi(cond: Cond, cr: Cr) -> (u32, u32) {
    // CR field bits: 0 = LT, 1 = GT, 2 = EQ. BO 12 = branch if true, 4 = if false.
    let (bo, bit) = match cond {
        Cond::Lt => (12, 0),
        Cond::Gt => (12, 1),
        Cond::Eq => (12, 2),
        Cond::Ge => (4, 0),
        Cond::Le => (4, 1),
        Cond::Ne => (4, 2),
    };
    (bo, u32::from(cr.index()) * 4 + bit)
}

fn bo_bi_to_cond(bo: u32, bi: u32) -> Option<(Cond, Cr)> {
    let cr = Cr::try_new((bi / 4) as u8)?;
    let cond = match (bo, bi % 4) {
        (12, 0) => Cond::Lt,
        (12, 1) => Cond::Gt,
        (12, 2) => Cond::Eq,
        (4, 0) => Cond::Ge,
        (4, 1) => Cond::Le,
        (4, 2) => Cond::Ne,
        _ => return None,
    };
    Some((cond, cr))
}

/// Encodes an instruction located at byte address `addr` into its binary word.
///
/// # Panics
///
/// Panics if a branch displacement does not fit its encoding field
/// (±32 KiB for conditional branches, ±32 MiB for unconditional ones), which
/// indicates a compiler layout bug rather than a recoverable condition.
pub fn encode(inst: &Inst, addr: u32) -> u32 {
    use Inst::*;
    let r = |x: Gpr| u32::from(x.index());
    let fr = |x: Fpr| u32::from(x.index());
    match *inst {
        Addi { rd, ra, imm } => d_form(14, r(rd), r(ra), imm as u16 as u32),
        Addis { rd, ra, imm } => d_form(15, r(rd), r(ra), imm as u16 as u32),
        Mulli { rd, ra, imm } => d_form(7, r(rd), r(ra), imm as u16 as u32),
        // D-form logical instructions put the source in the rt slot and the
        // destination in the ra slot.
        Andi { rd, ra, imm } => d_form(28, r(ra), r(rd), u32::from(imm)),
        Ori { rd, ra, imm } => d_form(24, r(ra), r(rd), u32::from(imm)),
        Xori { rd, ra, imm } => d_form(26, r(ra), r(rd), u32::from(imm)),
        Add { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 266),
        Subf { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 40),
        Mullw { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 235),
        Divw { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 491),
        Divwu { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 459),
        Neg { rd, ra } => x_form(31, r(rd), r(ra), 0, 104),
        And { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 28),
        Or { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 444),
        Xor { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 316),
        Slw { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 24),
        Srw { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 536),
        Sraw { rd, ra, rb } => x_form(31, r(ra), r(rd), r(rb), 792),
        Srawi { rd, ra, sh } => x_form(31, r(ra), r(rd), u32::from(sh), 824),
        Rlwinm { rd, ra, sh, mb, me } => {
            (21 << 26)
                | (r(ra) << 21)
                | (r(rd) << 16)
                | (u32::from(sh) << 11)
                | (u32::from(mb) << 6)
                | (u32::from(me) << 1)
        }
        Lwz { rd, d, ra } => d_form(32, r(rd), r(ra), d as u16 as u32),
        Stw { rs, d, ra } => d_form(36, r(rs), r(ra), d as u16 as u32),
        Stwu { rs, d, ra } => d_form(37, r(rs), r(ra), d as u16 as u32),
        Lfd { fd, d, ra } => d_form(50, fr(fd), r(ra), d as u16 as u32),
        Stfd { fs, d, ra } => d_form(54, fr(fs), r(ra), d as u16 as u32),
        Lwzx { rd, ra, rb } => x_form(31, r(rd), r(ra), r(rb), 23),
        Stwx { rs, ra, rb } => x_form(31, r(rs), r(ra), r(rb), 151),
        Lfdx { fd, ra, rb } => x_form(31, fr(fd), r(ra), r(rb), 599),
        Stfdx { fs, ra, rb } => x_form(31, fr(fs), r(ra), r(rb), 727),
        Fadd { fd, fa, fb } => a_form(fr(fd), fr(fa), fr(fb), 0, 21),
        Fsub { fd, fa, fb } => a_form(fr(fd), fr(fa), fr(fb), 0, 20),
        Fmul { fd, fa, fc } => a_form(fr(fd), fr(fa), 0, fr(fc), 25),
        Fdiv { fd, fa, fb } => a_form(fr(fd), fr(fa), fr(fb), 0, 18),
        Fmadd { fd, fa, fc, fb } => a_form(fr(fd), fr(fa), fr(fb), fr(fc), 29),
        Fneg { fd, fa } => x_form(63, fr(fd), 0, fr(fa), 40),
        Fabs { fd, fa } => x_form(63, fr(fd), 0, fr(fa), 264),
        Fmr { fd, fa } => x_form(63, fr(fd), 0, fr(fa), 72),
        Cmpw { cr, ra, rb } => x_form(31, u32::from(cr.index()) << 2, r(ra), r(rb), 0),
        Cmpwi { cr, ra, imm } => d_form(11, u32::from(cr.index()) << 2, r(ra), imm as u16 as u32),
        Fcmpu { cr, fa, fb } => x_form(63, u32::from(cr.index()) << 2, fr(fa), fr(fb), 0),
        B { target } => {
            let rel = target.wrapping_sub(addr) as i32;
            assert!(
                (-(1 << 25)..(1 << 25)).contains(&rel),
                "b displacement out of range"
            );
            (18 << 26) | ((rel as u32) & 0x03FF_FFFC)
        }
        Bl { target } => {
            let rel = target.wrapping_sub(addr) as i32;
            assert!(
                (-(1 << 25)..(1 << 25)).contains(&rel),
                "bl displacement out of range"
            );
            (18 << 26) | ((rel as u32) & 0x03FF_FFFC) | 1
        }
        Bc { cond, cr, target } => {
            let rel = target.wrapping_sub(addr) as i32;
            assert!(
                (-(1 << 15)..(1 << 15)).contains(&rel),
                "bc displacement out of range"
            );
            let (bo, bi) = cond_to_bo_bi(cond, cr);
            (16 << 26) | (bo << 21) | (bi << 16) | ((rel as u32) & 0xFFFC)
        }
        Blr => 0x4E80_0020,
        Mflr { rd } => (31 << 26) | (r(rd) << 21) | (0x100 << 11) | (339 << 1),
        Mtlr { rs } => (31 << 26) | (r(rs) << 21) | (0x100 << 11) | (467 << 1),
        Itof { fd, ra } => (OPCD_EXT << 26) | (EXT_ITOF << 21) | (fr(fd) << 16) | (r(ra) << 11),
        Ftoi { rd, fa } => (OPCD_EXT << 26) | (EXT_FTOI << 21) | (r(rd) << 16) | (fr(fa) << 11),
        Annot { id } => (OPCD_EXT << 26) | (EXT_ANNOT << 21) | u32::from(id),
        Nop => 0x6000_0000, // ori r0, r0, 0
    }
}

/// Decodes the binary word fetched from byte address `addr`.
///
/// Decoding is the inverse of [`encode`] on every instruction the compiler
/// can produce; the one canonicalization is that `ori r0, r0, 0` decodes as
/// [`Inst::Nop`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not correspond to any instruction
/// of the subset.
pub fn decode(word: u32, addr: u32) -> Result<Inst, DecodeError> {
    use Inst::*;
    let err = Err(DecodeError { word, addr });
    let op = word >> 26;
    let rt = (word >> 21) & 31;
    let ra = (word >> 16) & 31;
    let rb = (word >> 11) & 31;
    let imm_u = word & 0xFFFF;
    let imm_s = imm_u as u16 as i16;
    Ok(match op {
        2 => match rt {
            EXT_ANNOT => Annot {
                id: (word & 0xFFFF) as u16,
            },
            EXT_ITOF => Itof {
                fd: fp(ra),
                ra: g(rb),
            },
            EXT_FTOI => Ftoi {
                rd: g(ra),
                fa: fp(rb),
            },
            _ => return err,
        },
        7 => Mulli {
            rd: g(rt),
            ra: g(ra),
            imm: imm_s,
        },
        11 => {
            if rt & 3 != 0 {
                return err;
            }
            Cmpwi {
                cr: Cr::new((rt >> 2) as u8),
                ra: g(ra),
                imm: imm_s,
            }
        }
        14 => Addi {
            rd: g(rt),
            ra: g(ra),
            imm: imm_s,
        },
        15 => Addis {
            rd: g(rt),
            ra: g(ra),
            imm: imm_s,
        },
        16 => {
            let bo = rt;
            let bi = ra;
            let Some((cond, cr)) = bo_bi_to_cond(bo, bi) else {
                return err;
            };
            let bd = ((word & 0xFFFC) as u16 as i16) as i32;
            Bc {
                cond,
                cr,
                target: addr.wrapping_add(bd as u32),
            }
        }
        18 => {
            let li = {
                let v = word & 0x03FF_FFFC;
                // sign-extend 26-bit value
                ((v << 6) as i32) >> 6
            };
            let target = addr.wrapping_add(li as u32);
            if word & 1 == 1 {
                Bl { target }
            } else {
                B { target }
            }
        }
        19 if word == 0x4E80_0020 => Blr,
        19 => return err,
        21 => {
            if word & 1 != 0 {
                return err;
            }
            Rlwinm {
                rd: g(ra),
                ra: g(rt),
                sh: rb as u8,
                mb: ((word >> 6) & 31) as u8,
                me: ((word >> 1) & 31) as u8,
            }
        }
        24 => {
            if word == 0x6000_0000 {
                Nop
            } else {
                Ori {
                    rd: g(ra),
                    ra: g(rt),
                    imm: imm_u as u16,
                }
            }
        }
        26 => Xori {
            rd: g(ra),
            ra: g(rt),
            imm: imm_u as u16,
        },
        28 => Andi {
            rd: g(ra),
            ra: g(rt),
            imm: imm_u as u16,
        },
        32 => Lwz {
            rd: g(rt),
            d: imm_s,
            ra: g(ra),
        },
        36 => Stw {
            rs: g(rt),
            d: imm_s,
            ra: g(ra),
        },
        37 => Stwu {
            rs: g(rt),
            d: imm_s,
            ra: g(ra),
        },
        50 => Lfd {
            fd: fp(rt),
            d: imm_s,
            ra: g(ra),
        },
        54 => Stfd {
            fs: fp(rt),
            d: imm_s,
            ra: g(ra),
        },
        31 => {
            let xo = (word >> 1) & 0x3FF;
            match xo {
                0 => {
                    if rt & 3 != 0 {
                        return err;
                    }
                    Cmpw {
                        cr: Cr::new((rt >> 2) as u8),
                        ra: g(ra),
                        rb: g(rb),
                    }
                }
                23 => Lwzx {
                    rd: g(rt),
                    ra: g(ra),
                    rb: g(rb),
                },
                151 => Stwx {
                    rs: g(rt),
                    ra: g(ra),
                    rb: g(rb),
                },
                599 => Lfdx {
                    fd: fp(rt),
                    ra: g(ra),
                    rb: g(rb),
                },
                727 => Stfdx {
                    fs: fp(rt),
                    ra: g(ra),
                    rb: g(rb),
                },
                28 => And {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                444 => Or {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                316 => Xor {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                24 => Slw {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                536 => Srw {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                792 => Sraw {
                    rd: g(ra),
                    ra: g(rt),
                    rb: g(rb),
                },
                824 => Srawi {
                    rd: g(ra),
                    ra: g(rt),
                    sh: rb as u8,
                },
                339 => {
                    if ((word >> 11) & 0x3FF) != 0x100 {
                        return err;
                    }
                    Mflr { rd: g(rt) }
                }
                467 => {
                    if ((word >> 11) & 0x3FF) != 0x100 {
                        return err;
                    }
                    Mtlr { rs: g(rt) }
                }
                // XO-form: OE bit occupies bit 21 of the extended opcode space
                _ => match xo & 0x1FF {
                    266 => Add {
                        rd: g(rt),
                        ra: g(ra),
                        rb: g(rb),
                    },
                    40 => Subf {
                        rd: g(rt),
                        ra: g(ra),
                        rb: g(rb),
                    },
                    235 => Mullw {
                        rd: g(rt),
                        ra: g(ra),
                        rb: g(rb),
                    },
                    491 => Divw {
                        rd: g(rt),
                        ra: g(ra),
                        rb: g(rb),
                    },
                    459 => Divwu {
                        rd: g(rt),
                        ra: g(ra),
                        rb: g(rb),
                    },
                    104 => {
                        if rb != 0 {
                            return err;
                        }
                        Neg {
                            rd: g(rt),
                            ra: g(ra),
                        }
                    }
                    _ => return err,
                },
            }
        }
        63 => {
            let xo5 = (word >> 1) & 0x1F;
            let frc = (word >> 6) & 31;
            match xo5 {
                21 if frc == 0 => Fadd {
                    fd: fp(rt),
                    fa: fp(ra),
                    fb: fp(rb),
                },
                20 if frc == 0 => Fsub {
                    fd: fp(rt),
                    fa: fp(ra),
                    fb: fp(rb),
                },
                25 if rb == 0 => Fmul {
                    fd: fp(rt),
                    fa: fp(ra),
                    fc: fp(frc),
                },
                18 if frc == 0 => Fdiv {
                    fd: fp(rt),
                    fa: fp(ra),
                    fb: fp(rb),
                },
                29 => Fmadd {
                    fd: fp(rt),
                    fa: fp(ra),
                    fc: fp(frc),
                    fb: fp(rb),
                },
                _ => {
                    let xo10 = (word >> 1) & 0x3FF;
                    match xo10 {
                        0 => {
                            if rt & 3 != 0 {
                                return err;
                            }
                            Fcmpu {
                                cr: Cr::new((rt >> 2) as u8),
                                fa: fp(ra),
                                fb: fp(rb),
                            }
                        }
                        40 if ra == 0 => Fneg {
                            fd: fp(rt),
                            fa: fp(rb),
                        },
                        264 if ra == 0 => Fabs {
                            fd: fp(rt),
                            fa: fp(rb),
                        },
                        72 if ra == 0 => Fmr {
                            fd: fp(rt),
                            fa: fp(rb),
                        },
                        _ => return err,
                    }
                }
            }
        }
        _ => return err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Cr, Fpr, Gpr};

    fn roundtrip(inst: Inst, addr: u32) {
        let word = encode(&inst, addr);
        let back = decode(word, addr).unwrap_or_else(|e| panic!("{e} (for {inst})"));
        assert_eq!(
            back, inst,
            "round-trip failed for {inst}: word {word:#010x}"
        );
    }

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn fp(i: u8) -> Fpr {
        Fpr::new(i)
    }

    #[test]
    fn roundtrip_all_shapes() {
        let addr = 0x0010_0040;
        let c = Cr::new(3);
        let insts = vec![
            Inst::Addi {
                rd: g(3),
                ra: g(4),
                imm: -32768,
            },
            Inst::Addis {
                rd: g(31),
                ra: g(0),
                imm: 0x7FFF,
            },
            Inst::Mulli {
                rd: g(5),
                ra: g(6),
                imm: 100,
            },
            Inst::Andi {
                rd: g(7),
                ra: g(8),
                imm: 0xFFFF,
            },
            Inst::Ori {
                rd: g(9),
                ra: g(10),
                imm: 1,
            },
            Inst::Xori {
                rd: g(11),
                ra: g(12),
                imm: 0x8000,
            },
            Inst::Add {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Subf {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Mullw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Divw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Divwu {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Neg { rd: g(3), ra: g(4) },
            Inst::And {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Or {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Xor {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Slw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Srw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Sraw {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Srawi {
                rd: g(3),
                ra: g(4),
                sh: 31,
            },
            Inst::Rlwinm {
                rd: g(3),
                ra: g(4),
                sh: 5,
                mb: 0,
                me: 26,
            },
            Inst::Lwz {
                rd: g(3),
                d: -4,
                ra: g(1),
            },
            Inst::Stw {
                rs: g(3),
                d: 4,
                ra: g(1),
            },
            Inst::Stwu {
                rs: g(1),
                d: -64,
                ra: g(1),
            },
            Inst::Lfd {
                fd: fp(1),
                d: 8,
                ra: g(2),
            },
            Inst::Stfd {
                fs: fp(2),
                d: -8,
                ra: g(1),
            },
            Inst::Lwzx {
                rd: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Stwx {
                rs: g(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Lfdx {
                fd: fp(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Stfdx {
                fs: fp(3),
                ra: g(4),
                rb: g(5),
            },
            Inst::Fadd {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            Inst::Fsub {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            Inst::Fmul {
                fd: fp(1),
                fa: fp(2),
                fc: fp(3),
            },
            Inst::Fdiv {
                fd: fp(1),
                fa: fp(2),
                fb: fp(3),
            },
            Inst::Fmadd {
                fd: fp(1),
                fa: fp(2),
                fc: fp(3),
                fb: fp(4),
            },
            Inst::Fneg {
                fd: fp(1),
                fa: fp(2),
            },
            Inst::Fabs {
                fd: fp(1),
                fa: fp(2),
            },
            Inst::Fmr {
                fd: fp(1),
                fa: fp(2),
            },
            Inst::Cmpw {
                cr: c,
                ra: g(4),
                rb: g(5),
            },
            Inst::Cmpwi {
                cr: c,
                ra: g(4),
                imm: -1,
            },
            Inst::Fcmpu {
                cr: c,
                fa: fp(4),
                fb: fp(5),
            },
            Inst::B {
                target: addr + 0x400,
            },
            Inst::Bl {
                target: addr.wrapping_sub(0x400),
            },
            Inst::Bc {
                cond: Cond::Le,
                cr: c,
                target: addr + 0x100,
            },
            Inst::Bc {
                cond: Cond::Eq,
                cr: Cr::CR0,
                target: addr.wrapping_sub(0x7FF8),
            },
            Inst::Blr,
            Inst::Mflr { rd: g(0) },
            Inst::Mtlr { rs: g(0) },
            Inst::Itof {
                fd: fp(1),
                ra: g(3),
            },
            Inst::Ftoi {
                rd: g(3),
                fa: fp(1),
            },
            Inst::Annot { id: 0xABCD },
            Inst::Nop,
        ];
        for inst in insts {
            roundtrip(inst, addr);
        }
    }

    #[test]
    fn all_conditions_roundtrip() {
        for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            for crf in 0..8 {
                roundtrip(
                    Inst::Bc {
                        cond,
                        cr: Cr::new(crf),
                        target: 0x0010_0000,
                    },
                    0x0010_0200,
                );
            }
        }
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against the PowerPC architecture manual.
        assert_eq!(encode(&Inst::Blr, 0), 0x4E80_0020);
        assert_eq!(encode(&Inst::Nop, 0), 0x6000_0000);
        // addi r3, r4, 1 => 0x38640001
        assert_eq!(
            encode(
                &Inst::Addi {
                    rd: g(3),
                    ra: g(4),
                    imm: 1
                },
                0
            ),
            0x3864_0001
        );
        // lwz r3, 8(r1) => 0x80610008
        assert_eq!(
            encode(
                &Inst::Lwz {
                    rd: g(3),
                    d: 8,
                    ra: g(1)
                },
                0
            ),
            0x8061_0008
        );
        // mflr r0 => 0x7C0802A6
        assert_eq!(encode(&Inst::Mflr { rd: g(0) }, 0), 0x7C08_02A6);
        // mtlr r0 => 0x7C0803A6
        assert_eq!(encode(&Inst::Mtlr { rs: g(0) }, 0), 0x7C08_03A6);
        // fadd f1, f2, f3 => 0xFC22182A
        assert_eq!(
            encode(
                &Inst::Fadd {
                    fd: fp(1),
                    fa: fp(2),
                    fb: fp(3)
                },
                0
            ),
            0xFC22_182A
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(0xFFFF_FFFF, 0).is_err());
        assert!(decode(0x0000_0000, 0).is_err());
        // opcode 31 with unknown xo
        assert!(decode((31 << 26) | (999 << 1), 0).is_err());
    }

    #[test]
    fn branch_displacements_are_relative() {
        let inst = Inst::B {
            target: 0x0010_0000,
        };
        let w1 = encode(&inst, 0x0010_0100);
        let w2 = encode(&inst, 0x0010_0200);
        assert_ne!(w1, w2);
        assert_eq!(decode(w1, 0x0010_0100).unwrap(), inst);
        assert_eq!(decode(w2, 0x0010_0200).unwrap(), inst);
    }

    #[test]
    #[should_panic(expected = "bc displacement out of range")]
    fn bc_range_checked() {
        let inst = Inst::Bc {
            cond: Cond::Eq,
            cr: Cr::CR0,
            target: 0x0020_0000,
        };
        let _ = encode(&inst, 0x0010_0000);
    }
}
