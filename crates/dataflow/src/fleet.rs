//! Workloads: the named node suite of the Figure 2 reproduction.
//!
//! The named suite mirrors the paper's observations: most nodes are pure
//! dataflow (filters, gains, saturations — these benefit most from register
//! allocation), a few are logic-heavy, and some are dominated by hardware
//! signal acquisitions, whose fixed long latency is *not* improved by code
//! optimization — the paper's explanation for the non-uniform WCET gains in
//! Figure 2.
//!
//! The seeded *random* fleet generator used by Table 1, the fuzz oracle
//! and the soak tests lives in `vericomp_testkit::fleet`, keeping this
//! crate free of any randomness.

use vericomp_minic::ast::Cmp;

use crate::node::{FWire, Node, NodeBuilder};

/// Builds the named evaluation suite (26 nodes).
pub fn named_suite() -> Vec<Node> {
    vec![
        pitch_law("pitch_normal_law", 4, 3, 1),
        pitch_law("roll_normal_law", 3, 3, 1),
        pitch_law("yaw_damper", 2, 2, 1),
        pitch_law("pitch_alt_law", 3, 2, 1),
        pitch_law("direct_law_el", 2, 1, 1),
        pitch_law("direct_law_ail", 2, 1, 1),
        filter_bank("accel_filter_x", 5),
        filter_bank("accel_filter_y", 5),
        filter_bank("accel_filter_z", 6),
        filter_bank("gyro_filter_p", 4),
        filter_bank("gyro_filter_q", 4),
        protection("aoa_protection"),
        protection("overspeed_protection"),
        protection("bank_angle_protection"),
        logic_node("gear_logic"),
        logic_node("flap_interlock"),
        mode_voter("lateral_mode_voter"),
        acquisition_node("airdata_acquisition", 6),
        acquisition_node("ir_acquisition", 4),
        acquisition_node("radio_alt_monitor", 3),
        envelope_node("envelope_schedule"),
        envelope_node("gain_schedule"),
        trim_node("pitch_trim"),
        trim_node("rudder_trim"),
        stall_warning("stall_warning"),
        stall_warning("windshear_warning"),
    ]
}

/// A warning channel built on the confirmation symbols: band-pass the
/// signal, remove jitter with a deadband, confirm exceedance over several
/// cycles, and latch the alarm until an explicit reset discrete.
fn stall_warning(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let aoa = b.acquisition(0);
    let shaped = b.second_order_filter(aoa, 0.4, 0.2, -0.35);
    let centered = b.deadband(shaped, 0.75);
    let exceeded = b.cmp_const(centered, Cmp::Gt, 6.0);
    let confirmed = b.debounce(exceeded, 3);
    let reset_in = b.global_input(format!("{name}_reset"));
    let reset = b.cmp_const(reset_in, Cmp::Gt, 0.5);
    let alarm = b.sr_latch(confirmed, reset);
    b.output_b(format!("{name}_alarm"), alarm);
    let zero = b.constant(0.0);
    let one = b.constant(1.0);
    let indicator = b.switch_if(alarm, one, zero);
    b.actuator(11, indicator);
    b.build().expect("suite nodes are well-formed")
}

/// A classic inner-loop control law: acquisitions, filtered errors, PID,
/// scheduling gain, rate/authority limits, actuator command.
fn pitch_law(name: &str, n_filters: usize, n_gains: usize, acqs: u32) -> Node {
    let mut b = NodeBuilder::new(name);
    let cmd = b.global_input(format!("{name}_cmd"));
    let mut meas = b.acquisition(0);
    for port in 1..acqs {
        let m2 = b.acquisition(port);
        let s = b.sum(meas, m2);
        meas = b.gain(s, 1.0 / f64::from(port + 1));
    }
    let mut x = b.sub(cmd, meas);
    for i in 0..n_filters {
        x = b.first_order_filter(x, 0.2 + 0.1 * i as f64);
    }
    let mut u = b.pid(x, 2.0, 0.25, 0.5);
    for i in 0..n_gains {
        u = b.gain(u, 1.1 - 0.05 * i as f64);
    }
    let lim = b.rate_limiter(u, 0.5);
    let sat = b.saturation(lim, -30.0, 30.0);
    b.output(format!("{name}_surface"), sat);
    b.actuator(8, sat);
    b.build().expect("suite nodes are well-formed")
}

/// A chain of filters with mixing — pure dataflow, no control flow.
fn filter_bank(name: &str, depth: usize) -> Node {
    let mut b = NodeBuilder::new(name);
    let raw = b.global_input(format!("{name}_raw"));
    let mut x = raw;
    let mut taps: Vec<FWire> = Vec::new();
    for i in 0..depth {
        x = b.first_order_filter(x, 0.05 + 0.07 * i as f64);
        taps.push(x);
    }
    // weighted recombination of the taps
    let mut acc = b.gain(taps[0], 0.5);
    for (i, &tap) in taps.iter().enumerate().skip(1) {
        let w = b.gain(tap, 0.5 / (i as f64 + 1.0));
        acc = b.sum(acc, w);
    }
    let d = b.delay(acc);
    let blend = b.sum(acc, d);
    let out = b.gain(blend, 0.5);
    b.output(format!("{name}_out"), out);
    b.build().expect("suite nodes are well-formed")
}

/// An envelope-protection node: comparators, hysteresis, switched authority.
fn protection(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let v = b.acquisition(0);
    let vf = b.first_order_filter(v, 0.3);
    let high = b.hysteresis(vf, 18.0, 22.0);
    let extreme = b.cmp_const(vf, Cmp::Gt, 28.0);
    let active = b.or(high, extreme);
    let cmd = b.global_input(format!("{name}_cmd"));
    let authority = b.gain(cmd, 0.3);
    let limited = b.saturation(authority, -5.0, 5.0);
    let out = b.switch_if(active, limited, cmd);
    let arm = b.not(extreme);
    b.output_b(format!("{name}_armed"), arm);
    b.output_b(format!("{name}_active"), active);
    b.output(format!("{name}_out"), out);
    b.build().expect("suite nodes are well-formed")
}

/// Boolean-heavy interlock logic.
fn logic_node(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let w1 = b.global_input(format!("{name}_w1"));
    let w2 = b.global_input(format!("{name}_w2"));
    let w3 = b.global_input(format!("{name}_w3"));
    let c1 = b.cmp_const(w1, Cmp::Gt, 0.5);
    let c2 = b.cmp_const(w2, Cmp::Gt, 0.5);
    let c3 = b.cmp_const(w3, Cmp::Lt, 120.0);
    let two_of_three_a = b.and(c1, c2);
    let n1 = b.not(c1);
    let guard = b.and(n1, c3);
    let vote = b.or(two_of_three_a, guard);
    let latch = b.xor(vote, c3);
    let ok = b.and(vote, c3);
    b.output_b(format!("{name}_cmd"), ok);
    b.output_b(format!("{name}_warn"), latch);
    b.build().expect("suite nodes are well-formed")
}

/// Triplex voter: median of three sources by min/max composition.
fn mode_voter(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let a = b.acquisition(0);
    let c = b.acquisition(1);
    let d = b.acquisition(2);
    let hi1 = b.max(a, c);
    let lo1 = b.min(a, c);
    let hi2 = b.min(hi1, d);
    let median = b.max(lo1, hi2);
    let f = b.first_order_filter(median, 0.5);
    b.output(format!("{name}_value"), f);
    b.build().expect("suite nodes are well-formed")
}

/// Acquisition-dominated monitor: many I/O reads, light processing — the
/// Figure 2 nodes whose WCET barely improves under optimization.
fn acquisition_node(name: &str, ports: u32) -> Node {
    let mut b = NodeBuilder::new(name);
    let mut acc = b.acquisition(0);
    for p in 1..ports {
        let v = b.acquisition(p);
        acc = b.sum(acc, v);
    }
    let avg = b.gain(acc, 1.0 / f64::from(ports));
    let ok = b.cmp_const(avg, Cmp::Lt, 1000.0);
    b.output(format!("{name}_avg"), avg);
    b.output_b(format!("{name}_valid"), ok);
    b.actuator(9, avg);
    b.build().expect("suite nodes are well-formed")
}

/// Gain scheduling through interpolation tables, including the annotated
/// breakpoint search (the §3.4 experiment lives here).
fn envelope_node(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let mach = b.global_input(format!("{name}_mach"));
    let alt = b.global_input(format!("{name}_alt"));
    let k1 = b.lookup1d(
        mach,
        vec![1.0, 0.95, 0.85, 0.7, 0.6, 0.55, 0.5, 0.48],
        0.0,
        0.125,
    );
    let k2 = b.lookup_search(
        alt,
        vec![0.0, 1500.0, 5000.0, 12000.0, 25000.0, 41000.0],
        vec![1.0, 0.98, 0.9, 0.75, 0.6, 0.5],
    );
    let k = b.mul(k1, k2);
    let cmd = b.global_input(format!("{name}_cmd"));
    let scheduled = b.mul(cmd, k);
    let sat = b.saturation(scheduled, -25.0, 25.0);
    b.output(format!("{name}_out"), sat);
    b.build().expect("suite nodes are well-formed")
}

/// Slow trim integrator with authority logic.
fn trim_node(name: &str) -> Node {
    let mut b = NodeBuilder::new(name);
    let err = b.global_input(format!("{name}_err"));
    let dead = b.abs(err);
    let active = b.cmp_const(dead, Cmp::Gt, 0.25);
    let rate = b.saturation(err, -1.0, 1.0);
    let slow = b.gain(rate, 0.05);
    let zero = b.constant(0.0);
    let drive = b.switch_if(active, slow, zero);
    let pos = b.integrator(drive, 0.02, -12.0, 12.0);
    b.output(format!("{name}_pos"), pos);
    b.actuator(10, pos);
    b.build().expect("suite nodes are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::interp::Interp;

    #[test]
    fn named_suite_is_valid_and_diverse() {
        let suite = named_suite();
        assert_eq!(suite.len(), 26);
        for node in &suite {
            let p = node.to_minic();
            vericomp_minic::typeck::check(&p).unwrap_or_else(|e| panic!("{}: {e}", node.name()));
            assert!(node.len() >= 5, "{} too small", node.name());
        }
        // acquisition-heavy nodes exist (Figure 2's flat cases)
        assert!(suite.iter().any(|n| n.name().contains("acquisition")));
    }

    #[test]
    fn named_suite_nodes_run() {
        for node in named_suite() {
            let p = node.to_minic();
            let mut it = Interp::new(&p);
            for _ in 0..3 {
                it.call("step", &[])
                    .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
            }
        }
    }
}
