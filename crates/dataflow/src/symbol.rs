//! The flight-control symbol library.
//!
//! Every symbol consumes typed input wires and produces one output wire
//! (sinks produce none). `F` wires carry `double` signals, `B` wires carry
//! booleans. Stateful symbols (filters, delays, integrators, …) own state
//! globals generated per instance by the code generator.

/// Signal type of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigTy {
    /// A `double` signal.
    F,
    /// A boolean signal.
    B,
}

/// Comparison predicate of a comparator symbol.
pub use vericomp_minic::ast::Cmp;

/// A dataflow symbol (one block of the graphical specification).
#[derive(Debug, Clone, PartialEq)]
pub enum Symbol {
    // ---- sources ----
    /// Hardware signal acquisition from an I/O port (uncached, slow).
    Acquisition(u32),
    /// Input read from a named global (set by the scheduler/harness).
    GlobalInput(String),
    /// Constant source.
    Const(f64),
    /// Constant boolean source.
    ConstB(bool),

    // ---- arithmetic (F inputs, F output) ----
    /// `k * x`.
    Gain(f64),
    /// `a + b`.
    Sum2,
    /// `a - b`.
    Sub2,
    /// `a * b`.
    Mul2,
    /// `a / b` (IEEE semantics; division by zero yields ±inf).
    Div2,
    /// `min(a, b)`.
    Min2,
    /// `max(a, b)`.
    Max2,
    /// `|x|`.
    Abs,
    /// `-x`.
    Neg,
    /// Clamp into `[lo, hi]`.
    Saturation(f64, f64),

    // ---- stateful (F) ----
    /// First-order low-pass: `y += alpha * (x - y)`.
    FirstOrderFilter(f64),
    /// Unit delay: outputs the previous cycle's input (initially 0).
    Delay1,
    /// Rate limiter: output follows the input by at most `step` per cycle.
    RateLimiter(f64),
    /// Trapezoid-free integrator with saturation: `s = clamp(s + dt*x)`.
    Integrator {
        /// Integration step.
        dt: f64,
        /// Lower output clamp.
        lo: f64,
        /// Upper output clamp.
        hi: f64,
    },
    /// PID controller on the error input: `kp*e + ki*∫e + kd*(e - e_prev)`.
    Pid {
        /// Proportional gain.
        kp: f64,
        /// Integral gain (per cycle).
        ki: f64,
        /// Derivative gain (per cycle).
        kd: f64,
    },

    // ---- interpolation tables ----
    /// Uniform-grid linear interpolation: index computed arithmetically
    /// (no loop). `y = lerp(table, (x - x0) / dx)`.
    Lookup1d {
        /// Sample values at `x0 + k*dx`.
        table: Vec<f64>,
        /// Grid origin.
        x0: f64,
        /// Grid spacing.
        dx: f64,
    },
    /// Non-uniform breakpoint interpolation with a **data-dependent search
    /// loop** seeded from the previous cycle's index (a state global). The
    /// generated code carries a `__builtin_annotation` bounding the start
    /// index — the paper's §3.4 use case: without the annotation the WCET
    /// analyzer cannot bound the loop.
    Lookup1dSearch {
        /// Breakpoint abscissae (strictly increasing, ≥ 2 entries).
        breakpoints: Vec<f64>,
        /// Sample values (same length).
        values: Vec<f64>,
    },

    /// First-order IIR section with a zero:
    /// `y = b0*x + b1*x_prev - a1*y_prev` (two states).
    SecondOrderFilter {
        /// Feed-forward coefficient on the current sample.
        b0: f64,
        /// Feed-forward coefficient on the previous sample.
        b1: f64,
        /// Feedback coefficient on the previous output.
        a1: f64,
    },
    /// Deadband: zero inside `±width`, offset-removed signal outside.
    Deadband(f64),

    // ---- comparison & logic ----
    /// Compare the input against a constant: F → B.
    CmpConst(Cmp, f64),
    /// Hysteresis (Schmitt trigger): true above `hi`, false below `lo`,
    /// otherwise the previous output (state).
    Hysteresis {
        /// Falling threshold.
        lo: f64,
        /// Rising threshold.
        hi: f64,
    },
    /// Confirmation / debounce: true once the input has been true for
    /// `cycles` consecutive activations (integer counter state).
    Debounce(u32),
    /// Set/reset latch (reset priority), boolean state.
    SrLatch,
    /// Boolean conjunction.
    And2,
    /// Boolean disjunction.
    Or2,
    /// Boolean exclusive or.
    Xor2,
    /// Boolean negation.
    Not,
    /// `cond ? a : b` — inputs `(B, F, F)`, output F.
    SwitchIf,

    // ---- sinks ----
    /// Write the signal to a named global output.
    Output(String),
    /// Write the boolean signal to a named global output (stored as 0/1).
    OutputB(String),
    /// Actuator command: write to an I/O port.
    Actuator(u32),
}

impl Symbol {
    /// Input wire types, in order.
    pub fn input_types(&self) -> Vec<SigTy> {
        use SigTy::*;
        match self {
            Symbol::Acquisition(_)
            | Symbol::GlobalInput(_)
            | Symbol::Const(_)
            | Symbol::ConstB(_) => vec![],
            Symbol::Gain(_)
            | Symbol::Abs
            | Symbol::Neg
            | Symbol::Saturation(..)
            | Symbol::FirstOrderFilter(_)
            | Symbol::Delay1
            | Symbol::RateLimiter(_)
            | Symbol::Integrator { .. }
            | Symbol::Pid { .. }
            | Symbol::Lookup1d { .. }
            | Symbol::Lookup1dSearch { .. }
            | Symbol::SecondOrderFilter { .. }
            | Symbol::Deadband(_)
            | Symbol::CmpConst(..)
            | Symbol::Hysteresis { .. }
            | Symbol::Output(_)
            | Symbol::Actuator(_) => vec![F],
            Symbol::Sum2
            | Symbol::Sub2
            | Symbol::Mul2
            | Symbol::Div2
            | Symbol::Min2
            | Symbol::Max2 => vec![F, F],
            Symbol::And2 | Symbol::Or2 | Symbol::Xor2 | Symbol::SrLatch => vec![B, B],
            Symbol::Not | Symbol::OutputB(_) | Symbol::Debounce(_) => vec![B],
            Symbol::SwitchIf => vec![B, F, F],
        }
    }

    /// Output wire type (`None` for sinks).
    pub fn output_type(&self) -> Option<SigTy> {
        use SigTy::*;
        match self {
            Symbol::Output(_) | Symbol::OutputB(_) | Symbol::Actuator(_) => None,
            Symbol::ConstB(_)
            | Symbol::CmpConst(..)
            | Symbol::Hysteresis { .. }
            | Symbol::Debounce(_)
            | Symbol::SrLatch
            | Symbol::And2
            | Symbol::Or2
            | Symbol::Xor2
            | Symbol::Not => Some(B),
            _ => Some(F),
        }
    }

    /// Whether the output at cycle `t` depends on an input at cycle `t`
    /// (direct feedthrough). Only non-feedthrough symbols (the unit delay)
    /// may break dataflow cycles.
    pub fn is_feedthrough(&self) -> bool {
        !matches!(self, Symbol::Delay1)
    }

    /// Whether this symbol owns persistent state across cycles.
    pub fn is_stateful(&self) -> bool {
        matches!(
            self,
            Symbol::FirstOrderFilter(_)
                | Symbol::Delay1
                | Symbol::RateLimiter(_)
                | Symbol::Integrator { .. }
                | Symbol::Pid { .. }
                | Symbol::Lookup1dSearch { .. }
                | Symbol::Hysteresis { .. }
                | Symbol::SecondOrderFilter { .. }
                | Symbol::Debounce(_)
                | Symbol::SrLatch
        )
    }

    /// A short lowercase tag for diagnostics and generated names.
    pub fn tag(&self) -> &'static str {
        match self {
            Symbol::Acquisition(_) => "acq",
            Symbol::GlobalInput(_) => "in",
            Symbol::Const(_) => "const",
            Symbol::ConstB(_) => "constb",
            Symbol::Gain(_) => "gain",
            Symbol::Sum2 => "sum",
            Symbol::Sub2 => "sub",
            Symbol::Mul2 => "mul",
            Symbol::Div2 => "div",
            Symbol::Min2 => "min",
            Symbol::Max2 => "max",
            Symbol::Abs => "abs",
            Symbol::Neg => "neg",
            Symbol::Saturation(..) => "sat",
            Symbol::FirstOrderFilter(_) => "fof",
            Symbol::Delay1 => "delay",
            Symbol::RateLimiter(_) => "rlim",
            Symbol::Integrator { .. } => "integ",
            Symbol::Pid { .. } => "pid",
            Symbol::SecondOrderFilter { .. } => "sof",
            Symbol::Deadband(_) => "dead",
            Symbol::Debounce(_) => "debounce",
            Symbol::SrLatch => "latch",
            Symbol::Lookup1d { .. } => "lut",
            Symbol::Lookup1dSearch { .. } => "lutsearch",
            Symbol::CmpConst(..) => "cmp",
            Symbol::Hysteresis { .. } => "hyst",
            Symbol::And2 => "and",
            Symbol::Or2 => "or",
            Symbol::Xor2 => "xor",
            Symbol::Not => "not",
            Symbol::SwitchIf => "switch",
            Symbol::Output(_) => "out",
            Symbol::OutputB(_) => "outb",
            Symbol::Actuator(_) => "act",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_types() {
        assert_eq!(Symbol::Sum2.input_types(), vec![SigTy::F, SigTy::F]);
        assert_eq!(
            Symbol::SwitchIf.input_types(),
            vec![SigTy::B, SigTy::F, SigTy::F]
        );
        assert_eq!(Symbol::Acquisition(0).input_types(), vec![]);
        assert_eq!(Symbol::CmpConst(Cmp::Gt, 1.0).output_type(), Some(SigTy::B));
        assert_eq!(Symbol::Output("x".into()).output_type(), None);
    }

    #[test]
    fn only_delay_breaks_cycles() {
        assert!(!Symbol::Delay1.is_feedthrough());
        assert!(Symbol::FirstOrderFilter(0.5).is_feedthrough());
        assert!(Symbol::Pid {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0
        }
        .is_feedthrough());
    }

    #[test]
    fn statefulness() {
        assert!(Symbol::Delay1.is_stateful());
        assert!(Symbol::Hysteresis { lo: 0.0, hi: 1.0 }.is_stateful());
        assert!(!Symbol::Gain(2.0).is_stateful());
        assert!(Symbol::Lookup1dSearch {
            breakpoints: vec![0.0, 1.0],
            values: vec![0.0, 1.0]
        }
        .is_stateful());
    }
}
