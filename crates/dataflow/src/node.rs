//! Dataflow nodes: typed symbol graphs and the automatic code generator.
//!
//! A node is a DAG of symbol instances connected by wires (cycles are legal
//! when broken by a unit delay). [`Node::to_minic`] is the qualified-ACG
//! analog: it emits a `step` function evaluating every symbol once, in
//! topological order, as a flat sequence of small per-symbol statement
//! patterns — plus the state/input/output/table globals.
//!
//! Generated `while` conditions are always a *single comparison* (the shape
//! the WCET analyzer's loop-bound pattern matcher understands), and the only
//! data-dependent loop — the breakpoint-table scan — carries a
//! `__builtin_annotation` bounding its scan length, reproducing the paper's
//! §3.4 scenario.

use std::collections::BTreeSet;
use std::fmt;

use vericomp_minic::ast::{Binop, Cmp, Expr, Function, Global, GlobalDef, Program, Stmt, Ty, Unop};

use crate::symbol::Symbol;

/// Identifier of a symbol instance within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub usize);

/// A typed `double` wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FWire(pub(crate) SymId);

/// A typed boolean wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BWire(pub(crate) SymId);

/// One placed symbol with its input wires.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolInstance {
    /// The symbol kind.
    pub kind: Symbol,
    /// Producers of the inputs, in order.
    pub inputs: Vec<SymId>,
}

/// Errors detected when building a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// A wire references a non-existent instance.
    UnknownWire {
        /// The referencing instance index.
        at: usize,
    },
    /// Wrong number of inputs for a symbol.
    Arity {
        /// The offending instance index.
        at: usize,
    },
    /// A wire's type does not match the consuming port.
    TypeMismatch {
        /// The consuming instance index.
        at: usize,
        /// The input port index.
        port: usize,
    },
    /// A sink (no output) used as a producer.
    SinkAsProducer {
        /// The consuming instance index.
        at: usize,
    },
    /// A combinational cycle not broken by a delay.
    CombinationalCycle,
    /// A symbol parameter is invalid (table too short, inverted bounds, …).
    BadSymbol {
        /// The offending instance index.
        at: usize,
        /// Description.
        why: String,
    },
    /// The node has no instances.
    Empty,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::UnknownWire { at } => write!(f, "instance {at} references unknown wire"),
            NodeError::Arity { at } => write!(f, "instance {at} has wrong input count"),
            NodeError::TypeMismatch { at, port } => {
                write!(f, "instance {at} input {port} has the wrong wire type")
            }
            NodeError::SinkAsProducer { at } => {
                write!(f, "instance {at} consumes a sink's (nonexistent) output")
            }
            NodeError::CombinationalCycle => {
                write!(f, "combinational cycle (must be broken by a delay)")
            }
            NodeError::BadSymbol { at, why } => write!(f, "instance {at}: {why}"),
            NodeError::Empty => write!(f, "node has no symbols"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A validated dataflow node.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    instances: Vec<SymbolInstance>,
    order: Vec<SymId>,
}

/// Builder for [`Node`]s with wire-type safety at the Rust level.
#[derive(Debug)]
pub struct NodeBuilder {
    name: String,
    instances: Vec<SymbolInstance>,
}

impl NodeBuilder {
    /// Starts a new node.
    pub fn new(name: impl Into<String>) -> Self {
        NodeBuilder {
            name: name.into(),
            instances: Vec::new(),
        }
    }

    /// Adds an arbitrary symbol with untyped inputs (used by the random
    /// fleet generator; typing is checked at [`NodeBuilder::build`]).
    pub fn raw(&mut self, kind: Symbol, inputs: Vec<SymId>) -> SymId {
        self.instances.push(SymbolInstance { kind, inputs });
        SymId(self.instances.len() - 1)
    }

    fn addf(&mut self, kind: Symbol, inputs: Vec<SymId>) -> FWire {
        FWire(self.raw(kind, inputs))
    }

    fn addb(&mut self, kind: Symbol, inputs: Vec<SymId>) -> BWire {
        BWire(self.raw(kind, inputs))
    }

    /// Hardware acquisition from I/O port `port`.
    pub fn acquisition(&mut self, port: u32) -> FWire {
        self.addf(Symbol::Acquisition(port), vec![])
    }

    /// Input read from the named global.
    pub fn global_input(&mut self, name: impl Into<String>) -> FWire {
        self.addf(Symbol::GlobalInput(name.into()), vec![])
    }

    /// Constant source.
    pub fn constant(&mut self, v: f64) -> FWire {
        self.addf(Symbol::Const(v), vec![])
    }

    /// Constant boolean source.
    pub fn constant_b(&mut self, v: bool) -> BWire {
        self.addb(Symbol::ConstB(v), vec![])
    }

    /// `k * x`.
    pub fn gain(&mut self, x: FWire, k: f64) -> FWire {
        self.addf(Symbol::Gain(k), vec![x.0])
    }

    /// `a + b`.
    pub fn sum(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Sum2, vec![a.0, b.0])
    }

    /// `a - b`.
    pub fn sub(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Sub2, vec![a.0, b.0])
    }

    /// `a * b`.
    pub fn mul(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Mul2, vec![a.0, b.0])
    }

    /// `a / b`.
    pub fn div(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Div2, vec![a.0, b.0])
    }

    /// `min(a, b)`.
    pub fn min(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Min2, vec![a.0, b.0])
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::Max2, vec![a.0, b.0])
    }

    /// `|x|`.
    pub fn abs(&mut self, x: FWire) -> FWire {
        self.addf(Symbol::Abs, vec![x.0])
    }

    /// `-x`.
    pub fn neg(&mut self, x: FWire) -> FWire {
        self.addf(Symbol::Neg, vec![x.0])
    }

    /// Clamp into `[lo, hi]`.
    pub fn saturation(&mut self, x: FWire, lo: f64, hi: f64) -> FWire {
        self.addf(Symbol::Saturation(lo, hi), vec![x.0])
    }

    /// First-order low-pass filter.
    pub fn first_order_filter(&mut self, x: FWire, alpha: f64) -> FWire {
        self.addf(Symbol::FirstOrderFilter(alpha), vec![x.0])
    }

    /// Unit delay (breaks combinational cycles).
    pub fn delay(&mut self, x: FWire) -> FWire {
        self.addf(Symbol::Delay1, vec![x.0])
    }

    /// Rate limiter with maximum per-cycle slew `step`.
    pub fn rate_limiter(&mut self, x: FWire, step: f64) -> FWire {
        self.addf(Symbol::RateLimiter(step), vec![x.0])
    }

    /// Saturating integrator.
    pub fn integrator(&mut self, x: FWire, dt: f64, lo: f64, hi: f64) -> FWire {
        self.addf(Symbol::Integrator { dt, lo, hi }, vec![x.0])
    }

    /// PID controller on the error signal.
    pub fn pid(&mut self, e: FWire, kp: f64, ki: f64, kd: f64) -> FWire {
        self.addf(Symbol::Pid { kp, ki, kd }, vec![e.0])
    }

    /// First-order IIR section with a zero (`y = b0*x + b1*x' - a1*y'`).
    pub fn second_order_filter(&mut self, x: FWire, b0: f64, b1: f64, a1: f64) -> FWire {
        self.addf(Symbol::SecondOrderFilter { b0, b1, a1 }, vec![x.0])
    }

    /// Deadband of half-width `width` around zero.
    pub fn deadband(&mut self, x: FWire, width: f64) -> FWire {
        self.addf(Symbol::Deadband(width), vec![x.0])
    }

    /// Confirmation: true after `cycles` consecutive true inputs.
    pub fn debounce(&mut self, b: BWire, cycles: u32) -> BWire {
        self.addb(Symbol::Debounce(cycles), vec![b.0])
    }

    /// Set/reset latch with reset priority.
    pub fn sr_latch(&mut self, set: BWire, reset: BWire) -> BWire {
        self.addb(Symbol::SrLatch, vec![set.0, reset.0])
    }

    /// Uniform-grid interpolation table.
    pub fn lookup1d(&mut self, x: FWire, table: Vec<f64>, x0: f64, dx: f64) -> FWire {
        self.addf(Symbol::Lookup1d { table, x0, dx }, vec![x.0])
    }

    /// Breakpoint interpolation table with an annotated data-dependent scan.
    pub fn lookup_search(&mut self, x: FWire, breakpoints: Vec<f64>, values: Vec<f64>) -> FWire {
        self.addf(
            Symbol::Lookup1dSearch {
                breakpoints,
                values,
            },
            vec![x.0],
        )
    }

    /// Compare against a constant.
    pub fn cmp_const(&mut self, x: FWire, cmp: Cmp, k: f64) -> BWire {
        self.addb(Symbol::CmpConst(cmp, k), vec![x.0])
    }

    /// Schmitt trigger.
    pub fn hysteresis(&mut self, x: FWire, lo: f64, hi: f64) -> BWire {
        self.addb(Symbol::Hysteresis { lo, hi }, vec![x.0])
    }

    /// Boolean and.
    pub fn and(&mut self, a: BWire, b: BWire) -> BWire {
        self.addb(Symbol::And2, vec![a.0, b.0])
    }

    /// Boolean or.
    pub fn or(&mut self, a: BWire, b: BWire) -> BWire {
        self.addb(Symbol::Or2, vec![a.0, b.0])
    }

    /// Boolean xor.
    pub fn xor(&mut self, a: BWire, b: BWire) -> BWire {
        self.addb(Symbol::Xor2, vec![a.0, b.0])
    }

    /// Boolean not.
    pub fn not(&mut self, a: BWire) -> BWire {
        self.addb(Symbol::Not, vec![a.0])
    }

    /// `cond ? a : b`.
    pub fn switch_if(&mut self, cond: BWire, a: FWire, b: FWire) -> FWire {
        self.addf(Symbol::SwitchIf, vec![cond.0, a.0, b.0])
    }

    /// Write to a named output global.
    pub fn output(&mut self, name: impl Into<String>, x: FWire) {
        self.raw(Symbol::Output(name.into()), vec![x.0]);
    }

    /// Write a boolean to a named output global.
    pub fn output_b(&mut self, name: impl Into<String>, b: BWire) {
        self.raw(Symbol::OutputB(name.into()), vec![b.0]);
    }

    /// Actuator command to an I/O port.
    pub fn actuator(&mut self, port: u32, x: FWire) {
        self.raw(Symbol::Actuator(port), vec![x.0]);
    }

    /// Validates and finalizes the node.
    ///
    /// # Errors
    ///
    /// Any [`NodeError`] found.
    pub fn build(self) -> Result<Node, NodeError> {
        Node::validated(self.name, self.instances)
    }
}

impl Node {
    /// Validates instances and computes the evaluation order.
    ///
    /// # Errors
    ///
    /// Any [`NodeError`] found.
    pub fn validated(name: String, instances: Vec<SymbolInstance>) -> Result<Node, NodeError> {
        if instances.is_empty() {
            return Err(NodeError::Empty);
        }
        for (at, inst) in instances.iter().enumerate() {
            let want = inst.kind.input_types();
            if want.len() != inst.inputs.len() {
                return Err(NodeError::Arity { at });
            }
            for (port, (&src, &ty)) in inst.inputs.iter().zip(&want).enumerate() {
                let producer = instances.get(src.0).ok_or(NodeError::UnknownWire { at })?;
                match producer.kind.output_type() {
                    None => return Err(NodeError::SinkAsProducer { at }),
                    Some(t) if t != ty => return Err(NodeError::TypeMismatch { at, port }),
                    Some(_) => {}
                }
            }
            // parameter sanity
            match &inst.kind {
                Symbol::Lookup1d { table, dx, .. } => {
                    if table.len() < 2 {
                        return Err(NodeError::BadSymbol {
                            at,
                            why: "interpolation table needs ≥ 2 samples".into(),
                        });
                    }
                    if *dx <= 0.0 {
                        return Err(NodeError::BadSymbol {
                            at,
                            why: "grid spacing must be positive".into(),
                        });
                    }
                }
                Symbol::Lookup1dSearch {
                    breakpoints,
                    values,
                } => {
                    if breakpoints.len() < 2 || breakpoints.len() != values.len() {
                        return Err(NodeError::BadSymbol {
                            at,
                            why: "breakpoint table needs ≥ 2 matching samples".into(),
                        });
                    }
                    if !breakpoints.windows(2).all(|w| w[0] < w[1]) {
                        return Err(NodeError::BadSymbol {
                            at,
                            why: "breakpoints must be strictly increasing".into(),
                        });
                    }
                }
                Symbol::Saturation(lo, hi) if lo > hi => {
                    return Err(NodeError::BadSymbol {
                        at,
                        why: "inverted saturation".into(),
                    });
                }
                Symbol::Integrator { lo, hi, .. } if lo > hi => {
                    return Err(NodeError::BadSymbol {
                        at,
                        why: "inverted integrator".into(),
                    });
                }
                Symbol::Hysteresis { lo, hi } if lo > hi => {
                    return Err(NodeError::BadSymbol {
                        at,
                        why: "inverted hysteresis".into(),
                    });
                }
                Symbol::Debounce(0) => {
                    return Err(NodeError::BadSymbol {
                        at,
                        why: "debounce needs at least one cycle".into(),
                    });
                }
                Symbol::Deadband(w) if *w < 0.0 => {
                    return Err(NodeError::BadSymbol {
                        at,
                        why: "negative deadband width".into(),
                    });
                }
                _ => {}
            }
        }

        // Kahn's algorithm over feedthrough edges only.
        let n = instances.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, inst) in instances.iter().enumerate() {
            if inst.kind.is_feedthrough() {
                for &src in &inst.inputs {
                    indegree[i] += 1;
                    consumers[src.0].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(SymId(i));
            for &c in &consumers[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != n {
            return Err(NodeError::CombinationalCycle);
        }
        Ok(Node {
            name,
            instances,
            order,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol instances.
    pub fn instances(&self) -> &[SymbolInstance] {
        &self.instances
    }

    /// Number of symbol instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the node is empty (never true for validated nodes).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The name of the generated step function (`"step"` for every node —
    /// each node compiles to its own program).
    pub fn step_name(&self) -> &'static str {
        "step"
    }

    /// Runs the automatic code generator, producing the node's MiniC
    /// translation unit.
    pub fn to_minic(&self) -> Program {
        self.to_minic_named(self.step_name())
    }

    /// Like [`Node::to_minic`], but names the step function explicitly —
    /// used when several nodes are linked into one application image.
    pub fn to_minic_named(&self, fn_name: &str) -> Program {
        Codegen::new(self).run(fn_name)
    }
}

struct Codegen<'n> {
    node: &'n Node,
    globals: Vec<Global>,
    declared: BTreeSet<String>,
    locals: Vec<(String, Ty)>,
    body: Vec<Stmt>,
    finalizers: Vec<Stmt>,
}

impl<'n> Codegen<'n> {
    fn new(node: &'n Node) -> Self {
        Codegen {
            node,
            globals: Vec::new(),
            declared: BTreeSet::new(),
            locals: Vec::new(),
            body: Vec::new(),
            finalizers: Vec::new(),
        }
    }

    fn global(&mut self, name: &str, def: GlobalDef) {
        if self.declared.insert(name.to_owned()) {
            self.globals.push(Global {
                name: name.to_owned(),
                def,
            });
        }
    }

    fn local(&mut self, name: String, ty: Ty) -> String {
        self.locals.push((name.clone(), ty));
        name
    }

    fn temp(&mut self, id: usize, ty: Ty) -> String {
        self.local(format!("t{id}"), ty)
    }

    fn state_name(&self, id: usize, suffix: &str) -> String {
        format!("{}__s{id}{suffix}", self.node.name)
    }

    fn run(mut self, fn_name: &str) -> Program {
        let order = self.node.order.clone();
        for sid in order {
            self.symbol(sid);
        }
        let mut body = std::mem::take(&mut self.body);
        body.append(&mut self.finalizers);
        let step = Function {
            name: fn_name.into(),
            params: vec![],
            ret: None,
            locals: self.locals,
            body,
        };
        Program {
            globals: self.globals,
            functions: vec![step],
        }
    }

    fn in_temp(&self, sid: SymId, port: usize) -> Expr {
        Expr::Var(format!("t{}", self.node.instances[sid.0].inputs[port].0))
    }

    fn assign(&mut self, name: &str, e: Expr) {
        self.body.push(Stmt::Assign(name.into(), e));
    }

    #[allow(clippy::too_many_lines)]
    fn symbol(&mut self, sid: SymId) {
        let id = sid.0;
        let kind = self.node.instances[id].kind.clone();
        match kind {
            Symbol::Acquisition(port) => {
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::IoRead(port));
            }
            Symbol::GlobalInput(name) => {
                self.global(&name, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::var(name));
            }
            Symbol::Const(v) => {
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::FloatLit(v));
            }
            Symbol::ConstB(v) => {
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::BoolLit(v));
            }
            Symbol::Gain(k) => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::binop(Binop::MulF, Expr::FloatLit(k), x));
            }
            Symbol::Sum2 | Symbol::Sub2 | Symbol::Mul2 | Symbol::Div2 => {
                let a = self.in_temp(sid, 0);
                let b = self.in_temp(sid, 1);
                let op = match kind {
                    Symbol::Sum2 => Binop::AddF,
                    Symbol::Sub2 => Binop::SubF,
                    Symbol::Mul2 => Binop::MulF,
                    _ => Binop::DivF,
                };
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::binop(op, a, b));
            }
            Symbol::Min2 | Symbol::Max2 => {
                let a = self.in_temp(sid, 0);
                let b = self.in_temp(sid, 1);
                let cmp = if matches!(kind, Symbol::Min2) {
                    Cmp::Lt
                } else {
                    Cmp::Gt
                };
                let t = self.temp(id, Ty::F64);
                self.assign(&t, a);
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(cmp), b.clone(), Expr::var(&t)),
                    vec![Stmt::Assign(t.clone(), b)],
                    vec![],
                ));
            }
            Symbol::Abs => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::unop(Unop::AbsF, x));
            }
            Symbol::Neg => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::unop(Unop::NegF, x));
            }
            Symbol::Saturation(lo, hi) => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, x);
                self.clamp(&t, lo, hi);
            }
            Symbol::FirstOrderFilter(alpha) => {
                let x = self.in_temp(sid, 0);
                let s = self.state_name(id, "");
                self.global(&s, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                // t = s + alpha * (x - s); s = t;
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::AddF,
                        Expr::var(&s),
                        Expr::binop(
                            Binop::MulF,
                            Expr::FloatLit(alpha),
                            Expr::binop(Binop::SubF, x, Expr::var(&s)),
                        ),
                    ),
                );
                self.assign(&s, Expr::var(&t));
            }
            Symbol::Delay1 => {
                let s = self.state_name(id, "");
                self.global(&s, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::var(&s));
                // The state update runs at the end of the step so the input
                // temp exists even when the producer is later in the order
                // (delays are exactly what makes that legal).
                let x = self.in_temp(sid, 0);
                self.finalizers.push(Stmt::Assign(s, x));
            }
            Symbol::RateLimiter(step) => {
                let x = self.in_temp(sid, 0);
                let s = self.state_name(id, "");
                self.global(&s, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                let up = Expr::binop(Binop::AddF, Expr::var(&s), Expr::FloatLit(step));
                let dn = Expr::binop(Binop::SubF, Expr::var(&s), Expr::FloatLit(step));
                self.assign(&t, x);
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Gt), Expr::var(&t), up.clone()),
                    vec![Stmt::Assign(t.clone(), up)],
                    vec![],
                ));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Lt), Expr::var(&t), dn.clone()),
                    vec![Stmt::Assign(t.clone(), dn)],
                    vec![],
                ));
                self.assign(&s, Expr::var(&t));
            }
            Symbol::Integrator { dt, lo, hi } => {
                let x = self.in_temp(sid, 0);
                let s = self.state_name(id, "");
                self.global(&s, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::AddF,
                        Expr::var(&s),
                        Expr::binop(Binop::MulF, Expr::FloatLit(dt), x),
                    ),
                );
                self.clamp(&t, lo, hi);
                self.assign(&s, Expr::var(&t));
            }
            Symbol::Pid { kp, ki, kd } => {
                let e = self.in_temp(sid, 0);
                let si = self.state_name(id, "_i");
                let sp = self.state_name(id, "_p");
                self.global(&si, GlobalDef::ScalarF64(None));
                self.global(&sp, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                self.assign(&si, Expr::binop(Binop::AddF, Expr::var(&si), e.clone()));
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::AddF,
                        Expr::binop(
                            Binop::AddF,
                            Expr::binop(Binop::MulF, Expr::FloatLit(kp), e.clone()),
                            Expr::binop(Binop::MulF, Expr::FloatLit(ki), Expr::var(&si)),
                        ),
                        Expr::binop(
                            Binop::MulF,
                            Expr::FloatLit(kd),
                            Expr::binop(Binop::SubF, e.clone(), Expr::var(&sp)),
                        ),
                    ),
                );
                self.assign(&sp, e);
            }
            Symbol::Lookup1d { table, x0, dx } => {
                let x = self.in_temp(sid, 0);
                let n = table.len();
                let tab = format!("{}__tab{id}", self.node.name);
                self.global(&tab, GlobalDef::ArrayF64(table));
                let u = self.local(format!("lut{id}_u"), Ty::F64);
                let i = self.local(format!("lut{id}_i"), Ty::I32);
                let fr = self.local(format!("lut{id}_f"), Ty::F64);
                let t = self.temp(id, Ty::F64);
                // u = (x - x0) / dx
                self.assign(
                    &u,
                    Expr::binop(
                        Binop::DivF,
                        Expr::binop(Binop::SubF, x, Expr::FloatLit(x0)),
                        Expr::FloatLit(dx),
                    ),
                );
                self.assign(&i, Expr::unop(Unop::F2I, Expr::var(&u)));
                self.clamp_i(&i, 0, (n - 2) as i32);
                self.assign(
                    &fr,
                    Expr::binop(
                        Binop::SubF,
                        Expr::var(&u),
                        Expr::unop(Unop::I2F, Expr::var(&i)),
                    ),
                );
                self.clamp(&fr, 0.0, 1.0);
                let at = |e: Expr| Expr::Index(tab.clone(), Box::new(e));
                let ip1 = Expr::binop(Binop::AddI, Expr::var(&i), Expr::IntLit(1));
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::AddF,
                        at(Expr::var(&i)),
                        Expr::binop(
                            Binop::MulF,
                            Expr::var(&fr),
                            Expr::binop(Binop::SubF, at(ip1), at(Expr::var(&i))),
                        ),
                    ),
                );
            }
            Symbol::Lookup1dSearch {
                breakpoints,
                values,
            } => {
                let x = self.in_temp(sid, 0);
                let nbp = breakpoints.len();
                let bp = format!("{}__bp{id}", self.node.name);
                let val = format!("{}__val{id}", self.node.name);
                let scan = format!("{}__s{id}_scan", self.node.name);
                self.global(&bp, GlobalDef::ArrayF64(breakpoints));
                self.global(&val, GlobalDef::ArrayF64(values));
                // configuration global: how far the scan may go this mode;
                // defaults to the full table
                self.global(&scan, GlobalDef::ScalarI32(Some((nbp - 2) as i32)));
                let nloc = self.local(format!("lut{id}_n"), Ty::I32);
                let k = self.local(format!("lut{id}_k"), Ty::I32);
                let i = self.local(format!("lut{id}_i"), Ty::I32);
                let fr = self.local(format!("lut{id}_f"), Ty::F64);
                let t = self.temp(id, Ty::F64);
                let hi = (nbp - 2) as i32;
                self.assign(&nloc, Expr::var(&scan));
                self.clamp_i(&nloc, 1, hi);
                // The paper's §3.4 mechanism: without this annotation the
                // scan bound below is unknown to the WCET analyzer.
                self.body.push(Stmt::Annot(
                    format!("1 <= %1 <= {hi}"),
                    vec![Expr::var(&nloc)],
                ));
                self.assign(&i, Expr::IntLit(0));
                self.assign(&k, Expr::IntLit(1));
                self.body.push(Stmt::While(
                    Expr::binop(Binop::CmpI(Cmp::Le), Expr::var(&k), Expr::var(&nloc)),
                    vec![
                        Stmt::If(
                            Expr::binop(
                                Binop::CmpF(Cmp::Le),
                                Expr::Index(bp.clone(), Box::new(Expr::var(&k))),
                                x,
                            ),
                            vec![Stmt::Assign(i.clone(), Expr::var(&k))],
                            vec![],
                        ),
                        Stmt::Assign(
                            k.clone(),
                            Expr::binop(Binop::AddI, Expr::var(&k), Expr::IntLit(1)),
                        ),
                    ],
                ));
                let at = |name: &str, e: Expr| Expr::Index(name.to_owned(), Box::new(e));
                let ip1 = || Expr::binop(Binop::AddI, Expr::var(&i), Expr::IntLit(1));
                let x2 = self.in_temp(sid, 0);
                self.assign(
                    &fr,
                    Expr::binop(
                        Binop::DivF,
                        Expr::binop(Binop::SubF, x2, at(&bp, Expr::var(&i))),
                        Expr::binop(Binop::SubF, at(&bp, ip1()), at(&bp, Expr::var(&i))),
                    ),
                );
                self.clamp(&fr, 0.0, 1.0);
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::AddF,
                        at(&val, Expr::var(&i)),
                        Expr::binop(
                            Binop::MulF,
                            Expr::var(&fr),
                            Expr::binop(Binop::SubF, at(&val, ip1()), at(&val, Expr::var(&i))),
                        ),
                    ),
                );
            }
            Symbol::CmpConst(cmp, kv) => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::binop(Binop::CmpF(cmp), x, Expr::FloatLit(kv)));
            }
            Symbol::Hysteresis { lo, hi } => {
                let x = self.in_temp(sid, 0);
                let s = self.state_name(id, "_b");
                self.global(&s, GlobalDef::ScalarBool(None));
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::var(&s));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Gt), x.clone(), Expr::FloatLit(hi)),
                    vec![Stmt::Assign(t.clone(), Expr::BoolLit(true))],
                    vec![],
                ));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Lt), x, Expr::FloatLit(lo)),
                    vec![Stmt::Assign(t.clone(), Expr::BoolLit(false))],
                    vec![],
                ));
                self.assign(&s, Expr::var(&t));
            }
            Symbol::SecondOrderFilter { b0, b1, a1 } => {
                let x = self.in_temp(sid, 0);
                let sx = self.state_name(id, "_x");
                let sy = self.state_name(id, "_y");
                self.global(&sx, GlobalDef::ScalarF64(None));
                self.global(&sy, GlobalDef::ScalarF64(None));
                let t = self.temp(id, Ty::F64);
                // t = (b0*x + b1*sx) - a1*sy; sx = x; sy = t;
                self.assign(
                    &t,
                    Expr::binop(
                        Binop::SubF,
                        Expr::binop(
                            Binop::AddF,
                            Expr::binop(Binop::MulF, Expr::FloatLit(b0), x.clone()),
                            Expr::binop(Binop::MulF, Expr::FloatLit(b1), Expr::var(&sx)),
                        ),
                        Expr::binop(Binop::MulF, Expr::FloatLit(a1), Expr::var(&sy)),
                    ),
                );
                self.assign(&sx, x);
                self.assign(&sy, Expr::var(&t));
            }
            Symbol::Deadband(w) => {
                let x = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, Expr::FloatLit(0.0));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Gt), x.clone(), Expr::FloatLit(w)),
                    vec![Stmt::Assign(
                        t.clone(),
                        Expr::binop(Binop::SubF, x.clone(), Expr::FloatLit(w)),
                    )],
                    vec![],
                ));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpF(Cmp::Lt), x.clone(), Expr::FloatLit(-w)),
                    vec![Stmt::Assign(
                        t.clone(),
                        Expr::binop(Binop::AddF, x, Expr::FloatLit(w)),
                    )],
                    vec![],
                ));
            }
            Symbol::Debounce(cycles) => {
                let b = self.in_temp(sid, 0);
                let c = self.state_name(id, "_c");
                self.global(&c, GlobalDef::ScalarI32(None));
                let t = self.temp(id, Ty::Bool);
                let n = cycles as i32;
                self.body.push(Stmt::If(
                    b,
                    vec![Stmt::Assign(
                        c.clone(),
                        Expr::binop(Binop::AddI, Expr::var(&c), Expr::IntLit(1)),
                    )],
                    vec![Stmt::Assign(c.clone(), Expr::IntLit(0))],
                ));
                self.body.push(Stmt::If(
                    Expr::binop(Binop::CmpI(Cmp::Gt), Expr::var(&c), Expr::IntLit(n)),
                    vec![Stmt::Assign(c.clone(), Expr::IntLit(n))],
                    vec![],
                ));
                self.assign(
                    &t,
                    Expr::binop(Binop::CmpI(Cmp::Ge), Expr::var(&c), Expr::IntLit(n)),
                );
            }
            Symbol::SrLatch => {
                let set = self.in_temp(sid, 0);
                let reset = self.in_temp(sid, 1);
                let st = self.state_name(id, "_b");
                self.global(&st, GlobalDef::ScalarBool(None));
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::var(&st));
                self.body.push(Stmt::If(
                    set,
                    vec![Stmt::Assign(t.clone(), Expr::BoolLit(true))],
                    vec![],
                ));
                self.body.push(Stmt::If(
                    reset,
                    vec![Stmt::Assign(t.clone(), Expr::BoolLit(false))],
                    vec![],
                ));
                self.assign(&st, Expr::var(&t));
            }
            Symbol::And2 | Symbol::Or2 | Symbol::Xor2 => {
                let a = self.in_temp(sid, 0);
                let b = self.in_temp(sid, 1);
                let op = match kind {
                    Symbol::And2 => Binop::AndB,
                    Symbol::Or2 => Binop::OrB,
                    _ => Binop::XorB,
                };
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::binop(op, a, b));
            }
            Symbol::Not => {
                let a = self.in_temp(sid, 0);
                let t = self.temp(id, Ty::Bool);
                self.assign(&t, Expr::unop(Unop::NotB, a));
            }
            Symbol::SwitchIf => {
                let c = self.in_temp(sid, 0);
                let a = self.in_temp(sid, 1);
                let b = self.in_temp(sid, 2);
                let t = self.temp(id, Ty::F64);
                self.assign(&t, b);
                self.body
                    .push(Stmt::If(c, vec![Stmt::Assign(t.clone(), a)], vec![]));
            }
            Symbol::Output(name) => {
                self.global(&name, GlobalDef::ScalarF64(None));
                let x = self.in_temp(sid, 0);
                self.assign(&name, x);
            }
            Symbol::OutputB(name) => {
                self.global(&name, GlobalDef::ScalarBool(None));
                let x = self.in_temp(sid, 0);
                self.assign(&name, x);
            }
            Symbol::Actuator(port) => {
                let x = self.in_temp(sid, 0);
                self.body.push(Stmt::IoWrite(port, x));
            }
        }
    }

    fn clamp(&mut self, var: &str, lo: f64, hi: f64) {
        self.body.push(Stmt::If(
            Expr::binop(Binop::CmpF(Cmp::Lt), Expr::var(var), Expr::FloatLit(lo)),
            vec![Stmt::Assign(var.into(), Expr::FloatLit(lo))],
            vec![],
        ));
        self.body.push(Stmt::If(
            Expr::binop(Binop::CmpF(Cmp::Gt), Expr::var(var), Expr::FloatLit(hi)),
            vec![Stmt::Assign(var.into(), Expr::FloatLit(hi))],
            vec![],
        ));
    }

    fn clamp_i(&mut self, var: &str, lo: i32, hi: i32) {
        self.body.push(Stmt::If(
            Expr::binop(Binop::CmpI(Cmp::Lt), Expr::var(var), Expr::IntLit(lo)),
            vec![Stmt::Assign(var.into(), Expr::IntLit(lo))],
            vec![],
        ));
        self.body.push(Stmt::If(
            Expr::binop(Binop::CmpI(Cmp::Gt), Expr::var(var), Expr::IntLit(hi)),
            vec![Stmt::Assign(var.into(), Expr::IntLit(hi))],
            vec![],
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::interp::{Interp, Value};

    #[test]
    fn simple_law_generates_valid_minic() {
        let mut b = NodeBuilder::new("law");
        let x = b.global_input("x_in");
        let g = b.gain(x, 3.0);
        let f = b.first_order_filter(g, 0.5);
        let s = b.saturation(f, -1.0, 1.0);
        b.output("y_out", s);
        let node = b.build().unwrap();
        let p = node.to_minic();
        vericomp_minic::typeck::check(&p).unwrap();

        let mut it = Interp::new(&p);
        it.set_global("x_in", Value::F(1.0)).unwrap();
        it.call("step", &[]).unwrap();
        // filter: 0 + 0.5*(3 - 0) = 1.5, saturated to 1.0
        assert_eq!(it.global("y_out").unwrap(), Value::F(1.0));
        // state kept the unsaturated filter value
        it.call("step", &[]).unwrap();
        // 1.5 + 0.5*(3 - 1.5) = 2.25 → saturated 1.0
        assert_eq!(it.global("y_out").unwrap(), Value::F(1.0));
    }

    #[test]
    fn delay_breaks_cycles() {
        // y = delay(y + u): legal feedback through a delay
        let mut b = NodeBuilder::new("fb");
        let u = b.global_input("u");
        // construct the cycle with raw wires: sum consumes the delay output
        let sum_id = b.raw(Symbol::Sum2, vec![]); // patched below
        let d = b.delay(FWire(sum_id));
        b.instances[sum_id.0].inputs = vec![u.0, d.0];
        b.output("y", d);
        let node = b.build().unwrap();
        let p = node.to_minic();
        vericomp_minic::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        it.set_global("u", Value::F(1.0)).unwrap();
        for _ in 0..3 {
            it.call("step", &[]).unwrap();
        }
        // y accumulates u each cycle, delayed by one: after 3 steps y = 2
        assert_eq!(it.global("y").unwrap(), Value::F(2.0));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NodeBuilder::new("bad");
        let s1 = b.raw(Symbol::Gain(1.0), vec![]);
        let s2 = b.raw(Symbol::Gain(1.0), vec![s1]);
        b.instances[s1.0].inputs = vec![s2];
        assert_eq!(b.build().unwrap_err(), NodeError::CombinationalCycle);
    }

    #[test]
    fn type_errors_rejected() {
        let mut b = NodeBuilder::new("bad");
        let x = b.global_input("x");
        let c = b.cmp_const(x, Cmp::Gt, 0.0);
        // feed a bool wire into a gain via raw()
        b.raw(Symbol::Gain(1.0), vec![c.0]);
        assert!(matches!(
            b.build().unwrap_err(),
            NodeError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn sink_output_cannot_be_consumed() {
        let mut b = NodeBuilder::new("bad");
        let x = b.global_input("x");
        let o = b.raw(Symbol::Output("o".into()), vec![x.0]);
        b.raw(Symbol::Gain(1.0), vec![o]);
        assert!(matches!(
            b.build().unwrap_err(),
            NodeError::SinkAsProducer { .. }
        ));
    }

    #[test]
    fn lookup_tables_interpolate() {
        let mut b = NodeBuilder::new("lut");
        let x = b.global_input("x");
        let l1 = b.lookup1d(x, vec![0.0, 10.0, 20.0], 0.0, 1.0);
        b.output("y_grid", l1);
        let l2 = b.lookup_search(x, vec![0.0, 1.0, 4.0], vec![0.0, 10.0, 40.0]);
        b.output("y_search", l2);
        let node = b.build().unwrap();
        let p = node.to_minic();
        vericomp_minic::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        for (input, grid, search) in [
            (0.5, 5.0, 5.0),
            (1.0, 10.0, 10.0),
            (2.5, 20.0, 25.0),
            (-3.0, 0.0, 0.0),    // clamped low
            (100.0, 20.0, 40.0), // clamped high
        ] {
            it.set_global("x", Value::F(input)).unwrap();
            it.call("step", &[]).unwrap();
            assert_eq!(
                it.global("y_grid").unwrap(),
                Value::F(grid),
                "grid at {input}"
            );
            assert_eq!(
                it.global("y_search").unwrap(),
                Value::F(search),
                "search at {input}"
            );
        }
        // the search loop carries the §3.4 annotation
        assert_eq!(it.trace().len(), 5 * 2 / 2, "one annotation per step");
        assert!(it.trace()[0].format.starts_with("1 <= %1 <="));
    }

    #[test]
    fn hysteresis_and_logic() {
        let mut b = NodeBuilder::new("logic");
        let x = b.global_input("x");
        let h = b.hysteresis(x, -1.0, 1.0);
        let c = b.cmp_const(x, Cmp::Gt, 5.0);
        let both = b.or(h, c);
        b.output_b("flag", both);
        let node = b.build().unwrap();
        let p = node.to_minic();
        vericomp_minic::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        let run = |it: &mut Interp, v: f64| {
            it.set_global("x", Value::F(v)).unwrap();
            it.call("step", &[]).unwrap();
            it.global("flag").unwrap()
        };
        assert_eq!(run(&mut it, 0.0), Value::B(false)); // inside band, state false
        assert_eq!(run(&mut it, 2.0), Value::B(true)); // above hi
        assert_eq!(run(&mut it, 0.0), Value::B(true)); // hysteresis holds
        assert_eq!(run(&mut it, -2.0), Value::B(false)); // below lo
    }

    #[test]
    fn pid_and_integrator_track() {
        let mut b = NodeBuilder::new("ctl");
        let e = b.global_input("err");
        let u = b.pid(e, 2.0, 0.5, 0.25);
        b.output("u", u);
        let i = b.integrator(e, 0.1, -10.0, 10.0);
        b.output("ie", i);
        let node = b.build().unwrap();
        let p = node.to_minic();
        let mut it = Interp::new(&p);
        it.set_global("err", Value::F(1.0)).unwrap();
        it.call("step", &[]).unwrap();
        // pid: i=1; u = 2*1 + 0.5*1 + 0.25*(1-0) = 2.75
        assert_eq!(it.global("u").unwrap(), Value::F(2.75));
        assert_eq!(it.global("ie").unwrap(), Value::F(0.1));
        it.call("step", &[]).unwrap();
        // i=2; u = 2 + 1 + 0 = 3
        assert_eq!(it.global("u").unwrap(), Value::F(3.0));
    }

    #[test]
    fn debounce_confirms_and_latch_holds() {
        let mut b = NodeBuilder::new("warn");
        let x = b.global_input("sig");
        let hot = b.cmp_const(x, Cmp::Gt, 1.0);
        let confirmed = b.debounce(hot, 2);
        let rst_in = b.global_input("rst");
        let rst = b.cmp_const(rst_in, Cmp::Gt, 0.5);
        let alarm = b.sr_latch(confirmed, rst);
        b.output_b("alarm", alarm);
        let node = b.build().unwrap();
        let p = node.to_minic();
        vericomp_minic::typeck::check(&p).unwrap();
        let mut it = Interp::new(&p);
        let mut run = |sig: f64, rst: f64| {
            it.set_global("sig", Value::F(sig)).unwrap();
            it.set_global("rst", Value::F(rst)).unwrap();
            it.call("step", &[]).unwrap();
            it.global("alarm").unwrap()
        };
        assert_eq!(run(2.0, 0.0), Value::B(false)); // 1st exceedance
        assert_eq!(run(2.0, 0.0), Value::B(true)); // confirmed after 2
        assert_eq!(run(0.0, 0.0), Value::B(true)); // latched
        assert_eq!(run(0.0, 1.0), Value::B(false)); // reset
        assert_eq!(run(2.0, 0.0), Value::B(false)); // must confirm again
    }

    #[test]
    fn deadband_and_second_order_shapes() {
        let mut b = NodeBuilder::new("shape");
        let x = b.global_input("x");
        let d = b.deadband(x, 1.0);
        b.output("dead_out", d);
        let f = b.second_order_filter(x, 0.5, 0.25, -0.5);
        b.output("sof_out", f);
        let node = b.build().unwrap();
        let p = node.to_minic();
        let mut it = Interp::new(&p);
        let mut run = |v: f64| {
            it.set_global("x", Value::F(v)).unwrap();
            it.call("step", &[]).unwrap();
            (
                it.global("dead_out").unwrap(),
                it.global("sof_out").unwrap(),
            )
        };
        // deadband: inside the band → 0, outside → offset removed
        let (d, s1) = run(0.5);
        assert_eq!(d, Value::F(0.0));
        // sof step 1: y = 0.5*0.5 + 0.25*0 - (-0.5)*0 = 0.25
        assert_eq!(s1, Value::F(0.25));
        let (d, s2) = run(3.0);
        assert_eq!(d, Value::F(2.0));
        // step 2: 0.5*3 + 0.25*0.5 + 0.5*0.25 = 1.75
        assert_eq!(s2, Value::F(1.75));
        let (d, _) = run(-4.0);
        assert_eq!(d, Value::F(-3.0));
    }

    #[test]
    fn builder_rejects_bad_tables() {
        let mut b = NodeBuilder::new("bad");
        let x = b.global_input("x");
        b.lookup_search(x, vec![1.0, 0.5], vec![0.0, 0.0]); // not increasing
        assert!(matches!(
            b.build().unwrap_err(),
            NodeError::BadSymbol { .. }
        ));
    }
}
