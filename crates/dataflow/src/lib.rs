//! SCADE-like dataflow specification of flight-control laws.
//!
//! The paper's software process specifies control laws graphically and
//! generates C through a qualified automatic code generator whose output is
//! "many instances of a limited set of symbols — mathematic operations,
//! filters and delays" (§2.1). This crate provides:
//!
//! * the **symbol library** ([`symbol::Symbol`]): gains, sums, saturations,
//!   first/second-order filters, delays, integrators, rate limiters, PIDs,
//!   interpolation tables (with and without a data-dependent search loop),
//!   comparators, hysteresis, boolean logic, switches, hardware acquisitions
//!   and actuator commands;
//! * typed **node graphs** ([`node::Node`], built with
//!   [`node::NodeBuilder`]): wires carry `double` or boolean signals, and
//!   causality is checked (every combinational cycle must be broken by a
//!   delay);
//! * the **automatic code generator** ([`node::Node::to_minic`]): emits one
//!   flat three-address MiniC statement sequence per symbol in topological
//!   order — exactly the code shape whose `-O0` compilation gives the
//!   paper's per-symbol load/store patterns;
//! * **workloads** ([`fleet`]): the named node suite used for the Figure 2
//!   reproduction and a seeded random fleet generator for the Table 1
//!   statistics;
//! * **applications** ([`application`]): several nodes linked into one
//!   image with a generated cyclic-executive `step`, wired through shared
//!   globals like SCADE's node-level dataflow.
//!
//! # Example
//!
//! ```
//! use vericomp_dataflow::node::NodeBuilder;
//!
//! let mut b = NodeBuilder::new("demo");
//! let x = b.acquisition(0);
//! let g = b.gain(x, 2.0);
//! let f = b.first_order_filter(g, 0.25);
//! let s = b.saturation(f, -5.0, 5.0);
//! b.output("demo_out", s);
//! let node = b.build()?;
//! let minic = node.to_minic();
//! vericomp_minic::typeck::check(&minic)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod application;
pub mod fleet;
pub mod node;
pub mod symbol;

pub use application::{Application, ApplicationError};
pub use node::{Node, NodeBuilder, NodeError};
pub use symbol::Symbol;

/// Generation stamp of the symbol library and its code generator.
///
/// Downstream caches (the pipeline's content-addressed artifact store) mix
/// this into their keys: bump it whenever a symbol's *generated code*
/// changes shape without the node specification changing, so stale cached
/// binaries stop hitting.
pub const SYMBOL_LIBRARY_VERSION: u32 = 1;
