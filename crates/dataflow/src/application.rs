//! Multi-node applications: the cyclic executive.
//!
//! The paper's flight software is not one node but a large set of them,
//! executed every scheduling cycle. An [`Application`] links several nodes
//! into a single image: each node gets its own `<name>_step` function and a
//! generated `step` entry calls them in order — which also makes the
//! generated code exercise *function calls* (prologues, LR save, callee
//! WCET composition).
//!
//! Inter-node signals need no extra machinery: a node's
//! [`Symbol::Output`](crate::symbol::Symbol::Output) writes a named global
//! that another node can consume with
//! [`Symbol::GlobalInput`](crate::symbol::Symbol::GlobalInput) — the shared
//! global *is* the wire, evaluated in application order like SCADE's
//! node-level dataflow.

use std::collections::BTreeMap;
use std::fmt;

use vericomp_minic::ast::{Function, Global, Program, Stmt};

use crate::node::Node;

/// Errors raised when assembling an application.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplicationError {
    /// Two nodes share a name.
    DuplicateNode(String),
    /// Two nodes declare the same global with different definitions
    /// (different type or different initializer).
    GlobalConflict {
        /// The conflicting global.
        name: String,
    },
}

impl fmt::Display for ApplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplicationError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            ApplicationError::GlobalConflict { name } => {
                write!(f, "global `{name}` declared incompatibly by two nodes")
            }
        }
    }
}

impl std::error::Error for ApplicationError {}

/// A set of nodes executed once per scheduling cycle.
#[derive(Debug, Clone)]
pub struct Application {
    name: String,
    nodes: Vec<Node>,
}

impl Application {
    /// Assembles an application, validating node-name uniqueness.
    ///
    /// # Errors
    ///
    /// [`ApplicationError::DuplicateNode`].
    pub fn new(name: impl Into<String>, nodes: Vec<Node>) -> Result<Application, ApplicationError> {
        let mut seen = std::collections::BTreeSet::new();
        for n in &nodes {
            if !seen.insert(n.name().to_owned()) {
                return Err(ApplicationError::DuplicateNode(n.name().to_owned()));
            }
        }
        Ok(Application {
            name: name.into(),
            nodes,
        })
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nodes, in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The entry function the compiler should be pointed at.
    pub fn step_name(&self) -> &'static str {
        "step"
    }

    /// The per-node step-function name within the application image.
    pub fn node_step_name(node: &Node) -> String {
        format!("{}_step", node.name())
    }

    /// Generates the application's MiniC translation unit: one function per
    /// node plus the cyclic-executive `step`.
    ///
    /// # Errors
    ///
    /// [`ApplicationError::GlobalConflict`] when two nodes declare the same
    /// global incompatibly (sharing *identical* declarations is the
    /// inter-node wiring mechanism and is fine).
    pub fn to_minic(&self) -> Result<Program, ApplicationError> {
        let mut globals: BTreeMap<String, Global> = BTreeMap::new();
        let mut ordered_globals: Vec<String> = Vec::new();
        let mut functions = Vec::with_capacity(self.nodes.len() + 1);
        let mut calls = Vec::with_capacity(self.nodes.len());

        for node in &self.nodes {
            let fname = Self::node_step_name(node);
            let unit = node.to_minic_named(&fname);
            for g in unit.globals {
                match globals.get(&g.name) {
                    None => {
                        ordered_globals.push(g.name.clone());
                        globals.insert(g.name.clone(), g);
                    }
                    Some(existing) if existing.def == g.def => {}
                    Some(_) => {
                        return Err(ApplicationError::GlobalConflict { name: g.name });
                    }
                }
            }
            functions.extend(unit.functions);
            calls.push(Stmt::CallStmt(fname, vec![]));
        }

        functions.push(Function {
            name: self.step_name().into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: calls,
        });

        Ok(Program {
            globals: ordered_globals
                .into_iter()
                .map(|n| globals.remove(&n).expect("tracked"))
                .collect(),
            functions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBuilder;
    use vericomp_minic::interp::{Interp, Value};

    fn producer() -> Node {
        let mut b = NodeBuilder::new("producer");
        let x = b.acquisition(0);
        let f = b.first_order_filter(x, 0.5);
        b.output("shared_signal", f);
        b.build().expect("valid")
    }

    fn consumer() -> Node {
        let mut b = NodeBuilder::new("consumer");
        let x = b.global_input("shared_signal");
        let g = b.gain(x, 3.0);
        b.output("consumer_out", g);
        b.build().expect("valid")
    }

    #[test]
    fn nodes_wire_through_shared_globals() {
        let app = Application::new("app", vec![producer(), consumer()]).unwrap();
        let p = app.to_minic().unwrap();
        vericomp_minic::typeck::check(&p).unwrap();
        assert_eq!(p.functions.len(), 3);
        let mut it = Interp::new(&p);
        it.set_io(0, 4.0);
        it.call("step", &[]).unwrap();
        // producer: filter 0 + 0.5*(4-0) = 2; consumer: 2*3 = 6
        assert_eq!(it.global("consumer_out").unwrap(), Value::F(6.0));
    }

    #[test]
    fn execution_order_is_declaration_order() {
        // consumer before producer sees the previous cycle's value
        let app = Application::new("app", vec![consumer(), producer()]).unwrap();
        let p = app.to_minic().unwrap();
        let mut it = Interp::new(&p);
        it.set_io(0, 4.0);
        it.call("step", &[]).unwrap();
        assert_eq!(it.global("consumer_out").unwrap(), Value::F(0.0));
        it.call("step", &[]).unwrap();
        assert_eq!(it.global("consumer_out").unwrap(), Value::F(6.0));
    }

    #[test]
    fn duplicate_node_names_rejected() {
        let err = Application::new("app", vec![producer(), producer()]).unwrap_err();
        assert_eq!(err, ApplicationError::DuplicateNode("producer".into()));
    }

    #[test]
    fn conflicting_globals_rejected() {
        // one node outputs a bool, the other a double, under the same name
        let mut b = NodeBuilder::new("a");
        let x = b.global_input("sig");
        let c = b.cmp_const(x, vericomp_minic::ast::Cmp::Gt, 0.0);
        b.output_b("clash", c);
        let a = b.build().unwrap();
        let mut b2 = NodeBuilder::new("b");
        let y = b2.global_input("sig");
        b2.output("clash", y);
        let bb = b2.build().unwrap();
        let app = Application::new("app", vec![a, bb]).unwrap();
        assert!(matches!(
            app.to_minic(),
            Err(ApplicationError::GlobalConflict { .. })
        ));
    }
}
