//! Simulator feature tests: the issue-timeline trace, cache warm-up across
//! activations, and running individual functions.

use vericomp_core::{Compiler, OptLevel};
use vericomp_mach::Simulator;
use vericomp_minic::parse;

fn binary(src: &str) -> vericomp_arch::Program {
    let prog = parse::parse(src).expect("parses");
    Compiler::new(OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles")
}

#[test]
fn traced_run_matches_plain_run() {
    let bin = binary(
        r#"
        double x;
        void step() {
            x = ((x * 1.5) + 2.0);
        }
    "#,
    );
    let mut a = Simulator::new(bin.clone());
    let plain = a.run(100_000).expect("runs");
    let mut b = Simulator::new(bin);
    let (traced, timeline) = b.run_traced(100_000).expect("runs");
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(timeline.len() as u64, traced.stats.instructions);
    // issue times are monotone per program order within a block... globally
    // they are not (queued issue), but never exceed the drain time
    assert!(timeline.iter().all(|&(_, t)| t <= traced.stats.cycles));
    // the first instruction issues after its cold fetch stall
    assert!(timeline[0].1 >= u64::from(a.program().config.fetch_latency));
}

#[test]
fn caches_warm_up_across_activations_and_reset() {
    let bin = binary(
        r#"
        double acc;
        void step() {
            acc = (acc + 1.25);
        }
    "#,
    );
    let mut sim = Simulator::new(bin);
    let cold = sim.run(100_000).expect("runs").stats;
    let warm = sim.run(100_000).expect("runs").stats;
    assert!(
        warm.cycles < cold.cycles,
        "warm {} vs cold {}",
        warm.cycles,
        cold.cycles
    );
    assert_eq!(warm.icache_misses, 0, "all code resident on the second run");
    assert_eq!(warm.dcache_read_misses + warm.dcache_write_misses, 0);

    sim.reset_caches();
    let recold = sim.run(100_000).expect("runs").stats;
    assert_eq!(recold.cycles, cold.cycles, "reset restores the cold timing");
}

#[test]
fn run_function_targets_named_entries() {
    let bin = binary(
        r#"
        double a;
        double b;
        void touch_a() { a = (a + 1.0); }
        void touch_b() { b = (b + 1.0); }
        void step() {
            touch_a();
            touch_b();
        }
    "#,
    );
    let mut sim = Simulator::new(bin);
    sim.run_function("touch_a", 100_000).expect("runs");
    sim.run_function("touch_a", 100_000).expect("runs");
    sim.run_function("touch_b", 100_000).expect("runs");
    assert_eq!(sim.global_f64("a", 0).expect("a"), 2.0);
    assert_eq!(sim.global_f64("b", 0).expect("b"), 1.0);
    assert!(sim.run_function("missing", 100_000).is_err());
}

#[test]
fn state_persists_but_registers_do_not() {
    // each activation starts from the startup convention; only memory
    // persists — two identical activations with identical inputs give
    // identical outputs
    let bin = binary(
        r#"
        double x;
        double y;
        void step() {
            y = (x * 3.0);
        }
    "#,
    );
    let mut sim = Simulator::new(bin);
    sim.set_global_f64("x", 0, 2.0).expect("x");
    sim.run(100_000).expect("runs");
    let y1 = sim.global_f64("y", 0).expect("y");
    sim.run(100_000).expect("runs");
    let y2 = sim.global_f64("y", 0).expect("y");
    assert_eq!(y1.to_bits(), y2.to_bits());
    assert_eq!(y1, 6.0);
}
