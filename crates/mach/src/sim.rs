//! The machine simulator: executes a linked [`Program`] with concrete LRU
//! caches and the shared pipeline timing core, collecting performance
//! counters and the annotation trace.
//!
//! # Startup convention
//!
//! A run initializes `r1` to just below `stack_top`, `r2` to the constant
//! pool base, `r13` to the small-data-area base, and LR to the halt sentinel;
//! execution stops when control returns to the sentinel. Global variables
//! (and the I/O region backing store) persist across runs, so workloads can
//! set inputs, run a node's `step` function, and read back outputs — exactly
//! like one scheduling cycle of the flight control computer.

use std::fmt;

use vericomp_arch::inst::{Cond, Inst};
use vericomp_arch::program::{ArgLoc, DataValue, ElemTy, Program};
use vericomp_arch::reg::{Cr, Fpr, Gpr};
use vericomp_arch::timing::PipeState;

use crate::cache::Cache;
use crate::mem::Memory;

/// Sentinel return address: a `blr` to this address halts the run.
pub const HALT_ADDR: u32 = 0xFFFF_FFF0;

/// Size of the valid window below `stack_top` considered stack memory.
const STACK_WINDOW: u32 = 0x10_0000;
/// Size of the valid window above `data_base` considered data memory.
const DATA_WINDOW: u32 = 0x10_0000;

/// A value observed by an annotation marker or read from a global.
///
/// Equality on the `F64` variant is *bitwise*, so traces containing NaNs can
/// be compared reliably.
#[derive(Debug, Clone, Copy)]
pub enum AnnotValue {
    /// A 32-bit integer (also used for booleans: 0 or 1).
    I32(i32),
    /// A 64-bit IEEE double.
    F64(f64),
}

impl PartialEq for AnnotValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AnnotValue::I32(a), AnnotValue::I32(b)) => a == b,
            (AnnotValue::F64(a), AnnotValue::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for AnnotValue {}

impl fmt::Display for AnnotValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotValue::I32(v) => v.fmt(f),
            AnnotValue::F64(v) => v.fmt(f),
        }
    }
}

/// One observed annotation marker: the pro-forma "print" of CompCert's
/// `__builtin_annotation` semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotEvent {
    /// Marker id (index into the program's annotation table).
    pub id: u16,
    /// The annotation's format string.
    pub format: String,
    /// The values read from the arguments' final machine locations, in order.
    pub values: Vec<AnnotValue>,
}

/// Performance counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed (annotation markers excluded — they are free).
    pub instructions: u64,
    /// Total cycles until the pipeline drained.
    pub cycles: u64,
    /// Data-cache read accesses (cache loads; I/O excluded).
    pub dcache_reads: u64,
    /// Data-cache write accesses (cache stores; I/O excluded).
    pub dcache_writes: u64,
    /// Read accesses that missed.
    pub dcache_read_misses: u64,
    /// Write accesses that missed.
    pub dcache_write_misses: u64,
    /// Instruction fetches that missed the instruction cache.
    pub icache_misses: u64,
    /// Uncached I/O reads (hardware signal acquisitions).
    pub io_reads: u64,
    /// Uncached I/O writes (actuator commands).
    pub io_writes: u64,
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Performance counters.
    pub stats: RunStats,
    /// The annotation trace, in execution order.
    pub annotations: Vec<AnnotEvent>,
}

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A data access fell outside the data, stack and I/O regions.
    UnmappedAccess {
        /// Faulting effective address.
        addr: u32,
        /// Program counter of the access.
        pc: u32,
    },
    /// A data access was not naturally aligned.
    UnalignedAccess {
        /// Faulting effective address.
        addr: u32,
        /// Program counter of the access.
        pc: u32,
    },
    /// Control transferred outside the text section.
    PcOutOfText {
        /// The invalid program counter.
        pc: u32,
    },
    /// The instruction budget was exhausted before the program halted.
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// A named global does not exist in the program's symbol table.
    UnknownGlobal {
        /// The looked-up name.
        name: String,
    },
    /// A global was accessed with the wrong element type or index.
    BadGlobalAccess {
        /// The looked-up name.
        name: String,
    },
    /// An `annot` marker's id has no entry in the annotation table.
    MissingAnnotation {
        /// The unresolved id.
        id: u16,
        /// Program counter of the marker.
        pc: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAccess { addr, pc } => {
                write!(f, "unmapped data access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::UnalignedAccess { addr, pc } => {
                write!(f, "unaligned data access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::PcOutOfText { pc } => write!(f, "pc left the text section: {pc:#010x}"),
            SimError::StepLimit { limit } => write!(f, "instruction budget exhausted: {limit}"),
            SimError::UnknownGlobal { name } => write!(f, "unknown global: {name}"),
            SimError::BadGlobalAccess { name } => write!(f, "bad access to global: {name}"),
            SimError::MissingAnnotation { id, pc } => {
                write!(f, "annotation id {id} at pc {pc:#010x} has no table entry")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Condition-register field value; `Un` is the unordered outcome of `fcmpu`
/// on NaN operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrVal {
    Lt,
    Gt,
    Eq,
    Un,
}

impl CrVal {
    fn of_ord(ord: std::cmp::Ordering) -> CrVal {
        match ord {
            std::cmp::Ordering::Less => CrVal::Lt,
            std::cmp::Ordering::Greater => CrVal::Gt,
            std::cmp::Ordering::Equal => CrVal::Eq,
        }
    }

    fn satisfies(self, cond: Cond) -> bool {
        match self {
            CrVal::Lt => matches!(cond, Cond::Lt | Cond::Le | Cond::Ne),
            CrVal::Gt => matches!(cond, Cond::Gt | Cond::Ge | Cond::Ne),
            CrVal::Eq => matches!(cond, Cond::Eq | Cond::Le | Cond::Ge),
            // unordered: only "not equal" holds (IEEE-754 comparison semantics)
            CrVal::Un => matches!(cond, Cond::Ne),
        }
    }
}

/// The MPC755-like simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    program: Program,
    mem: Memory,
    icache: Cache,
    dcache: Cache,
    gpr: [u32; 32],
    fpr: [f64; 32],
    cr: [CrVal; 8],
    lr: u32,
}

#[derive(Debug, Clone, Copy)]
enum Region {
    Cacheable,
    Io,
}

impl Simulator {
    /// Creates a simulator with the program's data section loaded and cold
    /// caches.
    pub fn new(program: Program) -> Self {
        let mut mem = Memory::new();
        for (&addr, value) in &program.data {
            match *value {
                DataValue::I32(v) => mem.write_u32(addr, v as u32),
                DataValue::F64(v) => mem.write_f64(addr, v),
            }
        }
        let icache = Cache::new(program.config.icache);
        let dcache = Cache::new(program.config.dcache);
        Simulator {
            program,
            mem,
            icache,
            dcache,
            gpr: [0; 32],
            fpr: [0.0; 32],
            cr: [CrVal::Eq; 8],
            lr: 0,
        }
    }

    /// The program being simulated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Empties both caches (next run observes a cold machine).
    pub fn reset_caches(&mut self) {
        self.icache.reset();
        self.dcache.reset();
    }

    fn global_addr(&self, name: &str, index: u32, elem: ElemTy) -> Result<u32, SimError> {
        let sym = self
            .program
            .global(name)
            .ok_or_else(|| SimError::UnknownGlobal {
                name: name.to_owned(),
            })?;
        if sym.elem != elem || index >= sym.len {
            return Err(SimError::BadGlobalAccess {
                name: name.to_owned(),
            });
        }
        Ok(sym.addr + index * elem.size())
    }

    /// Writes an `i32` global (element `index` for arrays, 0 for scalars).
    ///
    /// # Errors
    ///
    /// Fails if the global does not exist, has a different element type, or
    /// the index is out of range.
    pub fn set_global_i32(&mut self, name: &str, index: u32, value: i32) -> Result<(), SimError> {
        let addr = self.global_addr(name, index, ElemTy::I32)?;
        self.mem.write_u32(addr, value as u32);
        Ok(())
    }

    /// Writes an `f64` global.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::set_global_i32`].
    pub fn set_global_f64(&mut self, name: &str, index: u32, value: f64) -> Result<(), SimError> {
        let addr = self.global_addr(name, index, ElemTy::F64)?;
        self.mem.write_f64(addr, value);
        Ok(())
    }

    /// Reads an `i32` global.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::set_global_i32`].
    pub fn global_i32(&self, name: &str, index: u32) -> Result<i32, SimError> {
        let addr = self.global_addr(name, index, ElemTy::I32)?;
        Ok(self.mem.read_u32(addr) as i32)
    }

    /// Reads an `f64` global.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::set_global_i32`].
    pub fn global_f64(&self, name: &str, index: u32) -> Result<f64, SimError> {
        let addr = self.global_addr(name, index, ElemTy::F64)?;
        Ok(self.mem.read_f64(addr))
    }

    /// Sets the value returned by hardware-acquisition reads of `port`
    /// (each port is one 8-byte I/O location).
    pub fn set_io_f64(&mut self, port: u32, value: f64) {
        let addr = self.program.config.io_base + 8 * port;
        self.mem.write_f64(addr, value);
    }

    /// Reads back the value last written to an I/O port (actuator output).
    pub fn io_f64(&self, port: u32) -> f64 {
        self.mem.read_f64(self.program.config.io_base + 8 * port)
    }

    fn classify(&self, addr: u32, pc: u32) -> Result<Region, SimError> {
        let cfg = &self.program.config;
        let in_data = addr >= cfg.data_base && addr - cfg.data_base < DATA_WINDOW;
        let in_stack = addr < cfg.stack_top && cfg.stack_top - addr <= STACK_WINDOW;
        if cfg.is_io(addr) {
            Ok(Region::Io)
        } else if in_data || in_stack {
            Ok(Region::Cacheable)
        } else {
            Err(SimError::UnmappedAccess { addr, pc })
        }
    }

    /// Runs the program from its entry point with the given instruction
    /// budget.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during execution.
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, SimError> {
        let entry = self.program.entry;
        self.run_from(entry, max_steps, None)
    }

    /// Like [`Simulator::run`], but also returns the issue timeline: one
    /// `(pc, issue cycle)` pair per executed instruction (annotation markers
    /// excluded). Useful for timing diagnostics and for validating the WCET
    /// analyzer's per-block accounting.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during execution.
    pub fn run_traced(
        &mut self,
        max_steps: u64,
    ) -> Result<(RunOutcome, Vec<(u32, u64)>), SimError> {
        let entry = self.program.entry;
        let mut trace = Vec::new();
        let outcome = self.run_from(entry, max_steps, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// Runs a named function with the given instruction budget.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownGlobal`] if the function does not exist (reported
    /// with the function name), or any [`SimError`] raised during execution.
    pub fn run_function(&mut self, name: &str, max_steps: u64) -> Result<RunOutcome, SimError> {
        let entry = self
            .program
            .function(name)
            .ok_or_else(|| SimError::UnknownGlobal {
                name: name.to_owned(),
            })?
            .entry;
        self.run_from(entry, max_steps, None)
    }

    fn run_from(
        &mut self,
        entry: u32,
        max_steps: u64,
        mut trace: Option<&mut Vec<(u32, u64)>>,
    ) -> Result<RunOutcome, SimError> {
        let cfg = self.program.config.clone();
        self.gpr = [0; 32];
        self.fpr = [0.0; 32];
        self.cr = [CrVal::Eq; 8];
        self.gpr[1] = cfg.stack_top - 64;
        self.gpr[2] = self.program.const_pool_base;
        self.gpr[13] = self.program.sda_base;
        self.lr = HALT_ADDR;
        let mut pc = entry;

        let mut pipe = PipeState::new();
        let mut stats = RunStats::default();
        let mut annotations = Vec::new();

        while pc != HALT_ADDR {
            if stats.instructions >= max_steps {
                return Err(SimError::StepLimit { limit: max_steps });
            }
            let inst = *self
                .program
                .inst_at(pc)
                .ok_or(SimError::PcOutOfText { pc })?;

            if let Inst::Annot { id } = inst {
                let entry = self
                    .program
                    .annotation(id)
                    .ok_or(SimError::MissingAnnotation { id, pc })?
                    .clone();
                let values = entry
                    .args
                    .iter()
                    .map(|arg| self.observe(arg))
                    .collect::<Vec<_>>();
                annotations.push(AnnotEvent {
                    id,
                    format: entry.format,
                    values,
                });
                pc += 4;
                continue;
            }

            // Instruction fetch.
            let fetch_hit = self.icache.access(pc);
            let fetch_extra = if fetch_hit { 0 } else { cfg.fetch_latency };
            if !fetch_hit {
                stats.icache_misses += 1;
            }

            let mut mem_extra = 0u32;
            let mut taken = false;
            let mut next_pc = pc.wrapping_add(4);

            macro_rules! ea_access {
                ($ea:expr, $align:expr, $is_load:expr) => {{
                    let ea: u32 = $ea;
                    if ea % $align != 0 {
                        return Err(SimError::UnalignedAccess { addr: ea, pc });
                    }
                    match self.classify(ea, pc)? {
                        Region::Io => {
                            mem_extra = cfg.io_latency;
                            if $is_load {
                                stats.io_reads += 1;
                            } else {
                                stats.io_writes += 1;
                            }
                        }
                        Region::Cacheable => {
                            let hit = self.dcache.access(ea);
                            if !hit {
                                mem_extra = cfg.mem_latency;
                            }
                            if $is_load {
                                stats.dcache_reads += 1;
                                if !hit {
                                    stats.dcache_read_misses += 1;
                                }
                            } else {
                                stats.dcache_writes += 1;
                                if !hit {
                                    stats.dcache_write_misses += 1;
                                }
                            }
                        }
                    }
                    ea
                }};
            }

            let base = |r: Gpr, gpr: &[u32; 32]| -> u32 {
                if r == Gpr::R0 {
                    0
                } else {
                    gpr[r.index() as usize]
                }
            };

            use Inst::*;
            match inst {
                Addi { rd, ra, imm } => {
                    self.wr(rd, base(ra, &self.gpr).wrapping_add(imm as i32 as u32));
                }
                Addis { rd, ra, imm } => {
                    self.wr(
                        rd,
                        base(ra, &self.gpr).wrapping_add((imm as i32 as u32) << 16),
                    );
                }
                Mulli { rd, ra, imm } => {
                    self.wr(rd, (self.rd_i(ra).wrapping_mul(imm as i32)) as u32);
                }
                Andi { rd, ra, imm } => self.wr(rd, self.rd_u(ra) & u32::from(imm)),
                Ori { rd, ra, imm } => self.wr(rd, self.rd_u(ra) | u32::from(imm)),
                Xori { rd, ra, imm } => self.wr(rd, self.rd_u(ra) ^ u32::from(imm)),
                Add { rd, ra, rb } => self.wr(rd, self.rd_u(ra).wrapping_add(self.rd_u(rb))),
                Subf { rd, ra, rb } => self.wr(rd, self.rd_u(rb).wrapping_sub(self.rd_u(ra))),
                Mullw { rd, ra, rb } => {
                    self.wr(rd, self.rd_i(ra).wrapping_mul(self.rd_i(rb)) as u32)
                }
                Divw { rd, ra, rb } => {
                    let (a, b) = (self.rd_i(ra), self.rd_i(rb));
                    let q = if b == 0 { 0 } else { a.wrapping_div(b) };
                    self.wr(rd, q as u32);
                }
                Divwu { rd, ra, rb } => {
                    let (a, b) = (self.rd_u(ra), self.rd_u(rb));
                    self.wr(rd, a.checked_div(b).unwrap_or(0));
                }
                Neg { rd, ra } => self.wr(rd, (self.rd_i(ra).wrapping_neg()) as u32),
                And { rd, ra, rb } => self.wr(rd, self.rd_u(ra) & self.rd_u(rb)),
                Or { rd, ra, rb } => self.wr(rd, self.rd_u(ra) | self.rd_u(rb)),
                Xor { rd, ra, rb } => self.wr(rd, self.rd_u(ra) ^ self.rd_u(rb)),
                Slw { rd, ra, rb } => {
                    let sh = self.rd_u(rb) & 63;
                    self.wr(rd, if sh >= 32 { 0 } else { self.rd_u(ra) << sh });
                }
                Srw { rd, ra, rb } => {
                    let sh = self.rd_u(rb) & 63;
                    self.wr(rd, if sh >= 32 { 0 } else { self.rd_u(ra) >> sh });
                }
                Sraw { rd, ra, rb } => {
                    let sh = self.rd_u(rb) & 63;
                    let v = self.rd_i(ra);
                    self.wr(rd, (if sh >= 32 { v >> 31 } else { v >> sh }) as u32);
                }
                Srawi { rd, ra, sh } => self.wr(rd, (self.rd_i(ra) >> sh) as u32),
                Rlwinm { rd, ra, sh, mb, me } => {
                    let rot = self.rd_u(ra).rotate_left(u32::from(sh));
                    self.wr(rd, rot & vericomp_arch::inst::rlwinm_mask(mb, me));
                }
                Lwz { rd, d, ra } => {
                    let ea = ea_access!(base(ra, &self.gpr).wrapping_add(d as i32 as u32), 4, true);
                    self.wr(rd, self.mem.read_u32(ea));
                }
                Lwzx { rd, ra, rb } => {
                    let ea = ea_access!(self.rd_u(ra).wrapping_add(self.rd_u(rb)), 4, true);
                    self.wr(rd, self.mem.read_u32(ea));
                }
                Stw { rs, d, ra } => {
                    let ea =
                        ea_access!(base(ra, &self.gpr).wrapping_add(d as i32 as u32), 4, false);
                    self.mem.write_u32(ea, self.rd_u(rs));
                }
                Stwx { rs, ra, rb } => {
                    let ea = ea_access!(self.rd_u(ra).wrapping_add(self.rd_u(rb)), 4, false);
                    self.mem.write_u32(ea, self.rd_u(rs));
                }
                Stwu { rs, d, ra } => {
                    let ea = ea_access!(self.rd_u(ra).wrapping_add(d as i32 as u32), 4, false);
                    self.mem.write_u32(ea, self.rd_u(rs));
                    self.wr(ra, ea);
                }
                Lfd { fd, d, ra } => {
                    let ea = ea_access!(base(ra, &self.gpr).wrapping_add(d as i32 as u32), 8, true);
                    self.fpr[fd.index() as usize] = self.mem.read_f64(ea);
                }
                Lfdx { fd, ra, rb } => {
                    let ea = ea_access!(self.rd_u(ra).wrapping_add(self.rd_u(rb)), 8, true);
                    self.fpr[fd.index() as usize] = self.mem.read_f64(ea);
                }
                Stfd { fs, d, ra } => {
                    let ea =
                        ea_access!(base(ra, &self.gpr).wrapping_add(d as i32 as u32), 8, false);
                    self.mem.write_f64(ea, self.fpr[fs.index() as usize]);
                }
                Stfdx { fs, ra, rb } => {
                    let ea = ea_access!(self.rd_u(ra).wrapping_add(self.rd_u(rb)), 8, false);
                    self.mem.write_f64(ea, self.fpr[fs.index() as usize]);
                }
                Fadd { fd, fa, fb } => self.wf(fd, self.rf(fa) + self.rf(fb)),
                Fsub { fd, fa, fb } => self.wf(fd, self.rf(fa) - self.rf(fb)),
                Fmul { fd, fa, fc } => self.wf(fd, self.rf(fa) * self.rf(fc)),
                Fdiv { fd, fa, fb } => self.wf(fd, self.rf(fa) / self.rf(fb)),
                // Our machine defines fmadd with intermediate rounding, so the
                // compiler's fusion is exactly semantics-preserving.
                Fmadd { fd, fa, fc, fb } => self.wf(fd, self.rf(fa) * self.rf(fc) + self.rf(fb)),
                Fneg { fd, fa } => self.wf(fd, -self.rf(fa)),
                Fabs { fd, fa } => self.wf(fd, self.rf(fa).abs()),
                Fmr { fd, fa } => self.wf(fd, self.rf(fa)),
                Itof { fd, ra } => self.wf(fd, f64::from(self.rd_i(ra))),
                Ftoi { rd, fa } => self.wr(rd, sat_trunc(self.rf(fa)) as u32),
                Cmpw { cr, ra, rb } => {
                    self.cr[cr.index() as usize] = CrVal::of_ord(self.rd_i(ra).cmp(&self.rd_i(rb)));
                }
                Cmpwi { cr, ra, imm } => {
                    self.cr[cr.index() as usize] =
                        CrVal::of_ord(self.rd_i(ra).cmp(&i32::from(imm)));
                }
                Fcmpu { cr, fa, fb } => {
                    self.cr[cr.index() as usize] = match self.rf(fa).partial_cmp(&self.rf(fb)) {
                        Some(ord) => CrVal::of_ord(ord),
                        None => CrVal::Un,
                    };
                }
                B { target } => {
                    taken = true;
                    next_pc = target;
                }
                Bc { cond, cr, target } => {
                    if self.cr[cr.index() as usize].satisfies(cond) {
                        taken = true;
                        next_pc = target;
                    }
                }
                Bl { target } => {
                    self.lr = pc.wrapping_add(4);
                    taken = true;
                    next_pc = target;
                }
                Blr => {
                    taken = true;
                    next_pc = self.lr;
                }
                Mflr { rd } => self.wr(rd, self.lr),
                Mtlr { rs } => self.lr = self.rd_u(rs),
                Nop => {}
                Annot { .. } => unreachable!("handled above"),
            }

            let issued = pipe.advance(&cfg, &inst, fetch_extra, mem_extra, taken);
            if let Some(t) = trace.as_deref_mut() {
                t.push((pc, issued));
            }
            stats.instructions += 1;
            pc = next_pc;
        }

        stats.cycles = pipe.drain_time();
        Ok(RunOutcome { stats, annotations })
    }

    fn rd_u(&self, r: Gpr) -> u32 {
        self.gpr[r.index() as usize]
    }

    fn rd_i(&self, r: Gpr) -> i32 {
        self.gpr[r.index() as usize] as i32
    }

    fn wr(&mut self, r: Gpr, v: u32) {
        self.gpr[r.index() as usize] = v;
    }

    fn rf(&self, r: Fpr) -> f64 {
        self.fpr[r.index() as usize]
    }

    fn wf(&mut self, r: Fpr, v: f64) {
        self.fpr[r.index() as usize] = v;
    }

    fn observe(&self, arg: &ArgLoc) -> AnnotValue {
        match *arg {
            ArgLoc::Gpr(r) => AnnotValue::I32(self.rd_i(r)),
            ArgLoc::Fpr(r) => AnnotValue::F64(self.rf(r)),
            ArgLoc::Stack(off, ty) => {
                let addr = self.gpr[1].wrapping_add(off as i32 as u32);
                self.observe_mem(addr, ty)
            }
            ArgLoc::Global(addr, ty) => self.observe_mem(addr, ty),
        }
    }

    fn observe_mem(&self, addr: u32, ty: ElemTy) -> AnnotValue {
        match ty {
            ElemTy::I32 => AnnotValue::I32(self.mem.read_u32(addr) as i32),
            ElemTy::F64 => AnnotValue::F64(self.mem.read_f64(addr)),
        }
    }

    /// Condition-register helper for tests: whether `cond` holds in `cr`.
    pub fn cr_satisfies(&self, cr: Cr, cond: Cond) -> bool {
        self.cr[cr.index() as usize].satisfies(cond)
    }
}

/// `fctiwz`-style saturating truncation of a double to `i32` (NaN maps to
/// `i32::MIN`).
pub fn sat_trunc(v: f64) -> i32 {
    if v.is_nan() {
        i32::MIN
    } else if v >= 2147483647.0 {
        i32::MAX
    } else if v <= -2147483648.0 {
        i32::MIN
    } else {
        v.trunc() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vericomp_arch::program::{AnnotationEntry, FuncSym, GlobalSym};
    use vericomp_arch::MachineConfig;

    fn g(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn fp(i: u8) -> Fpr {
        Fpr::new(i)
    }

    /// Builds a single-function program from raw instructions plus globals.
    fn program(code: Vec<Inst>, globals: Vec<(&str, ElemTy, u32)>) -> Program {
        let config = MachineConfig::mpc755();
        let mut addr = config.data_base;
        let mut syms = Vec::new();
        for (name, elem, len) in globals {
            addr = addr.next_multiple_of(8);
            syms.push(GlobalSym {
                name: name.into(),
                addr,
                elem,
                len,
            });
            addr += elem.size() * len;
        }
        let len_words = code.len() as u32;
        Program {
            entry: config.text_base,
            functions: vec![FuncSym {
                name: "main".into(),
                entry: config.text_base,
                len_words,
            }],
            globals: syms,
            data: BTreeMap::new(),
            const_pool_base: config.data_base + 0x8000,
            sda_base: config.data_base + 0x4000,
            annotations: Vec::new(),
            code,
            config,
        }
    }

    #[test]
    fn arithmetic_and_store() {
        // x = 5 + 7, stored via SDA-relative addressing (r13 points at x)
        let code = vec![
            Inst::li(g(3), 5),
            Inst::li(g(4), 7),
            Inst::Add {
                rd: g(5),
                ra: g(3),
                rb: g(4),
            },
            Inst::Stw {
                rs: g(5),
                d: 0,
                ra: Gpr::SDA,
            },
            Inst::Blr,
        ];
        let mut p = program(code, vec![("x", ElemTy::I32, 1)]);
        p.sda_base = p.global("x").unwrap().addr;
        let mut sim = Simulator::new(p);
        let out = sim.run(1000).unwrap();
        assert_eq!(sim.global_i32("x", 0).unwrap(), 12);
        assert_eq!(out.stats.dcache_writes, 1);
        assert_eq!(out.stats.dcache_write_misses, 1);
        assert!(out.stats.cycles > 0);
    }

    #[test]
    fn counted_loop_executes_correctly() {
        // sum = 0; for i in 0..10 { sum += i } ; store sum
        let base = MachineConfig::mpc755().text_base;
        let code = vec![
            /* 0 */ Inst::li(g(3), 0), // sum
            /* 1 */ Inst::li(g(4), 0), // i
            /* 2 */
            Inst::Cmpwi {
                cr: Cr::CR0,
                ra: g(4),
                imm: 10,
            }, // loop:
            /* 3 */
            Inst::Bc {
                cond: Cond::Ge,
                cr: Cr::CR0,
                target: base + 7 * 4,
            },
            /* 4 */
            Inst::Add {
                rd: g(3),
                ra: g(3),
                rb: g(4),
            },
            /* 5 */
            Inst::Addi {
                rd: g(4),
                ra: g(4),
                imm: 1,
            },
            /* 6 */ Inst::B {
                target: base + 2 * 4,
            },
            /* 7 */
            Inst::Stw {
                rs: g(3),
                d: 0,
                ra: Gpr::SDA,
            },
            /* 8 */ Inst::Blr,
        ];
        let mut p = program(code, vec![("sum", ElemTy::I32, 1)]);
        p.sda_base = p.global("sum").unwrap().addr;
        let mut sim = Simulator::new(p);
        let out = sim.run(1000).unwrap();
        assert_eq!(sim.global_i32("sum", 0).unwrap(), 45);
        assert_eq!(out.stats.instructions, 2 + 10 * 5 + 2 + 1 + 1);
    }

    #[test]
    fn fp_constant_pool_and_io() {
        // y = io[0] * k, k from the constant pool; y stored to a global
        let code = vec![
            Inst::Lfd {
                fd: fp(1),
                d: 0,
                ra: Gpr::TOC,
            }, // k
            Inst::Lfd {
                fd: fp(2),
                d: 0,
                ra: g(10),
            }, // io[0] — r10 set below
            Inst::Fmul {
                fd: fp(3),
                fa: fp(2),
                fc: fp(1),
            },
            Inst::Stfd {
                fs: fp(3),
                d: 0,
                ra: Gpr::SDA,
            },
            Inst::Blr,
        ];
        let mut p = program(code, vec![("y", ElemTy::F64, 1)]);
        p.sda_base = p.global("y").unwrap().addr;
        p.data.insert(p.const_pool_base, DataValue::F64(2.5));
        // materialize io base in r10: lis + ori
        let io = p.config.io_base;
        p.code.insert(0, Inst::lis(g(10), (io >> 16) as i16));
        p.code.insert(
            1,
            Inst::Ori {
                rd: g(10),
                ra: g(10),
                imm: (io & 0xFFFF) as u16,
            },
        );
        p.functions[0].len_words += 2;
        let mut sim = Simulator::new(p);
        sim.set_io_f64(0, 4.0);
        let out = sim.run(1000).unwrap();
        assert_eq!(sim.global_f64("y", 0).unwrap(), 10.0);
        assert_eq!(out.stats.io_reads, 1);
        // IO access must cost at least the IO latency
        assert!(out.stats.cycles >= u64::from(sim.program().config.io_latency));
    }

    #[test]
    fn repeated_loads_hit_the_cache() {
        let code = vec![
            Inst::Lwz {
                rd: g(3),
                d: 0,
                ra: Gpr::SDA,
            },
            Inst::Lwz {
                rd: g(4),
                d: 0,
                ra: Gpr::SDA,
            },
            Inst::Lwz {
                rd: g(5),
                d: 4,
                ra: Gpr::SDA,
            }, // same line
            Inst::Blr,
        ];
        let mut p = program(code, vec![("arr", ElemTy::I32, 8)]);
        p.sda_base = p.global("arr").unwrap().addr;
        let mut sim = Simulator::new(p);
        let out = sim.run(100).unwrap();
        assert_eq!(out.stats.dcache_reads, 3);
        assert_eq!(out.stats.dcache_read_misses, 1);
    }

    #[test]
    fn annotation_trace_reads_final_locations() {
        let code = vec![Inst::li(g(5), 42), Inst::Annot { id: 0 }, Inst::Blr];
        let mut p = program(code, vec![]);
        p.annotations.push(AnnotationEntry {
            id: 0,
            format: "0 <= %1 < 360".into(),
            args: vec![ArgLoc::Gpr(g(5))],
        });
        let mut sim = Simulator::new(p);
        let out = sim.run(100).unwrap();
        assert_eq!(out.annotations.len(), 1);
        assert_eq!(out.annotations[0].values, vec![AnnotValue::I32(42)]);
        assert_eq!(out.annotations[0].format, "0 <= %1 < 360");
    }

    #[test]
    fn unmapped_access_is_an_error() {
        let code = vec![
            Inst::Lwz {
                rd: g(3),
                d: 0,
                ra: g(9),
            },
            Inst::Blr,
        ];
        let p = program(code, vec![]);
        let mut sim = Simulator::new(p);
        // r9 is zero → address 0 is unmapped
        match sim.run(100) {
            Err(SimError::UnmappedAccess { addr: 0, .. }) => {}
            other => panic!("expected unmapped access, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_detects_runaway() {
        let base = MachineConfig::mpc755().text_base;
        let code = vec![Inst::B { target: base }];
        let p = program(code, vec![]);
        let mut sim = Simulator::new(p);
        assert_eq!(sim.run(50), Err(SimError::StepLimit { limit: 50 }));
    }

    #[test]
    fn call_and_return() {
        let base = MachineConfig::mpc755().text_base;
        // main: mflr r0; bl f; mtlr r0; stw r3 -> sda; blr    f: li r3, 9; blr
        let code = vec![
            /* 0 main */ Inst::Mflr { rd: g(0) },
            /* 1 */ Inst::Bl { target: base + 20 },
            /* 2 */ Inst::Mtlr { rs: g(0) },
            /* 3 */
            Inst::Stw {
                rs: g(3),
                d: 0,
                ra: Gpr::SDA,
            },
            /* 4 */ Inst::Blr,
            /* 5 f */ Inst::li(g(3), 9),
            /* 6 */ Inst::Blr,
        ];
        let mut p = program(code, vec![("out", ElemTy::I32, 1)]);
        p.sda_base = p.global("out").unwrap().addr;
        let mut sim = Simulator::new(p);
        sim.run(100).unwrap();
        assert_eq!(sim.global_i32("out", 0).unwrap(), 9);
    }

    #[test]
    fn fcmpu_nan_is_unordered() {
        let code = vec![
            Inst::Fdiv {
                fd: fp(1),
                fa: fp(0),
                fb: fp(0),
            }, // 0/0 = NaN
            Inst::Fcmpu {
                cr: Cr::CR0,
                fa: fp(1),
                fb: fp(1),
            },
            Inst::Blr,
        ];
        let p = program(code, vec![]);
        let mut sim = Simulator::new(p);
        sim.run(100).unwrap();
        assert!(sim.cr_satisfies(Cr::CR0, Cond::Ne));
        assert!(!sim.cr_satisfies(Cr::CR0, Cond::Eq));
        assert!(!sim.cr_satisfies(Cr::CR0, Cond::Lt));
        assert!(!sim.cr_satisfies(Cr::CR0, Cond::Le));
    }

    #[test]
    fn sat_trunc_matches_fctiwz() {
        assert_eq!(sat_trunc(1.9), 1);
        assert_eq!(sat_trunc(-1.9), -1);
        assert_eq!(sat_trunc(f64::NAN), i32::MIN);
        assert_eq!(sat_trunc(1e300), i32::MAX);
        assert_eq!(sat_trunc(-1e300), i32::MIN);
        assert_eq!(sat_trunc(2147483646.5), 2147483646);
    }

    #[test]
    fn annot_value_equality_is_bitwise_for_doubles() {
        assert_eq!(AnnotValue::F64(f64::NAN), AnnotValue::F64(f64::NAN));
        assert_ne!(AnnotValue::F64(0.0), AnnotValue::F64(-0.0));
        assert_eq!(AnnotValue::I32(3), AnnotValue::I32(3));
        assert_ne!(AnnotValue::I32(0), AnnotValue::F64(0.0));
    }
}
