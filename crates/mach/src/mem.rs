//! Sparse big-endian byte-addressable memory.
//!
//! Backed by 4 KiB pages allocated on first touch; unwritten locations read
//! as zero (globals are zero-initialized, matching the MiniC semantics).

use std::collections::BTreeMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse memory with big-endian word accessors.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: BTreeMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a big-endian 32-bit word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut v = 0u32;
        for i in 0..4 {
            v = (v << 8) | u32::from(self.read_u8(addr.wrapping_add(i)));
        }
        v
    }

    /// Writes a big-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for i in 0..4 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * (3 - i))) as u8);
        }
    }

    /// Reads a big-endian IEEE-754 double.
    pub fn read_f64(&self, addr: u32) -> f64 {
        let hi = u64::from(self.read_u32(addr));
        let lo = u64::from(self.read_u32(addr.wrapping_add(4)));
        f64::from_bits((hi << 32) | lo)
    }

    /// Writes a big-endian IEEE-754 double.
    pub fn write_f64(&mut self, addr: u32, value: f64) {
        let bits = value.to_bits();
        self.write_u32(addr, (bits >> 32) as u32);
        self.write_u32(addr.wrapping_add(4), bits as u32);
    }

    /// Number of pages currently allocated (for tests and diagnostics).
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0x1234_5678), 0);
        assert_eq!(m.read_f64(0x1000_0000), 0.0);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.write_u32(0x1000_0000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000_0000), 0xDEAD_BEEF);
        // big-endian layout
        assert_eq!(m.read_u32(0x1000_0001) >> 24, 0xAD);
    }

    #[test]
    fn double_roundtrip() {
        let mut m = Memory::new();
        for v in [0.0, -0.0, 1.5, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e300] {
            m.write_f64(0x2000_0008, v);
            assert_eq!(m.read_f64(0x2000_0008).to_bits(), v.to_bits());
        }
        m.write_f64(0x2000_0008, f64::NAN);
        assert!(m.read_f64(0x2000_0008).is_nan());
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_u32(0x0000_0FFE, 0xAABB_CCDD); // spans two pages
        assert_eq!(m.read_u32(0x0000_0FFE), 0xAABB_CCDD);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn distinct_pages_independent() {
        let mut m = Memory::new();
        m.write_u32(0x1000, 1);
        m.write_u32(0x1000 + (1 << 12), 2);
        assert_eq!(m.read_u32(0x1000), 1);
        assert_eq!(m.read_u32(0x1000 + (1 << 12)), 2);
    }
}
