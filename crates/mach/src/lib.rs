//! MPC755-like machine model: memory system, L1 caches and a
//! performance-counting simulator for [`vericomp_arch`] programs.
//!
//! The simulator is the *concrete* half of the timing story: it executes the
//! linked binary with real LRU caches and the shared pipeline timing core of
//! [`vericomp_arch::timing`], producing
//!
//! * the architectural result (global-variable values),
//! * an **annotation trace** — the ordered observation of every `annot`
//!   marker with the values read from its arguments' final locations, which
//!   must equal the source-level trace of the MiniC interpreter (CompCert's
//!   §3.4 guarantee),
//! * performance counters: cycles, data-cache reads/writes/misses,
//!   instruction-cache misses and I/O acquisitions — the quantities of the
//!   paper's Table 1.
//!
//! The WCET analyzer's bound must dominate the cycle count reported here on
//! every input (tested property).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod mem;
pub mod sim;

pub use cache::Cache;
pub use mem::Memory;
pub use sim::{AnnotEvent, AnnotValue, RunOutcome, RunStats, SimError, Simulator};
