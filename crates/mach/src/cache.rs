//! Set-associative LRU cache model.
//!
//! Used for both the L1 instruction and data caches. The real MPC755 uses a
//! pseudo-LRU replacement; we use true LRU in both the simulator and the
//! WCET analyzer so the must-analysis is sound with respect to the simulator
//! (documented substitution in `DESIGN.md`).

use vericomp_arch::config::CacheConfig;

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed (and allocated).
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A set-associative cache with true-LRU replacement and write-allocate
/// behaviour.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: resident line tags, most recently used first.
    sets: Vec<Vec<u32>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways as usize); config.sets() as usize];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the line containing `addr`: returns `true` on a hit. On a
    /// miss the line is allocated, evicting the least recently used line of
    /// its set if the set is full. Both loads and stores use this
    /// (write-allocate).
    pub fn access(&mut self, addr: u32) -> bool {
        let line = self.config.line_of(addr);
        let set = &mut self.sets[(line % self.config.sets()) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways as usize {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Whether the line containing `addr` is currently resident (no
    /// side effects).
    pub fn contains(&self, addr: u32) -> bool {
        let line = self.config.line_of(addr);
        self.sets[(line % self.config.sets()) as usize].contains(&line)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties the cache and clears the counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 ways, 32-byte lines, 4 sets
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11C)); // same 32-byte line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // three lines mapping to the same set (4 sets * 32 bytes = 128 stride)
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU, b LRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0x00);
        c.access(0x20); // next set
        assert!(c.contains(0x00));
        assert!(c.contains(0x20));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x40);
        c.reset();
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn mpc755_geometry_accepts_many_lines() {
        let mut c = Cache::new(vericomp_arch::MachineConfig::mpc755().dcache);
        // 8 ways per set: 8 conflicting lines all fit
        let stride = c.config().sets() * c.config().line_bytes;
        for i in 0..8 {
            c.access(i * stride);
        }
        for i in 0..8 {
            assert!(c.contains(i * stride), "way {i} should be resident");
        }
        // the ninth evicts the LRU (line 0)
        c.access(8 * stride);
        assert!(!c.contains(0));
    }
}
