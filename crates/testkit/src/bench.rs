//! A plain-`std::time::Instant` benchmark harness (criterion stand-in).
//!
//! Each benchmark is auto-calibrated (iterations are doubled until a batch
//! exceeds ~50 ms), then timed over a fixed number of sample batches.
//! Results render as a table and serialize to a `BENCH_<group>.json`
//! machine-readable summary so benchmark trajectories can accumulate
//! across PRs without any external crate.
//!
//! Environment knobs:
//!
//! * `TESTKIT_BENCH_MS` — target milliseconds per sample batch
//!   (default 50; lower it for smoke runs).

use std::fmt::Write as _;
use std::fs;
use std::hint::black_box;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name within the group.
    pub name: String,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Number of sample batches.
    pub samples: u32,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest batch, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest batch, nanoseconds per iteration.
    pub max_ns: f64,
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples_per_bench: u32,
    results: Vec<Sample>,
    notes: Vec<(String, String)>,
}

fn target_batch_nanos() -> u128 {
    let ms: u128 = std::env::var("TESTKIT_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    ms.max(1) * 1_000_000
}

impl Bench {
    /// Starts a group.
    #[must_use]
    pub fn group(name: &str) -> Bench {
        Bench {
            group: name.to_string(),
            samples_per_bench: 10,
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attaches a named raw-JSON annotation to the group — e.g. a
    /// representative run's `PipelineStats::to_json()` or a trace
    /// profile's `Profile::to_json()`. `raw_json` is embedded verbatim
    /// under `"notes"` in [`Bench::write_json`], so it must already be a
    /// valid JSON value.
    pub fn note(&mut self, name: &str, raw_json: &str) {
        self.notes.push((name.to_string(), raw_json.to_string()));
    }

    /// Times one closure: calibrate batch size, then measure.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let target = target_batch_nanos();
        // calibration: double until one batch crosses the target
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            // jump close to the target in one step when far away
            iters = if elapsed * 8 < target {
                (iters * 8).max(iters + 1)
            } else {
                iters * 2
            };
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples_per_bench as usize);
        for _ in 0..self.samples_per_bench {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        self.results.push(Sample {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.samples_per_bench,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
        eprintln!(
            "bench {}/{name}: mean {} (min {}, max {}, {iters} iters x {} samples)",
            self.group,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_per_bench,
        );
    }

    /// Collected results.
    #[must_use]
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Renders the group as an aligned table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "benchmark group `{}`:", self.group);
        let _ = writeln!(
            out,
            "{:<40} {:>12} {:>12} {:>12}",
            "benchmark", "mean", "min", "max"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<40} {:>12} {:>12} {:>12}",
                r.name,
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns)
            );
        }
        out
    }

    /// Writes `BENCH_<group>.json` into `dir` — a flat, hand-rolled JSON
    /// document (no serde in the workspace).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_json(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"group\": \"{}\",", escape(&self.group));
        let _ = writeln!(s, "  \"unit\": \"ns_per_iter\",");
        let _ = writeln!(s, "  \"benches\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"mean\": {:.1}, \"min\": {:.1}, \"max\": {:.1}, \
                 \"iters_per_sample\": {}, \"samples\": {}}}{comma}",
                escape(&r.name),
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.iters_per_sample,
                r.samples,
            );
        }
        if self.notes.is_empty() {
            let _ = writeln!(s, "  ]");
        } else {
            let _ = writeln!(s, "  ],");
            let _ = writeln!(s, "  \"notes\": {{");
            for (i, (name, raw)) in self.notes.iter().enumerate() {
                let comma = if i + 1 == self.notes.len() { "" } else { "," };
                let _ = writeln!(s, "    \"{}\": {raw}{comma}", escape(name));
            }
            let _ = writeln!(s, "  }}");
        }
        let _ = writeln!(s, "}}");
        let path = dir.join(format!("BENCH_{}.json", self.group));
        fs::write(&path, s)?;
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_measures_and_serializes() {
        // keep the batch target tiny so the test is fast
        std::env::set_var("TESTKIT_BENCH_MS", "1");
        let mut g = Bench::group("selftest");
        let mut acc = 0u64;
        g.bench("wrapping_sum", || {
            acc = acc.wrapping_add(black_box(17));
            acc
        });
        assert_eq!(g.results().len(), 1);
        let r = &g.results()[0];
        assert!(r.mean_ns > 0.0 && r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);

        let dir = std::env::temp_dir().join("vericomp-testkit-bench-test");
        let _ = fs::create_dir_all(&dir);
        g.note("stats", "{\"jobs_run\": 3}");
        let path = g.write_json(&dir).expect("writes");
        let text = fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"group\": \"selftest\""));
        assert!(text.contains("\"name\": \"wrapping_sum\""));
        assert!(text.contains("\"notes\": {"));
        assert!(text.contains("\"stats\": {\"jobs_run\": 3}"));
        let _ = fs::remove_file(&path);
        std::env::remove_var("TESTKIT_BENCH_MS");
    }
}
